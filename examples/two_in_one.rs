//! The Section 5.3 2-in-1 scenario: drawing simultaneously from the tablet
//! and keyboard batteries vs charging one from the other.
//!
//! ```text
//! cargo run --release --example two_in_one
//! ```

use sdb::core::scenarios::two_in_one::{battery_life_s, Strategy};
use sdb::workloads::device::Activity;
use sdb::workloads::traces::tablet_session;

fn main() {
    println!("2-in-1 with two 4 Ah Li-ion cells: tablet (internal) + keyboard (external)\n");
    let workloads = [
        ("Email", vec![Activity::Network, Activity::Idle]),
        ("Browsing", vec![Activity::Network, Activity::Interactive]),
        (
            "Development",
            vec![Activity::Compute, Activity::Interactive],
        ),
        ("Gaming", vec![Activity::Compute]),
    ];
    println!(
        "{:<14} {:>18} {:>18} {:>14}",
        "workload", "simultaneous (h)", "charge-through (h)", "improvement"
    );
    for (name, acts) in workloads {
        let trace = tablet_session(7, &acts, 300.0, 3600.0);
        let sim = battery_life_s(Strategy::SimultaneousDraw, &trace, 4.0, 48.0 * 3600.0);
        let ct = battery_life_s(Strategy::ChargeThrough, &trace, 4.0, 48.0 * 3600.0);
        println!(
            "{:<14} {:>18.2} {:>18.2} {:>13.1}%",
            name,
            sim / 3600.0,
            ct / 3600.0,
            (sim / ct - 1.0) * 100.0
        );
    }
    println!("\nSplitting the draw halves each cell's current, quartering its I²R loss,");
    println!("and skips the double conversion of charging one battery from the other.");
}
