//! The Section 5.2 smart-watch scenario: a rigid Li-ion cell in the body
//! plus a bendable cell in the strap, with the OS choosing when to spend
//! which — including a usage predictor that learns the user's running
//! schedule and sets the policy automatically.
//!
//! ```text
//! cargo run --release --example smart_watch
//! ```

use sdb::core::predict::UsagePredictor;
use sdb::core::scenarios::watch::{high_power_threshold_w, watch_scenario, WatchPolicy};
use sdb::workloads::traces::watch_day;

fn main() {
    let seed = 13;
    let run_hour = 9.0;

    println!("pack: 200 mAh Li-ion (body) + 200 mAh bendable (strap)");
    println!("day:  message checking, {run_hour}h: one-hour GPS run\n");

    // The two fixed policies of Figure 13.
    let p1 = watch_scenario(
        WatchPolicy::MinimizeInstantaneousLosses,
        Some(run_hour),
        seed,
    );
    let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(run_hour), seed);

    for o in [&p1, &p2] {
        println!("{}:", o.policy.label());
        println!("  battery life:    {:.1} h", o.life_s / 3600.0);
        if let Some(t) = o.li_ion_empty_s {
            println!("  Li-ion empty:    hour {:.1}", t / 3600.0);
        }
        if let Some(t) = o.bendable_empty_s {
            println!("  bendable empty:  hour {:.1}", t / 3600.0);
        }
        println!("  total losses:    {:.0} J\n", o.total_loss_j);
    }
    println!(
        "preserving the Li-ion for the run bought {:+.1} h of battery life\n",
        (p2.life_s - p1.life_s) / 3600.0
    );

    // Now let the predictor decide: it learns the daily pattern, then maps
    // the upcoming-run prediction to the preserve policy.
    let mut predictor = UsagePredictor::new();
    for day in 0..5 {
        let trace = watch_day(seed + day, Some(run_hour));
        let hourly: Vec<f64> = (0..24)
            .map(|h| {
                trace.points()[h * 60..(h + 1) * 60]
                    .iter()
                    .map(|p| p.load_w)
                    .sum::<f64>()
                    / 60.0
            })
            .collect();
        predictor.observe_day(&hourly);
    }
    let threshold = high_power_threshold_w();
    let morning_directive = predictor.discharge_directive(7, threshold);
    let policy = if morning_directive < 0.5 {
        WatchPolicy::PreserveLiIon
    } else {
        WatchPolicy::MinimizeInstantaneousLosses
    };
    println!(
        "predictor after 5 days: run expected near hour {run_hour} → morning directive {morning_directive:.2} → {}",
        policy.label()
    );
    let auto = watch_scenario(policy, Some(run_hour), seed);
    println!(
        "auto-selected policy battery life: {:.1} h (fixed policy 1 gave {:.1} h)",
        auto.life_s / 3600.0,
        p1.life_s / 3600.0
    );
}
