//! Quickstart: build a heterogeneous pack, let the SDB Runtime schedule
//! it, and inspect what the four paper APIs expose.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::metrics::{ccb, rbl_wh, wear_ratios};
use sdb::core::policy::{DischargeDirective, PolicyInput};
use sdb::core::runtime::SdbRuntime;
use sdb::core::scheduler::{run_trace, SimOptions};
use sdb::emulator::PackBuilder;
use sdb::workloads::Trace;

fn main() {
    // 1. A hybrid pack: a high-energy cell plus a fast/high-power cell.
    let mut pack = PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "high-energy (Type 2)",
            Chemistry::Type2CoStandard,
            3.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "high-power (Type 3)",
            Chemistry::Type3CoPower,
            1.5,
        ))
        .build();

    // 2. The runtime: directive 0.9 = lean strongly toward maximizing
    //    instantaneous battery life (RBL) over wear balancing (CCB).
    let mut runtime = SdbRuntime::new(2);
    runtime.set_discharge_directive(DischargeDirective::new(0.9));

    // 3. Run a one-hour 6 W workload.
    let result = run_trace(
        &mut pack,
        &mut runtime,
        &Trace::constant(6.0, 3600.0),
        &SimOptions::default(),
    );

    println!("== after one hour at 6 W ==");
    println!("delivered:      {:9.1} kJ", result.supplied_j / 1e3);
    println!("circuit losses: {:9.1} J", result.circuit_loss_j);
    println!("cell heat:      {:9.1} J", result.cell_heat_j);
    println!("unserved:       {:9.1} J", result.unmet_j);
    println!("ratio pushes:   {:9}", runtime.pushes());

    // 4. QueryBatteryStatus() — what the OS sees.
    println!("\n== QueryBatteryStatus() ==");
    for (i, s) in pack.query_battery_status().iter().enumerate() {
        println!(
            "battery {i}: soc {:5.1}%  terminal {:.3} V  cycles {}  remaining {:.2} Ah",
            s.soc * 100.0,
            s.terminal_v,
            s.cycle_count,
            s.remaining_ah
        );
    }

    // 5. The policy metrics.
    let cells = pack.cells();
    let specs: Vec<&BatterySpec> = cells.iter().map(|c| c.spec()).collect();
    let socs: Vec<f64> = cells.iter().map(|c| c.soc()).collect();
    let cycles: Vec<u32> = cells.iter().map(|c| c.cycle_count()).collect();
    let wear = wear_ratios(&cycles, &specs);
    println!("\n== policy metrics ==");
    println!("wear ratios λ: {wear:?}");
    println!("CCB:           {:.3}", ccb(&wear));
    println!(
        "RBL:           {:.2} Wh of useful charge",
        rbl_wh(&socs, &specs, 6.0)
    );

    // 6. What the current snapshot looks like to the policies.
    let input = PolicyInput::from_micro(&pack).with_load(6.0);
    let ratios = runtime
        .discharge_directive()
        .ratios(&input)
        .expect("feasible");
    println!("\nnext discharge split the policy would choose: {ratios:?}");
}
