//! The Section 8 future-work direction: an EV NAV system hands the SDB
//! Runtime a route hint, and the runtime compiles it into a directive
//! schedule — preserving the efficient pack for the hill it knows is
//! coming.
//!
//! ```text
//! cargo run --release --example ev_route
//! ```

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::hints::{entry_at, RouteHint};
use sdb::core::policy::PolicyInput;
use sdb::core::runtime::SdbRuntime;
use sdb::emulator::PackBuilder;

fn main() {
    // A small EV-ish pack scaled down to simulator-friendly numbers: an
    // efficient NMC pack plus a high-power LFP buffer.
    let mut micro = PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "NMC main",
            Chemistry::OtherNmc,
            40.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "LFP buffer",
            Chemistry::Type1LfpPower,
            20.0,
        ))
        .build();

    // The NAV's route: city driving, a long steep climb, then highway.
    let mut route = RouteHint::new();
    route.push(1200.0, 25.0, 40.0); // city
    route.push(900.0, 90.0, 140.0); // climb
    route.push(1800.0, 45.0, 60.0); // highway
    let schedule = route.compile(0, 1, 100.0);

    println!(
        "route hint compiled into {} schedule entries:",
        schedule.len()
    );
    for e in &schedule {
        println!(
            "  from {:>5.0} s: directive {:.1}, preserve = {}",
            e.from_s,
            e.directive.value(),
            e.preserve.is_some()
        );
    }

    // Drive the route, switching directives per the schedule.
    let mut runtime = SdbRuntime::new(2);
    runtime.set_update_period(30.0);
    let mut t = 0.0;
    let dt = 30.0;
    let mut active = usize::MAX;
    while t < route.duration_s() {
        if let Some(entry) = entry_at(&schedule, t) {
            let idx = schedule
                .iter()
                .position(|e| e.from_s == entry.from_s)
                .unwrap();
            if idx != active {
                runtime.set_discharge_directive(entry.directive);
                runtime.set_preserve(entry.preserve);
                active = idx;
                println!("t = {t:>5.0} s: switched to schedule entry {idx}");
            }
        }
        // Demand follows the hinted segment means.
        let seg = route
            .segments()
            .iter()
            .scan(0.0, |acc, s| {
                let start = *acc;
                *acc += s.dur_s;
                Some((start, s))
            })
            .find(|(start, s)| t >= *start && t < start + s.dur_s)
            .map(|(_, s)| s.expected_w)
            .unwrap_or(0.0);
        let input = PolicyInput::from_micro(&micro).with_load(seg);
        runtime.tick(&mut micro, &input, dt).expect("accepted");
        let report = micro.step(seg, 0.0, dt);
        assert!(report.unmet_w < 1e-9, "route must be drivable");
        t += dt;
    }

    let (delivered, circuit, heat, _, _) = micro.energy_totals_j();
    println!("\nroute complete:");
    println!(
        "  delivered {:.2} kWh-equivalent ({:.0} kJ)",
        delivered / 3.6e6,
        delivered / 1e3
    );
    println!(
        "  losses: {:.0} J circuit, {:.0} J cell heat",
        circuit, heat
    );
    for (i, c) in micro.cells().iter().enumerate() {
        println!(
            "  battery {i} ({}) at {:.1}% SoC",
            c.spec().name,
            c.soc() * 100.0
        );
    }
}
