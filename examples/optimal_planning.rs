//! How much is future knowledge worth? The paper observes that its
//! instantaneously-optimal policies "are not globally optimal" and that
//! knowing the workload ahead of time would let a scheduler do better.
//! This example makes that concrete on the watch scenario: it computes the
//! offline-optimal discharge plan by dynamic programming and compares it
//! with the online policies.
//!
//! ```text
//! cargo run --release --example optimal_planning
//! ```

use sdb::battery_model::library;
use sdb::core::optimal::{plan, CellParams, PlanConfig};
use sdb::core::scenarios::watch::{watch_scenario, WatchPolicy};
use sdb::workloads::traces::watch_day;

fn main() {
    let seed = 13;
    let trace = watch_day(seed, Some(9.0));
    println!(
        "watch day: {:.1} Wh demanded over 24 h, GPS run at hour 9\n",
        trace.load_energy_j() / 3600.0
    );

    // Online policies (no future knowledge).
    let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), seed);
    let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), seed);
    let oracle = watch_scenario(WatchPolicy::Oracle, Some(9.0), seed);

    // The offline DP plan.
    let cells = [
        CellParams::from_spec(library::watch_li_ion().spec()),
        CellParams::from_spec(library::watch_bendable().spec()),
    ];
    let result = plan(&cells, &trace, &PlanConfig::default());

    println!("{:<44} {:>12}", "scheduler", "battery life");
    for (label, life) in [
        (p1.policy.label(), p1.life_s),
        (p2.policy.label(), p2.life_s),
        (oracle.policy.label(), oracle.life_s),
        ("DP plan (offline optimum)", result.life_s),
    ] {
        println!("{:<44} {:>9.1} h", label, life / 3600.0);
    }

    // What does the optimal schedule look like? Show the Li-ion share it
    // chooses per hour (mean over the hour's segments).
    let seg_per_h = (3600.0 / PlanConfig::default().segment_s) as usize;
    println!("\noptimal Li-ion share by hour (while alive):");
    for h in 0..(result.schedule.len() / seg_per_h) {
        let mean: f64 = result.schedule[h * seg_per_h..(h + 1) * seg_per_h]
            .iter()
            .sum::<f64>()
            / seg_per_h as f64;
        let bar = "#".repeat((mean * 30.0).round() as usize);
        println!("  hour {h:>2}: {mean:4.2} {bar}");
    }
    println!(
        "\nThe plan starves the efficient Li-ion cell through the morning, spends\n\
         it on the run at hour 9, and splits loss-optimally afterwards — the\n\
         strategy the paper's preserve heuristic approximates."
    );
}
