//! A small campaign matrix end to end: expand, run, fold, render.
//!
//! The campaign orchestrator composes the repo's subsystems — scenario
//! corpus, chemistry library, chaos fault plans, policies, and both fleet
//! engines — into one differential matrix whose report is a pure function
//! of the spec (byte-identical at any thread count). This example runs a
//! pruned 8-cell matrix and prints the text report plus the golden
//! baseline a CI gate would commit.
//!
//! ```text
//! cargo run --release --example campaign_matrix
//! ```

use sdb::campaign::{run_campaign, Baseline, CampaignOptions, CampaignRun, CampaignSpec};

fn main() {
    let spec = CampaignSpec {
        scenarios: vec!["standby".to_owned()],
        chemistries: vec!["co".to_owned(), "lfp".to_owned()],
        faults: vec!["none".to_owned(), "moderate".to_owned()],
        policies: vec!["greedy".to_owned()],
        engines: vec!["scalar".to_owned(), "soa".to_owned()],
        master_seed: 42,
        hours: 1.0,
        devices_per_cell: 1,
    };
    let run = run_campaign(&spec, &CampaignOptions::default()).expect("campaign runs");
    let CampaignRun::Complete(report) = run else {
        unreachable!("no stop budget set");
    };
    print!("{}", report.render_text());

    // The committed-baseline view of the same run: what `sdb campaign
    // --write-baseline` would record and later runs would diff against.
    println!();
    print!("{}", Baseline::from_report(&report).render());

    // Engine pairs share every seed (the engine axis is excluded from
    // seed derivation), so scalar/soa differences are purely numerical.
    let scalar = report
        .cell("standby/co/none/greedy/scalar")
        .expect("cell present");
    let soa = report
        .cell("standby/co/none/greedy/soa")
        .expect("cell present");
    println!();
    println!(
        "engine pair standby/co/none/greedy: scalar supplied {:.1} J, soa supplied {:.1} J, ff ticks {}",
        scalar.total_supplied_j(),
        soa.total_supplied_j(),
        soa.ff_ticks(),
    );
}
