//! Greedy blend vs receding-horizon planner vs perfect-forecast oracle.
//!
//! The paper's CCB/RBL policies are instantaneously optimal; its Section 8
//! notes that knowledge of the future workload is where the remaining
//! headroom lives. This example runs the `sdb-policy` evaluation corpus —
//! every pack class under energy pressure — under all three policy modes
//! and prints the head-to-head table: battery life, brownouts, unserved
//! energy, losses, wear spread, directive pushes, and re-plans.
//!
//! ```text
//! cargo run --release --example policy_headtohead
//! ```

use sdb::policy::{run_head_to_head, PolicyMode};

fn main() {
    let seed = 42;
    let h = run_head_to_head(seed);
    print!("{}", h.render_text());

    // Spell out what the planner changed on the scenarios it won.
    println!();
    for chunk in h.rows.chunks_exact(3) {
        let (greedy, planned, oracle) = (&chunk[0], &chunk[1], &chunk[2]);
        debug_assert_eq!(greedy.policy, PolicyMode::Greedy);
        debug_assert_eq!(oracle.policy, PolicyMode::Oracle);
        let dl_plan = (planned.life_s - greedy.life_s) / 3600.0;
        let dl_orac = (oracle.life_s - greedy.life_s) / 3600.0;
        println!(
            "{:<16} planner {:+.2} h vs greedy ({} replans, forecast mae {:.3} W); oracle {:+.2} h",
            greedy.scenario, dl_plan, planned.replans, planned.forecast_mae_w, dl_orac
        );
    }
}
