//! The Section 5.1 fast-charging scenario: how much of the capacity budget
//! to give a fast-charging battery, and how the charging directive changes
//! behavior (overnight vs pre-flight).
//!
//! ```text
//! cargo run --release --example fast_charge
//! ```

use sdb::core::policy::ChargeDirective;
use sdb::core::runtime::SdbRuntime;
use sdb::core::scenarios::hybrid::{charge_time_curve, HybridConfig};
use sdb::core::scheduler::run_charge_session;

fn main() {
    let configs = HybridConfig::paper_configs();
    println!("8000 mAh budget split between high-energy and fast-charging cells:\n");
    println!(
        "{:<22} {:>18} {:>22} {:>22}",
        "fast-charge share", "density (Wh/l)", "to 40% charge (min)", "capacity @1000cyc (%)"
    );
    for config in &configs {
        let curve = charge_time_curve(config, 60.0);
        println!(
            "{:<22} {:>18.1} {:>22} {:>22.1}",
            config.label(),
            config.energy_density_wh_per_l(),
            curve
                .minutes_to(40.0)
                .map_or_else(|| "-".to_owned(), |m| format!("{m:.1}")),
            config.longevity_after_cycles(1000),
        );
    }

    // The charging directive in action on the 50/50 SDB pack: an urgent
    // pre-flight top-up (directive 1.0 → RBL-Charge) against a relaxed
    // overnight charge (directive 0.0 → CCB-Charge).
    // With an abundant supply both directives saturate every cell's
    // acceptance; the difference shows on a constrained 18 W charger.
    let sdb = configs[1];
    println!("\ncharging the SDB pack from empty with a constrained 18 W supply:");
    for (label, directive) in [
        ("pre-flight (RBL-Charge)", 1.0),
        ("overnight (CCB-Charge)", 0.0),
    ] {
        let mut micro = sdb.build_pack(0.0);
        let mut runtime = SdbRuntime::new(2);
        runtime.set_charge_directive(ChargeDirective::new(directive));
        runtime.set_update_period(30.0);
        let times = run_charge_session(
            &mut micro,
            &mut runtime,
            18.0,
            &[0.25, 0.50, 0.80],
            6.0 * 3600.0,
            15.0,
        );
        let fmt =
            |t: Option<f64>| t.map_or_else(|| "-".to_owned(), |s| format!("{:.0} min", s / 60.0));
        println!(
            "  {label:<26} 25%: {:>8}   50%: {:>8}   80%: {:>8}",
            fmt(times[0]),
            fmt(times[1]),
            fmt(times[2]),
        );
        let wear: Vec<f64> = micro.cells().iter().map(|c| c.wear_ratio()).collect();
        println!("  {:<26} wear after session: {wear:?}", "");
    }
    println!("\nThe pre-flight directive front-loads the fast cell and wins the early");
    println!("targets; note how CCB reaches 80% sooner — the instantaneously-optimal");
    println!("RBL choice over-commits to the fast cell and pays in its taper, the");
    println!("paper's point that instantaneous optimality is not global optimality.");
}
