//! Build script for the `sdb` binary: captures build identity
//! (short git hash, rustc version) into compile-time env vars so
//! `sdb --version` and the `/healthz` body can report them. Every probe
//! falls back to `"unknown"` — builds from a tarball (no `.git`) or with
//! an unusual toolchain layout must still succeed.

use std::process::Command;

fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_owned())
}

fn main() {
    let git_hash =
        probe("git", &["rev-parse", "--short", "HEAD"]).unwrap_or_else(|| "unknown".to_owned());
    let rustc = std::env::var("RUSTC")
        .ok()
        .and_then(|rustc| probe(&rustc, &["--version"]))
        .or_else(|| probe("rustc", &["--version"]))
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=SDB_GIT_HASH={git_hash}");
    println!("cargo:rustc-env=SDB_RUSTC_VERSION={rustc}");
    // Re-run when HEAD moves so the embedded hash stays honest.
    println!("cargo:rerun-if-changed=.git/HEAD");
    println!("cargo:rerun-if-changed=build.rs");
}
