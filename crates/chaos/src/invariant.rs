//! The invariant-checking harness.
//!
//! An [`InvariantChecker`] is hooked into a simulation's step loop and
//! asserts the physical and contractual invariants of the SDB stack on
//! every step — under clean *and* chaos conditions the following must
//! hold:
//!
//! * **SoC bounds** — every state of charge stays in `[0, 1]`.
//! * **Load accounting** — `supplied + unmet = demanded` each step.
//! * **Ratio validity** — commanded charge/discharge tuples are
//!   non-negative and sum to 1.
//! * **Safety envelope** — per-cell current stays within the spec limits
//!   and cell temperature below the thermal ceiling.
//! * **Wear monotonicity** — cycle counts never decrease.
//! * **Energy conservation** — lifetime `supplied + circuit loss + cell
//!   heat` never exceeds chemical energy drawn plus external input beyond
//!   the configured loss-model tolerance (plus a small explicit slack for
//!   deep-discharge steps, where the emulator's served-power booking is
//!   documented to sag above the cell's true integral).
//!
//! Violations are collected (not panicked), so a chaos campaign can count
//! them per fault class; tests assert [`InvariantReport::is_clean`].

use sdb_emulator::micro::{Microcontroller, StepReport};
use std::fmt;

/// Tolerances for the checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantConfig {
    /// Relative tolerance on the lifetime energy-conservation identity
    /// (covers loss-model discretization error).
    pub energy_tol_frac: f64,
    /// Absolute slack on the energy identity, joules (for tiny runs).
    pub energy_tol_j: f64,
    /// Tolerance on ratio sums and component non-negativity.
    pub ratio_tol: f64,
    /// Absolute tolerance on per-step load accounting, watts.
    pub power_tol_w: f64,
    /// Hard ceiling on cell temperature, °C.
    pub max_cell_temp_c: f64,
    /// Allowed overshoot factor on spec current limits.
    pub current_margin: f64,
    /// SoC below which a discharging cell is in the steep tail of its
    /// OCV curve, where the emulator books served power at the request
    /// while the sagging cell integral delivers slightly less.
    pub deep_soc: f64,
    /// Extra relative slack accrued on the energy identity for energy
    /// supplied during deep-discharge steps (see
    /// [`InvariantConfig::deep_soc`]).
    pub deep_slack_frac: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            energy_tol_frac: 0.02,
            energy_tol_j: 1.0,
            ratio_tol: 1e-6,
            power_tol_w: 1e-3,
            max_cell_temp_c: 100.0,
            current_margin: 1.05,
            deep_soc: 0.15,
            deep_slack_frac: 0.05,
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time of the violating step, seconds.
    pub t_s: f64,
    /// Which invariant failed (stable slug).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={:.1}s] {}: {}",
            self.t_s, self.invariant, self.detail
        )
    }
}

/// Final tally of an invariant-checked run.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantReport {
    /// Steps checked.
    pub steps: u64,
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Total violations observed (details capped at 64 entries).
    pub violation_count: u64,
    /// The recorded violations (first 64).
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// Whether the run upheld every invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariants: {} checks over {} steps, {} violations",
            self.checks, self.steps, self.violation_count
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Maximum violation details retained (the count keeps running).
const MAX_DETAILS: usize = 64;

/// Step-hooked invariant checker over one `(Microcontroller, run)` pair.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    cfg: InvariantConfig,
    /// Per-cell spec limits captured at construction.
    max_discharge_a: Vec<f64>,
    max_charge_a: Vec<f64>,
    /// `(delivered, circuit_loss, cell_heat, unmet, external)` baseline.
    baseline_totals: (f64, f64, f64, f64, f64),
    /// `Σ (energy_out − energy_in + heat)` per cell at baseline.
    baseline_chem_j: f64,
    last_cycle_counts: Vec<u32>,
    /// End time of the last `check_step`, for per-step durations.
    last_step_t_s: f64,
    /// Accumulated deep-discharge slack on the energy identity, joules.
    deep_slack_j: f64,
    steps: u64,
    checks: u64,
    violation_count: u64,
    violations: Vec<Violation>,
}

impl InvariantChecker {
    /// A checker baselined on `micro`'s current lifetime totals, with
    /// default tolerances.
    #[must_use]
    pub fn for_micro(micro: &Microcontroller) -> Self {
        Self::with_config(micro, InvariantConfig::default())
    }

    /// As [`InvariantChecker::for_micro`] with explicit tolerances.
    #[must_use]
    pub fn with_config(micro: &Microcontroller, cfg: InvariantConfig) -> Self {
        Self {
            cfg,
            max_discharge_a: micro
                .cells()
                .iter()
                .map(|c| c.spec().max_discharge_a)
                .collect(),
            max_charge_a: micro
                .cells()
                .iter()
                .map(|c| c.spec().max_charge_a)
                .collect(),
            baseline_totals: micro.energy_totals_j(),
            baseline_chem_j: chem_net_j(micro),
            last_cycle_counts: micro.cells().iter().map(|c| c.cycle_count()).collect(),
            last_step_t_s: 0.0,
            deep_slack_j: 0.0,
            steps: 0,
            checks: 0,
            violation_count: 0,
            violations: Vec::new(),
        }
    }

    fn violate(&mut self, t_s: f64, invariant: &'static str, detail: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_DETAILS {
            self.violations.push(Violation {
                t_s,
                invariant,
                detail,
            });
        }
    }

    /// Checks the per-step invariants visible in a [`StepReport`]: SoC
    /// bounds, load accounting, and the per-cell safety envelope.
    pub fn check_step(&mut self, t_s: f64, report: &StepReport) {
        self.steps += 1;
        // Deep-discharge steps accrue extra slack on the energy identity:
        // near empty the OCV curve is steep, and the emulator books served
        // power at the requested level while the sagging cell integral
        // delivers slightly less within the step.
        let dt_s = (t_s - self.last_step_t_s).max(0.0);
        self.last_step_t_s = t_s;
        let deep = report
            .batteries
            .as_slice()
            .iter()
            .any(|b| b.current_a > 0.0 && b.soc < self.cfg.deep_soc);
        if deep {
            self.deep_slack_j += self.cfg.deep_slack_frac * report.supplied_w.max(0.0) * dt_s;
        }
        for (i, b) in report.batteries.as_slice().iter().enumerate() {
            self.checks += 2;
            if !(0.0..=1.0).contains(&b.soc) || !b.soc.is_finite() {
                self.violate(t_s, "soc-bounds", format!("battery {i} soc = {}", b.soc));
            }
            let limit = if b.current_a >= 0.0 {
                self.max_discharge_a
                    .get(i)
                    .copied()
                    .unwrap_or(f64::INFINITY)
            } else {
                self.max_charge_a.get(i).copied().unwrap_or(f64::INFINITY)
            };
            if b.current_a.abs() > limit * self.cfg.current_margin {
                self.violate(
                    t_s,
                    "safety-envelope",
                    format!(
                        "battery {i} current {:.3} A exceeds limit {limit:.3} A",
                        b.current_a
                    ),
                );
            }
        }
        self.checks += 1;
        let balance = report.supplied_w + report.unmet_w - report.load_w;
        if balance.abs() > self.cfg.power_tol_w + 1e-9 * report.load_w.abs() {
            self.violate(
                t_s,
                "load-accounting",
                format!(
                    "supplied {:.6} + unmet {:.6} != load {:.6} W",
                    report.supplied_w, report.unmet_w, report.load_w
                ),
            );
        }
    }

    /// Checks the invariants that need ground-truth state: commanded ratio
    /// validity, cell temperature, wear monotonicity, and the lifetime
    /// energy-conservation identity. Call at any cadence (typically each
    /// step alongside [`InvariantChecker::check_step`], or once at the end
    /// of a run).
    pub fn check_micro(&mut self, t_s: f64, micro: &Microcontroller) {
        self.check_ratio_tuple(t_s, "discharge", micro.discharge_ratios());
        self.check_ratio_tuple(t_s, "charge", micro.charge_ratios());

        for (i, cell) in micro.cells().iter().enumerate() {
            self.checks += 2;
            if let Some(temp) = cell.temperature_c() {
                if temp > self.cfg.max_cell_temp_c {
                    self.violate(
                        t_s,
                        "safety-envelope",
                        format!("battery {i} temperature {temp:.1} °C"),
                    );
                }
            }
            let cc = cell.cycle_count();
            let last = self.last_cycle_counts.get(i).copied();
            if let Some(last) = last {
                if cc < last {
                    self.violate(
                        t_s,
                        "wear-monotonic",
                        format!("battery {i} cycle count fell {last} -> {cc}"),
                    );
                }
                self.last_cycle_counts[i] = cc;
            }
        }

        self.checks += 1;
        let (d, cl, ch, _u, e) = micro.energy_totals_j();
        let (d0, cl0, ch0, _u0, e0) = self.baseline_totals;
        let lhs = (d - d0) + (cl - cl0) + (ch - ch0);
        let rhs = (chem_net_j(micro) - self.baseline_chem_j) + (e - e0);
        if lhs > rhs * (1.0 + self.cfg.energy_tol_frac) + self.cfg.energy_tol_j + self.deep_slack_j
        {
            self.violate(
                t_s,
                "energy-conservation",
                format!("accounted output {lhs:.1} J exceeds chemical+external input {rhs:.1} J"),
            );
        }
    }

    fn check_ratio_tuple(&mut self, t_s: f64, which: &'static str, ratios: &[f64]) {
        self.checks += 1;
        let sum: f64 = ratios.iter().sum();
        let bad_sum = (sum - 1.0).abs() > self.cfg.ratio_tol;
        let bad_component = ratios
            .iter()
            .any(|r| *r < -self.cfg.ratio_tol || !r.is_finite());
        if bad_sum || bad_component {
            self.violate(
                t_s,
                "ratio-validity",
                format!("{which} ratios {ratios:?} (sum {sum})"),
            );
        }
    }

    /// Violations recorded so far (details capped; see
    /// [`InvariantReport::violation_count`] for the true total).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been violated so far.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    /// Finalizes into a report.
    #[must_use]
    pub fn finish(self) -> InvariantReport {
        InvariantReport {
            steps: self.steps,
            checks: self.checks,
            violation_count: self.violation_count,
            violations: self.violations,
        }
    }
}

/// Lifetime chemical energy balance across all cells: terminal energy out
/// minus energy in plus internal heat, joules.
fn chem_net_j(micro: &Microcontroller) -> f64 {
    micro
        .cells()
        .iter()
        .map(|c| c.energy_out_j() - c.energy_in_j() + c.heat_j())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_core::runtime::SdbRuntime;
    use sdb_core::scheduler::{run_trace_observed, SimOptions};
    use sdb_emulator::pack::PackBuilder;
    use sdb_workloads::traces::Trace;

    fn micro() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        let mut checker = InvariantChecker::for_micro(&m);
        run_trace_observed(
            &mut m,
            &mut rt,
            &Trace::constant(4.0, 3600.0),
            &SimOptions::default(),
            |t, rep| checker.check_step(t, rep),
        );
        checker.check_micro(3600.0, &m);
        let report = checker.finish();
        assert!(report.is_clean(), "{report}");
        assert!(report.steps > 0 && report.checks > report.steps);
    }

    #[test]
    fn deep_discharge_overload_stays_clean() {
        // Near-empty pack under a 25 W overload: the emulator books served
        // power at the request while the sagging cells deliver less — the
        // deep-discharge slack must absorb that documented drift without
        // flagging energy-conservation.
        use sdb_emulator::profile::ProfileKind;
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 3.0),
                0.08,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 3.0),
                0.08,
                ProfileKind::Fast,
            )
            .build();
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        let mut checker = InvariantChecker::for_micro(&m);
        for step in 0..6 {
            let r = m.step(25.0, 0.0, 60.0);
            let t = f64::from(step + 1) * 60.0;
            checker.check_step(t, &r);
            checker.check_micro(t, &m);
        }
        let report = checker.finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn doctored_report_is_caught() {
        let m = micro();
        let mut checker = InvariantChecker::for_micro(&m);
        let mut report = m.clone().step(4.0, 0.0, 1.0);
        report.supplied_w = report.load_w + 1.0; // energy from nowhere
        report.batteries.as_mut_slice()[0].soc = 1.5;
        checker.check_step(1.0, &report);
        let tally = checker.finish();
        assert_eq!(tally.violation_count, 2, "{tally}");
        assert!(tally.violations.iter().any(|v| v.invariant == "soc-bounds"));
        assert!(tally
            .violations
            .iter()
            .any(|v| v.invariant == "load-accounting"));
    }

    #[test]
    fn detail_cap_keeps_counting() {
        let m = micro();
        let mut checker = InvariantChecker::for_micro(&m);
        let mut report = m.clone().step(4.0, 0.0, 1.0);
        report.batteries.as_mut_slice()[0].soc = -0.1;
        for t in 0..100 {
            checker.check_step(f64::from(t), &report);
        }
        let tally = checker.finish();
        assert_eq!(tally.violation_count, 100);
        assert_eq!(tally.violations.len(), MAX_DETAILS);
        assert!(!tally.is_clean());
    }
}
