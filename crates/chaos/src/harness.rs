//! Drop-in invariant-checked simulation wrappers.
//!
//! These mirror the sdb-core scheduler entry points but run an
//! [`InvariantChecker`](crate::invariant::InvariantChecker) over every
//! step and panic at the end of the run if any invariant was violated —
//! so a test switches from "runs" to "runs and proves the physics" by
//! changing one function name.

use crate::invariant::InvariantChecker;
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{
    run_charge_session, run_trace_linked_with, run_trace_observed, LinkedSimOptions, SimOptions,
    SimResult,
};
use sdb_emulator::link::Link;
use sdb_emulator::micro::Microcontroller;
use sdb_workloads::traces::Trace;

/// As [`sdb_core::scheduler::run_trace`], with every invariant checked on
/// every step.
///
/// # Panics
///
/// Panics if any invariant was violated during the run.
#[must_use]
pub fn checked_run_trace(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
) -> SimResult {
    let mut checker = InvariantChecker::for_micro(micro);
    let result = run_trace_observed(micro, runtime, trace, opts, |t, report| {
        checker.check_step(t, report);
    });
    checker.check_micro(result.simulated_s, micro);
    let report = checker.finish();
    assert!(report.is_clean(), "invariant violations:\n{report}");
    result
}

/// As [`run_charge_session`], with the ground-truth invariants checked
/// after the session.
///
/// # Panics
///
/// Panics on invariant violations, or if `targets` is not ascending.
#[must_use]
pub fn checked_run_charge_session(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    external_w: f64,
    targets: &[f64],
    max_s: f64,
    dt_s: f64,
) -> Vec<Option<f64>> {
    let mut checker = InvariantChecker::for_micro(micro);
    let reached = run_charge_session(micro, runtime, external_w, targets, max_s, dt_s);
    checker.check_micro(micro.time_s(), micro);
    let report = checker.finish();
    assert!(report.is_clean(), "invariant violations:\n{report}");
    reached
}

/// As [`sdb_core::scheduler::run_trace_linked`], with every invariant
/// checked on every step.
///
/// # Panics
///
/// Panics if any invariant was violated during the run.
#[must_use]
pub fn checked_run_trace_linked(
    link: &mut Link,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &LinkedSimOptions,
) -> SimResult {
    let mut checker = InvariantChecker::for_micro(link.micro());
    let result = run_trace_linked_with(
        link,
        runtime,
        trace,
        opts,
        |_, _| {},
        |t, link, report| {
            checker.check_step(t, report);
            checker.check_micro(t, link.micro());
        },
    );
    let report = checker.finish();
    assert!(report.is_clean(), "invariant violations:\n{report}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;

    #[test]
    fn checked_wrappers_pass_clean_runs() {
        let mut m = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build();
        let mut rt = SdbRuntime::new(2);
        let r = checked_run_trace(
            &mut m,
            &mut rt,
            &Trace::constant(4.0, 1800.0),
            &SimOptions::default(),
        );
        assert!(r.unmet_j < 1e-6);
        let _ = checked_run_charge_session(&mut m, &mut rt, 20.0, &[0.9], 2.0 * 3600.0, 60.0);
    }
}
