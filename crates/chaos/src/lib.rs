//! Deterministic chaos engine for the SDB stack.
//!
//! Reliability is the unstated premise of the paper's runtime: policies
//! only help if the stack keeps its invariants when hardware misbehaves.
//! This crate provides the three pieces to test that:
//!
//! * [`plan`] — seed-driven [`FaultPlan`]s over ten fault classes (lossy
//!   link, degraded gauges, cell/pack faults), bit-for-bit replayable,
//!   applied to a live [`sdb_emulator::link::Link`] by a [`PlanExecutor`].
//! * [`invariant`] — a step-hooked [`InvariantChecker`] asserting energy
//!   conservation, SoC bounds, ratio validity, the safety envelope, and
//!   wear monotonicity; collects violations instead of panicking so
//!   campaigns can tabulate them.
//! * [`campaign`] — sharded multi-device chaos campaigns
//!   ([`run_campaign`]) whose reports are byte-identical for any thread
//!   count, with per-fault-class outcome tables.
//!
//! # Quickstart
//!
//! ```
//! use sdb_chaos::{run_campaign, CampaignSpec};
//!
//! let spec = CampaignSpec { devices: 3, horizon_s: 900.0, ..CampaignSpec::default() };
//! let report = run_campaign(&spec, 2).unwrap();
//! assert_eq!(report.total_violations, 0, "{}", report.render_text());
//! ```

pub mod campaign;
pub mod harness;
pub mod invariant;
pub mod plan;

pub use campaign::{
    run_campaign, run_campaign_observed, CampaignReport, CampaignSpec, ChaosOutcome, ClassRow,
};
pub use harness::{checked_run_charge_session, checked_run_trace, checked_run_trace_linked};
pub use invariant::{InvariantChecker, InvariantConfig, InvariantReport, Violation};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanExecutor, FAULT_CLASSES};
