//! Seed-driven fault plans.
//!
//! A [`FaultPlan`] is a timetable of [`FaultEvent`]s — each activates one
//! [`FaultKind`] for a `[start_s, end_s)` window. Plans are a pure
//! function of `(seed, horizon, intensity, battery count)`, so any chaos
//! run is bit-for-bit replayable from its seed, and a plan can be printed
//! and re-applied to reproduce a failure by hand.

use sdb_emulator::link::Link;
use sdb_emulator::micro::ThermalThrottle;
use sdb_fuel_gauge::gauge::GaugeFault;
use sdb_rng::DetRng;

/// Names of every fault class, in [`FaultKind::class_index`] order.
pub const FAULT_CLASSES: [&str; 10] = [
    "link-drop",
    "link-latency",
    "link-duplicate",
    "stale-status",
    "gauge-stuck",
    "gauge-bias",
    "gauge-quantization",
    "dcir-growth",
    "detach",
    "thermal-trip",
];

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Link: drop each command with probability `per_mille`/1000.
    LinkDrop {
        /// Drop probability in parts per thousand.
        per_mille: u32,
    },
    /// Link: force every delivery to take `ticks` steps.
    LinkLatency {
        /// Forced delivery latency in link steps.
        ticks: u32,
    },
    /// Link: deliver each command twice with probability `per_mille`/1000.
    LinkDuplicate {
        /// Duplication probability in parts per thousand.
        per_mille: u32,
    },
    /// Link: `QueryBatteryStatus` serves a frozen snapshot.
    StaleStatus,
    /// Gauge: the SoC estimate freezes at its current value.
    GaugeStuck {
        /// Target battery index.
        battery: usize,
    },
    /// Gauge: the current sense drifts linearly over time.
    GaugeBiasRamp {
        /// Target battery index.
        battery: usize,
        /// Bias growth rate, amps per hour of fault time.
        amps_per_hour: f64,
    },
    /// Gauge: the ADC effectively loses resolution.
    GaugeQuantization {
        /// Target battery index.
        battery: usize,
        /// Multiplier on the ADC least-significant-bit size.
        lsb_scale: f64,
    },
    /// Cell: sudden internal-resistance growth (aging jump, cold spot).
    DcirGrowth {
        /// Target battery index.
        battery: usize,
        /// Resistance multiplier while the fault is active (> 1).
        mult: f64,
    },
    /// Pack: the battery detaches (2-in-1 base removed) and reattaches
    /// when the window closes.
    Detach {
        /// Target battery index.
        battery: usize,
    },
    /// Firmware: an aggressively low thermal throttle trips charging.
    ThermalTrip {
        /// Throttle limit, °C (set near ambient to trip immediately).
        limit_c: f64,
    },
}

impl FaultKind {
    /// Index into [`FAULT_CLASSES`] for this fault.
    #[must_use]
    pub fn class_index(&self) -> usize {
        match self {
            Self::LinkDrop { .. } => 0,
            Self::LinkLatency { .. } => 1,
            Self::LinkDuplicate { .. } => 2,
            Self::StaleStatus => 3,
            Self::GaugeStuck { .. } => 4,
            Self::GaugeBiasRamp { .. } => 5,
            Self::GaugeQuantization { .. } => 6,
            Self::DcirGrowth { .. } => 7,
            Self::Detach { .. } => 8,
            Self::ThermalTrip { .. } => 9,
        }
    }

    /// Stable class name (for outcome tables and JSON).
    #[must_use]
    pub fn fault_class(&self) -> &'static str {
        FAULT_CLASSES[self.class_index()]
    }
}

/// A fault active over `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Activation time, seconds.
    pub start_s: f64,
    /// Deactivation time, seconds.
    pub end_s: f64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic timetable of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from explicit events (for scripted scenarios and tests).
    #[must_use]
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// Generates a plan as a pure function of the arguments.
    ///
    /// `intensity` in `[0, 1]` scales the expected fault count (~1 fault
    /// per 10 simulated minutes at full intensity); 0 yields an empty
    /// plan. Faults start in the first 80 % of the horizon and last
    /// between one minute and 20 % of the horizon, so every fault has
    /// room to bite *and* to clear before the run ends.
    #[must_use]
    pub fn generate(seed: u64, horizon_s: f64, intensity: f64, n_batteries: usize) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let n_batteries = n_batteries.max(1);
        let mut rng = DetRng::seed_from_u64(seed);
        let expected = horizon_s / 600.0 * intensity;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut count = expected.floor() as u64;
        if rng.chance(expected.fract()) {
            count += 1;
        }
        let mut events = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        for _ in 0..count {
            let start_s = rng.f64_range(0.0, horizon_s * 0.8);
            let dur_s = rng.f64_range(60.0, (horizon_s * 0.2).max(61.0));
            let battery = rng.index(n_batteries);
            let kind = match rng.below(10) {
                0 => FaultKind::LinkDrop {
                    #[allow(clippy::cast_possible_truncation)]
                    per_mille: rng.below(700) as u32 + 100,
                },
                1 => FaultKind::LinkLatency {
                    #[allow(clippy::cast_possible_truncation)]
                    ticks: rng.below(5) as u32 + 1,
                },
                2 => FaultKind::LinkDuplicate {
                    #[allow(clippy::cast_possible_truncation)]
                    per_mille: rng.below(500) as u32 + 100,
                },
                3 => FaultKind::StaleStatus,
                4 => FaultKind::GaugeStuck { battery },
                5 => FaultKind::GaugeBiasRamp {
                    battery,
                    amps_per_hour: rng.f64_range(0.1, 1.0),
                },
                6 => FaultKind::GaugeQuantization {
                    battery,
                    lsb_scale: rng.f64_range(10.0, 200.0),
                },
                7 => FaultKind::DcirGrowth {
                    battery,
                    mult: rng.f64_range(1.5, 4.0),
                },
                8 => FaultKind::Detach { battery },
                _ => FaultKind::ThermalTrip {
                    limit_c: rng.f64_range(25.0, 35.0),
                },
            };
            events.push(FaultEvent {
                start_s,
                end_s: (start_s + dur_s).min(horizon_s),
                kind,
            });
        }
        // Deterministic application order regardless of draw order.
        events.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .expect("plan times are finite")
                .then(a.end_s.partial_cmp(&b.end_s).expect("finite"))
        });
        Self { events }
    }

    /// The scheduled events, sorted by start time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A plan keeping only the events whose index is flagged in `keep`
    /// (missing flags drop the event). Event order is preserved, so a
    /// subset plan replays its surviving events at the original times —
    /// the shrink primitive for delta-debugging a failing chaos run down
    /// to its minimal fault set.
    #[must_use]
    pub fn subset(&self, keep: &[bool]) -> Self {
        Self {
            events: self
                .events
                .iter()
                .enumerate()
                .filter(|(i, _)| keep.get(*i).copied().unwrap_or(false))
                .map(|(_, ev)| *ev)
                .collect(),
        }
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Applies a [`FaultPlan`] to a [`Link`] as simulated time advances:
/// call [`PlanExecutor::apply`] from the `pre_step` hook of
/// `run_trace_linked_with` (or any stepping loop).
#[derive(Debug, Clone)]
pub struct PlanExecutor {
    plan: FaultPlan,
    active: Vec<bool>,
    injected: u64,
    per_class: [u64; FAULT_CLASSES.len()],
}

impl PlanExecutor {
    /// An executor over `plan` with every fault initially inactive.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.len();
        Self {
            plan,
            active: vec![false; n],
            injected: 0,
            per_class: [0; FAULT_CLASSES.len()],
        }
    }

    /// Activates / deactivates faults whose windows `t_s` has entered or
    /// left. Idempotent per step; activation order is plan order.
    pub fn apply(&mut self, t_s: f64, link: &mut Link) {
        for (i, ev) in self.plan.events.iter().enumerate() {
            let should = t_s >= ev.start_s && t_s < ev.end_s;
            if should == self.active[i] {
                continue;
            }
            self.active[i] = should;
            if should {
                self.injected += 1;
                self.per_class[ev.kind.class_index()] += 1;
            }
            Self::set(link, ev.kind, should);
        }
    }

    /// Total fault activations so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Activations per fault class ([`FAULT_CLASSES`] order).
    #[must_use]
    pub fn injected_per_class(&self) -> [u64; FAULT_CLASSES.len()] {
        self.per_class
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn set(link: &mut Link, kind: FaultKind, on: bool) {
        match kind {
            FaultKind::LinkDrop { per_mille } => {
                link.set_fault_drop_per_mille(if on { per_mille } else { 0 });
            }
            FaultKind::LinkLatency { ticks } => {
                link.set_fault_latency(on.then_some(ticks));
            }
            FaultKind::LinkDuplicate { per_mille } => {
                link.set_fault_dup_per_mille(if on { per_mille } else { 0 });
            }
            FaultKind::StaleStatus => link.set_fault_stale_status(on),
            FaultKind::GaugeStuck { battery } => {
                let _ = link
                    .micro_mut()
                    .set_gauge_fault(battery, on.then_some(GaugeFault::StuckSoc));
            }
            FaultKind::GaugeBiasRamp {
                battery,
                amps_per_hour,
            } => {
                let _ = link.micro_mut().set_gauge_fault(
                    battery,
                    on.then_some(GaugeFault::BiasRamp { amps_per_hour }),
                );
            }
            FaultKind::GaugeQuantization { battery, lsb_scale } => {
                let _ = link.micro_mut().set_gauge_fault(
                    battery,
                    on.then_some(GaugeFault::QuantizationStorm { lsb_scale }),
                );
            }
            FaultKind::DcirGrowth { battery, mult } => {
                let _ = link
                    .micro_mut()
                    .set_cell_fault_resistance(battery, if on { mult } else { 1.0 });
            }
            FaultKind::Detach { battery } => {
                let _ = link.micro_mut().set_battery_present(battery, !on);
            }
            FaultKind::ThermalTrip { limit_c } => {
                link.micro_mut()
                    .set_thermal_throttle(on.then_some(ThermalThrottle {
                        limit_c,
                        resume_c: limit_c - 5.0,
                    }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 4.0 * 3600.0, 0.8, 2);
        let b = FaultPlan::generate(42, 4.0 * 3600.0, 0.8, 2);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4.0 * 3600.0, 0.8, 2);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zero_intensity_is_empty() {
        assert!(FaultPlan::generate(1, 3600.0, 0.0, 2).is_empty());
    }

    #[test]
    fn events_fit_the_horizon_and_are_sorted() {
        let plan = FaultPlan::generate(7, 2.0 * 3600.0, 1.0, 3);
        assert!(!plan.is_empty());
        for w in plan.events().windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        for ev in plan.events() {
            assert!(ev.start_s >= 0.0 && ev.end_s <= 2.0 * 3600.0);
            assert!(ev.end_s > ev.start_s);
        }
    }

    #[test]
    fn subset_preserves_order_and_drops_unflagged() {
        let plan = FaultPlan::generate(7, 2.0 * 3600.0, 1.0, 3);
        assert!(plan.len() >= 2, "full intensity over 2 h injects");
        let keep: Vec<bool> = (0..plan.len()).map(|i| i % 2 == 0).collect();
        let sub = plan.subset(&keep);
        assert_eq!(sub.len(), keep.iter().filter(|&&k| k).count());
        let expected: Vec<_> = plan.events().iter().step_by(2).copied().collect();
        assert_eq!(sub.events(), expected.as_slice());
        // Short flag vectors drop the tail; all-false empties the plan.
        assert_eq!(plan.subset(&[true]).len(), 1);
        assert!(plan.subset(&[]).is_empty());
    }

    #[test]
    fn executor_toggles_faults_on_and_off() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start_s: 10.0,
            end_s: 20.0,
            kind: FaultKind::StaleStatus,
        }]);
        let micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .build();
        let mut link = Link::ideal(micro);
        let mut exec = PlanExecutor::new(plan);
        exec.apply(0.0, &mut link);
        assert!(!link.stale_status_active());
        exec.apply(10.0, &mut link);
        assert!(link.stale_status_active());
        assert_eq!(exec.injected(), 1);
        exec.apply(25.0, &mut link);
        assert!(!link.stale_status_active());
        assert_eq!(exec.injected(), 1, "clearing is not an injection");
        assert_eq!(exec.injected_per_class()[3], 1);
    }
}
