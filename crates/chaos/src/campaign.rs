//! Sharded chaos campaigns.
//!
//! A campaign runs `devices` independent chaos simulations — each a pure
//! function of `(spec, device index)`: the device's fault plan, link
//! fault RNG, and workload all derive from `derive_seed(master_seed,
//! device)`. Work distribution follows the sdb-fleet engine (one atomic
//! work index, scoped worker threads, shard-local accumulation, merge
//! sorted by device), so the report — text and JSON — is byte-identical
//! for any thread count.

use crate::invariant::InvariantChecker;
use crate::plan::{FaultPlan, PlanExecutor, FAULT_CLASSES};
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_core::runtime::{ResilienceConfig, SdbRuntime};
use sdb_core::scheduler::{run_trace_linked_with, LinkedSimOptions, SimOptions};
use sdb_emulator::link::Link;
use sdb_emulator::pack::PackBuilder;
use sdb_observe::{EventSink, MetricsRegistry, ObsEvent, Observer};
use sdb_rng::derive_seed;
use sdb_workloads::traces::Trace;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Parameters of one chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Independent devices to simulate.
    pub devices: usize,
    /// Master seed; every per-device seed derives from it.
    pub master_seed: u64,
    /// Fault intensity in `[0, 1]` (see [`FaultPlan::generate`]).
    pub intensity: f64,
    /// Simulated span per device, seconds.
    pub horizon_s: f64,
    /// Constant device load, watts.
    pub load_w: f64,
    /// Status heartbeat period over the link, seconds.
    pub status_period_s: f64,
    /// Graceful-degradation configuration for every device runtime.
    pub resilience: ResilienceConfig,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            devices: 50,
            master_seed: 0xC4A0_5EED,
            intensity: 0.7,
            horizon_s: 2.0 * 3600.0,
            load_w: 5.0,
            status_period_s: 30.0,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Per-device campaign result (pure function of `(spec, device)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Device index in `0..spec.devices`.
    pub device: u64,
    /// Fault activations over the run.
    pub faults_injected: u64,
    /// Activations per fault class ([`FAULT_CLASSES`] order).
    pub faults_per_class: [u64; FAULT_CLASSES.len()],
    /// Invariant violations observed.
    pub violation_count: u64,
    /// First violation, if any (for triage without re-running).
    pub first_violation: Option<String>,
    /// Whether load went unserved at any point.
    pub browned_out: bool,
    /// Unserved load energy, joules.
    pub unmet_j: f64,
    /// Mean final state of charge.
    pub mean_final_soc: f64,
    /// Watchdog engagements (link went dark and the runtime fell back).
    pub watchdog_engagements: u64,
    /// Command retries issued.
    pub command_retries: u64,
    /// Gauge-degraded flags raised.
    pub gauge_degradations: u64,
}

/// Event sink counting the runtime's resilience transitions.
#[derive(Debug, Default)]
struct ResilienceCounters {
    watchdog_engagements: u64,
    command_retries: u64,
    gauge_degradations: u64,
}

impl EventSink for ResilienceCounters {
    fn record(&mut self, _t_s: f64, event: &ObsEvent) {
        match event {
            ObsEvent::WatchdogTransition { engaged: true, .. } => self.watchdog_engagements += 1,
            ObsEvent::CommandRetry { .. } => self.command_retries += 1,
            ObsEvent::GaugeDegraded { degraded: true, .. } => self.gauge_degradations += 1,
            _ => {}
        }
    }
}

/// Builds and runs one chaos device. With `registry`, the device's
/// observer registers its counters there (shared across devices and
/// threads; atomic sums keep totals deterministic) so a live scraper can
/// watch the campaign progress.
fn run_device(
    spec: &CampaignSpec,
    device: u64,
    registry: Option<&MetricsRegistry>,
) -> ChaosOutcome {
    let seed = derive_seed(spec.master_seed, device);
    let micro = PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "energy",
            Chemistry::Type2CoStandard,
            2.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "power",
            Chemistry::Type3CoPower,
            2.0,
        ))
        .build();
    let mut link = Link::ideal(micro);
    link.seed_faults(derive_seed(seed, 1));

    let counters = Arc::new(Mutex::new(ResilienceCounters::default()));
    let obs = match registry {
        Some(r) => Observer::with_registry(r.clone()),
        None => Observer::new(),
    };
    obs.add_sink(Box::new(Arc::clone(&counters)));
    link.micro_mut().set_observer(obs.clone());
    let mut runtime = SdbRuntime::new(2);
    runtime.set_observer(obs);
    runtime.enable_resilience(spec.resilience);

    let plan = FaultPlan::generate(derive_seed(seed, 2), spec.horizon_s, spec.intensity, 2);
    let mut exec = PlanExecutor::new(plan);
    let mut checker = InvariantChecker::for_micro(link.micro());

    let trace = Trace::constant(spec.load_w, spec.horizon_s);
    let opts = LinkedSimOptions {
        sim: SimOptions::default(),
        status_period_s: spec.status_period_s,
    };
    let result = run_trace_linked_with(
        &mut link,
        &mut runtime,
        &trace,
        &opts,
        |t, link| exec.apply(t, link),
        |t, link, report| {
            checker.check_step(t, report);
            checker.check_micro(t, link.micro());
        },
    );

    let tally = checker.finish();
    let c = counters.lock().expect("counter lock");
    let n = result.final_soc.len().max(1) as f64;
    ChaosOutcome {
        device,
        faults_injected: exec.injected(),
        faults_per_class: exec.injected_per_class(),
        violation_count: tally.violation_count,
        first_violation: tally.violations.first().map(ToString::to_string),
        browned_out: result.first_brownout_s.is_some(),
        unmet_j: result.unmet_j,
        mean_final_soc: result.final_soc.iter().sum::<f64>() / n,
        watchdog_engagements: c.watchdog_engagements,
        command_retries: c.command_retries,
        gauge_degradations: c.gauge_degradations,
    }
}

/// Per-fault-class aggregate row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRow {
    /// Fault class name.
    pub class: &'static str,
    /// Total activations across the fleet.
    pub activations: u64,
    /// Devices that saw at least one activation of this class.
    pub devices_hit: u64,
    /// Invariant violations on devices hit by this class (a device with
    /// several fault classes counts toward each; see the report docs).
    pub violations: u64,
    /// Brownouts on devices hit by this class.
    pub brownouts: u64,
}

/// Aggregated campaign result. Everything in here is a deterministic
/// function of the [`CampaignSpec`], independent of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Devices simulated.
    pub devices: u64,
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Fault intensity used.
    pub intensity: f64,
    /// Per-device horizon, seconds.
    pub horizon_s: f64,
    /// Total fault activations.
    pub total_faults: u64,
    /// Total invariant violations (should be zero).
    pub total_violations: u64,
    /// Devices that browned out.
    pub brownouts: u64,
    /// Total watchdog engagements.
    pub watchdog_engagements: u64,
    /// Total command retries.
    pub command_retries: u64,
    /// Total gauge-degraded flags raised.
    pub gauge_degradations: u64,
    /// Per-fault-class aggregates; violations/brownouts attribute a
    /// device's outcome to *every* class that hit it.
    pub per_class: Vec<ClassRow>,
    /// Per-device outcomes, sorted by device index.
    pub outcomes: Vec<ChaosOutcome>,
}

impl CampaignReport {
    fn from_outcomes(spec: &CampaignSpec, outcomes: Vec<ChaosOutcome>) -> Self {
        let mut per_class: Vec<ClassRow> = FAULT_CLASSES
            .iter()
            .map(|class| ClassRow {
                class,
                activations: 0,
                devices_hit: 0,
                violations: 0,
                brownouts: 0,
            })
            .collect();
        let mut total_faults = 0;
        let mut total_violations = 0;
        let mut brownouts = 0;
        let mut watchdog_engagements = 0;
        let mut command_retries = 0;
        let mut gauge_degradations = 0;
        for o in &outcomes {
            total_faults += o.faults_injected;
            total_violations += o.violation_count;
            brownouts += u64::from(o.browned_out);
            watchdog_engagements += o.watchdog_engagements;
            command_retries += o.command_retries;
            gauge_degradations += o.gauge_degradations;
            for (row, &hits) in per_class.iter_mut().zip(&o.faults_per_class) {
                row.activations += hits;
                if hits > 0 {
                    row.devices_hit += 1;
                    row.violations += o.violation_count;
                    row.brownouts += u64::from(o.browned_out);
                }
            }
        }
        Self {
            devices: outcomes.len() as u64,
            master_seed: spec.master_seed,
            intensity: spec.intensity,
            horizon_s: spec.horizon_s,
            total_faults,
            total_violations,
            brownouts,
            watchdog_engagements,
            command_retries,
            gauge_degradations,
            per_class,
            outcomes,
        }
    }

    /// Fixed-format text rendering (byte-identical across thread counts).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "chaos campaign: {} devices, seed {:#x}, intensity {:.2}, horizon {:.0} s",
            self.devices, self.master_seed, self.intensity, self.horizon_s
        );
        let _ = writeln!(
            s,
            "faults injected: {}   invariant violations: {}   brownouts: {}",
            self.total_faults, self.total_violations, self.brownouts
        );
        let _ = writeln!(
            s,
            "watchdog engagements: {}   command retries: {}   gauge degradations: {}",
            self.watchdog_engagements, self.command_retries, self.gauge_degradations
        );
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{:<20} {:>8} {:>8} {:>11} {:>10}",
            "fault class", "events", "devices", "violations", "brownouts"
        );
        for row in &self.per_class {
            let _ = writeln!(
                s,
                "{:<20} {:>8} {:>8} {:>11} {:>10}",
                row.class, row.activations, row.devices_hit, row.violations, row.brownouts
            );
        }
        if self.total_violations > 0 {
            let _ = writeln!(s);
            let _ = writeln!(s, "first violations:");
            for o in self
                .outcomes
                .iter()
                .filter(|o| o.violation_count > 0)
                .take(10)
            {
                if let Some(v) = &o.first_violation {
                    let _ = writeln!(s, "  device {}: {}", o.device, v);
                }
            }
        }
        s
    }

    /// Deterministic JSON rendering (summary plus per-class table).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"devices\":{},\"master_seed\":{},\"intensity\":{},\"horizon_s\":{},\
             \"total_faults\":{},\"total_violations\":{},\"brownouts\":{},\
             \"watchdog_engagements\":{},\"command_retries\":{},\"gauge_degradations\":{},\
             \"per_class\":[",
            self.devices,
            self.master_seed,
            self.intensity,
            self.horizon_s,
            self.total_faults,
            self.total_violations,
            self.brownouts,
            self.watchdog_engagements,
            self.command_retries,
            self.gauge_degradations
        );
        for (i, row) in self.per_class.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"class\":\"{}\",\"events\":{},\"devices\":{},\"violations\":{},\"brownouts\":{}}}",
                row.class, row.activations, row.devices_hit, row.violations, row.brownouts
            );
        }
        s.push_str("]}");
        s
    }
}

/// Runs the campaign across `threads` workers.
///
/// # Errors
///
/// Returns an error for an empty campaign, invalid intensity/horizon, or
/// if a worker panicked.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignReport, String> {
    run_campaign_inner(spec, threads, None)
}

/// [`run_campaign`] with a caller-supplied live metrics registry: every
/// device observer registers into it, so campaign counters (fault
/// injections via events, span timings, `sdb_dropped_events_total` from
/// any attached recorder) are scrapeable while the campaign runs. Counter
/// totals are commutative atomic sums, so the [`CampaignReport`] stays
/// byte-identical at any thread count.
///
/// # Errors
///
/// Same as [`run_campaign`].
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    threads: usize,
    registry: &MetricsRegistry,
) -> Result<CampaignReport, String> {
    run_campaign_inner(spec, threads, Some(registry))
}

fn run_campaign_inner(
    spec: &CampaignSpec,
    threads: usize,
    registry: Option<&MetricsRegistry>,
) -> Result<CampaignReport, String> {
    if spec.devices == 0 {
        return Err("campaign needs at least one device".to_owned());
    }
    if !(0.0..=1.0).contains(&spec.intensity) {
        return Err(format!("intensity {} outside [0, 1]", spec.intensity));
    }
    if spec.horizon_s <= 0.0 || spec.horizon_s.is_nan() {
        return Err(format!("horizon {} s must be positive", spec.horizon_s));
    }
    let threads = threads.max(1);
    let prof_run = sdb_prof::scope(sdb_prof::Phase::ChaosRun);
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<ChaosOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                let next = &next;
                s.spawn(move || {
                    sdb_prof::set_shard(shard as u16);
                    let prof_cohort = sdb_prof::enabled().then(|| sdb_prof::cohort_id("chaos"));
                    let mut outcomes = Vec::with_capacity(spec.devices / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= spec.devices {
                            break;
                        }
                        let prof_dev = sdb_prof::device_scope(prof_cohort.unwrap_or(0));
                        outcomes.push(run_device(spec, i as u64, registry));
                        drop(prof_dev);
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "chaos worker panicked".to_owned()))
            .collect::<Result<Vec<_>, String>>()
    })?;

    let mut outcomes: Vec<ChaosOutcome> = shards.into_iter().flatten().collect();
    outcomes.sort_unstable_by_key(|o| o.device);
    let report = CampaignReport::from_outcomes(spec, outcomes);
    drop(prof_run);
    if sdb_prof::enabled() {
        sdb_prof::flush_thread();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignSpec {
        CampaignSpec {
            devices: 6,
            horizon_s: 1800.0,
            intensity: 1.0,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let spec = tiny();
        let r1 = run_campaign(&spec, 1).unwrap();
        let r3 = run_campaign(&spec, 3).unwrap();
        assert_eq!(r1, r3);
        assert_eq!(r1.render_text(), r3.render_text());
        assert_eq!(r1.to_json(), r3.to_json());
    }

    #[test]
    fn campaign_injects_faults_and_upholds_invariants() {
        let report = run_campaign(&tiny(), 2).unwrap();
        assert_eq!(report.devices, 6);
        assert!(report.total_faults > 0, "full intensity must inject");
        assert_eq!(
            report.total_violations,
            0,
            "invariants must hold under chaos:\n{}",
            report.render_text()
        );
        let table_events: u64 = report.per_class.iter().map(|r| r.activations).sum();
        assert_eq!(table_events, report.total_faults);
    }

    #[test]
    fn observed_campaign_matches_and_populates_the_registry() {
        let spec = tiny();
        let plain = run_campaign(&spec, 2).unwrap();
        let registry = MetricsRegistry::new();
        let observed = run_campaign_observed(&spec, 2, &registry).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(plain.to_json(), observed.to_json());
        // The shared registry accumulated counters across all devices.
        let totals = registry.counter_totals();
        assert!(
            !totals.is_empty(),
            "observed campaign should register counters"
        );
        // Counter totals are thread-count invariant too.
        let reg1 = MetricsRegistry::new();
        run_campaign_observed(&spec, 1, &reg1).unwrap();
        assert_eq!(reg1.counter_totals(), registry.counter_totals());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = tiny();
        s.devices = 0;
        assert!(run_campaign(&s, 1).is_err());
        let mut s = tiny();
        s.intensity = 1.5;
        assert!(run_campaign(&s, 1).is_err());
    }
}
