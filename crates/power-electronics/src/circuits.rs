//! Discharge and charge circuit topologies.
//!
//! Section 3.2 contrasts naive multi-battery circuits (Figure 4a/4b) with
//! the SDB designs (Figure 4c):
//!
//! * **Discharge**: the naive circuit puts an electronic switch and storage
//!   capacitor in the high-current path; SDB folds the battery switch into
//!   the regulator's own switch, removing the series component.
//! * **Charge**: the naive circuit needs `N` buck regulators (external
//!   charging) plus a buck-boost per ordered battery pair — `O(N²)`
//!   regulators; SDB uses `N` synchronous reversible bucks — `O(N)`.
//!
//! The prototype's measured discharge loss (Figure 6a) is reproduced by
//! [`DischargeCircuit::loss_fraction`].

use crate::error::PowerError;
use crate::regulator::{FlowDirection, Regulator, RegulatorKind};
use crate::switch::SwitchPath;

/// Discharge-side topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DischargeTopology {
    /// Figure 4(a): discrete electronic switch + smoothing capacitor in
    /// series with the load (also the measured prototype's ideal-diode
    /// switch, Section 4.1).
    NaiveSwitch,
    /// Figure 4(c): switching integrated into the regulator; no extra
    /// series component.
    SdbIntegrated,
}

/// A discharge circuit serving one system load from `n` batteries.
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeCircuit {
    /// Topology.
    pub topology: DischargeTopology,
    /// Number of batteries multiplexed.
    pub batteries: usize,
    /// Per-battery conduction path.
    path: SwitchPath,
    /// Controller/driver quiescent power, watts.
    quiescent_w: f64,
}

impl DischargeCircuit {
    /// Builds a discharge circuit over `batteries` cells.
    ///
    /// # Panics
    ///
    /// Panics if `batteries` is zero.
    #[must_use]
    pub fn new(topology: DischargeTopology, batteries: usize) -> Self {
        assert!(batteries > 0, "need at least one battery");
        let (path, quiescent_w) = match topology {
            DischargeTopology::NaiveSwitch => (SwitchPath::prototype(), 0.0007),
            DischargeTopology::SdbIntegrated => (SwitchPath::integrated(), 0.0004),
        };
        Self {
            topology,
            batteries,
            path,
            quiescent_w,
        }
    }

    /// Power lost in the circuit when supplying `load_w` watts from a
    /// battery at `v_batt` volts.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for non-positive voltage or
    /// negative/non-finite load.
    pub fn loss_w(&self, load_w: f64, v_batt: f64) -> Result<f64, PowerError> {
        if !v_batt.is_finite() || v_batt <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "v_batt",
                value: v_batt,
            });
        }
        if !load_w.is_finite() || load_w < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "load_w",
                value: load_w,
            });
        }
        let current = load_w / v_batt;
        Ok(self.quiescent_w + self.path.loss_w(current))
    }

    /// Loss as a fraction of the load — the Figure 6(a) quantity.
    ///
    /// # Errors
    ///
    /// As [`DischargeCircuit::loss_w`]; zero load returns 0.
    pub fn loss_fraction(&self, load_w: f64, v_batt: f64) -> Result<f64, PowerError> {
        let loss = self.loss_w(load_w, v_batt)?;
        if load_w <= 0.0 {
            return Ok(0.0);
        }
        Ok(loss / load_w)
    }

    /// Count of discrete power components in the load path (switches +
    /// capacitors + regulator), for the BoM comparison.
    #[must_use]
    pub fn component_count(&self) -> usize {
        match self.topology {
            // Per-battery switch + storage capacitor + the regulator.
            DischargeTopology::NaiveSwitch => self.batteries + 1 + 1,
            // Just the (modified) regulator; its built-in switch multiplexes.
            DischargeTopology::SdbIntegrated => 1,
        }
    }
}

/// Charge-side topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeTopology {
    /// Figure 4(b): one buck per battery from the external supply, plus a
    /// buck-boost per *ordered* battery pair for battery-to-battery
    /// charging — `O(N²)` regulators.
    NaiveMatrix,
    /// Figure 4(c): one synchronous reversible buck per battery — `O(N)`.
    SdbReversible,
}

/// A charge circuit over `n` batteries.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeCircuit {
    /// Topology.
    pub topology: ChargeTopology,
    /// Number of batteries.
    pub batteries: usize,
    /// Per-stage regulator model used for external charging.
    external_stage: Regulator,
    /// Per-stage regulator model used for battery-to-battery transfer.
    transfer_stage: Regulator,
}

impl ChargeCircuit {
    /// Builds a charge circuit over `batteries` cells rated `rated_a` per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `batteries` is zero.
    #[must_use]
    pub fn new(topology: ChargeTopology, batteries: usize, rated_a: f64) -> Self {
        assert!(batteries > 0, "need at least one battery");
        let (external_stage, transfer_stage) = match topology {
            ChargeTopology::NaiveMatrix => (
                Regulator::typical(RegulatorKind::Buck, rated_a),
                Regulator::typical(RegulatorKind::BuckBoost, rated_a),
            ),
            ChargeTopology::SdbReversible => (
                Regulator::typical(RegulatorKind::SynchronousReversibleBuck, rated_a),
                Regulator::typical(RegulatorKind::SynchronousReversibleBuck, rated_a),
            ),
        };
        Self {
            topology,
            batteries,
            external_stage,
            transfer_stage,
        }
    }

    /// Number of switched-mode regulators required.
    #[must_use]
    pub fn regulator_count(&self) -> usize {
        match self.topology {
            ChargeTopology::NaiveMatrix => self.batteries + self.batteries * (self.batteries - 1),
            ChargeTopology::SdbReversible => self.batteries,
        }
    }

    /// Power delivered into a battery when charging from the external
    /// supply with `power_w` at battery voltage `v_batt`.
    ///
    /// # Errors
    ///
    /// Propagates regulator model errors.
    pub fn external_charge_w(&self, power_w: f64, v_batt: f64) -> Result<f64, PowerError> {
        self.external_stage
            .transfer_w(power_w, v_batt, FlowDirection::Forward)
    }

    /// Power delivered into battery Y when charging it from battery X with
    /// `power_w` drawn from X (`ChargeOneFromAnother` path).
    ///
    /// The naive matrix routes through a single buck-boost; the SDB design
    /// routes through X's regulator in reverse-buck mode and then Y's in
    /// buck mode (two stages), as in Figure 4(c).
    ///
    /// # Errors
    ///
    /// Propagates regulator model errors.
    pub fn battery_to_battery_w(
        &self,
        power_w: f64,
        v_src: f64,
        v_dst: f64,
    ) -> Result<f64, PowerError> {
        match self.topology {
            ChargeTopology::NaiveMatrix => {
                self.transfer_stage
                    .transfer_w(power_w, v_dst, FlowDirection::Forward)
            }
            ChargeTopology::SdbReversible => {
                let at_bus =
                    self.transfer_stage
                        .transfer_w(power_w, v_src, FlowDirection::Reverse)?;
                self.transfer_stage
                    .transfer_w(at_bus, v_dst, FlowDirection::Forward)
            }
        }
    }

    /// Maximum power one charging channel can push into a battery at
    /// `v_batt` (the per-channel regulator current rating).
    #[must_use]
    pub fn max_channel_power_w(&self, v_batt: f64) -> f64 {
        self.external_stage.rated_a * v_batt.max(0.0)
    }

    /// Relative charging efficiency at `current_a` (Figure 6c's quantity).
    ///
    /// # Errors
    ///
    /// Propagates regulator model errors.
    pub fn relative_efficiency(&self, current_a: f64, v_batt: f64) -> Result<f64, PowerError> {
        self.external_stage.relative_efficiency(current_a, v_batt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6a_loss_shape() {
        // Prototype (naive switch) loss: ≈1 % at 0.1 W light load, ~1.6 %
        // at 10 W, bathtub in between.
        let c = DischargeCircuit::new(DischargeTopology::NaiveSwitch, 2);
        let at = |w: f64| c.loss_fraction(w, 3.8).unwrap() * 100.0;
        let light = at(0.1);
        let mid = at(1.0);
        let heavy = at(10.0);
        assert!(light > 0.8 && light < 1.4, "light = {light}");
        assert!(mid < light, "mid = {mid}");
        assert!(heavy > 1.3 && heavy < 2.0, "heavy = {heavy}");
        assert!(heavy > mid);
    }

    #[test]
    fn integrated_design_cuts_loss() {
        let naive = DischargeCircuit::new(DischargeTopology::NaiveSwitch, 2);
        let sdb = DischargeCircuit::new(DischargeTopology::SdbIntegrated, 2);
        for &w in &[0.1, 1.0, 5.0, 10.0] {
            assert!(
                sdb.loss_fraction(w, 3.8).unwrap() < naive.loss_fraction(w, 3.8).unwrap(),
                "at {w} W"
            );
        }
    }

    #[test]
    fn discharge_component_counts() {
        let naive = DischargeCircuit::new(DischargeTopology::NaiveSwitch, 4);
        let sdb = DischargeCircuit::new(DischargeTopology::SdbIntegrated, 4);
        assert_eq!(naive.component_count(), 6);
        assert_eq!(sdb.component_count(), 1);
    }

    #[test]
    fn discharge_rejects_bad_inputs() {
        let c = DischargeCircuit::new(DischargeTopology::SdbIntegrated, 2);
        assert!(c.loss_w(1.0, 0.0).is_err());
        assert!(c.loss_w(-1.0, 3.8).is_err());
        assert_eq!(c.loss_fraction(0.0, 3.8).unwrap(), 0.0);
    }

    #[test]
    fn regulator_count_scaling() {
        // Paper: O(N²) for the naive matrix vs O(N) for SDB.
        for n in 1..=6 {
            let naive = ChargeCircuit::new(ChargeTopology::NaiveMatrix, n, 3.0);
            let sdb = ChargeCircuit::new(ChargeTopology::SdbReversible, n, 3.0);
            assert_eq!(naive.regulator_count(), n * n);
            assert_eq!(sdb.regulator_count(), n);
        }
    }

    #[test]
    fn external_charging_loses_a_few_percent() {
        let c = ChargeCircuit::new(ChargeTopology::SdbReversible, 2, 3.0);
        let delivered = c.external_charge_w(7.6, 3.8).unwrap();
        let eff = delivered / 7.6;
        assert!(eff > 0.90 && eff < 0.99, "eff = {eff}");
    }

    #[test]
    fn battery_to_battery_double_stage_costs_more_than_single() {
        // The SDB reverse-buck path pays two conversion stages; the naive
        // buck-boost pays one lossier stage. Both must land well below 1.
        let sdb = ChargeCircuit::new(ChargeTopology::SdbReversible, 2, 3.0);
        let naive = ChargeCircuit::new(ChargeTopology::NaiveMatrix, 2, 3.0);
        let d_sdb = sdb.battery_to_battery_w(5.0, 4.0, 3.7).unwrap();
        let d_naive = naive.battery_to_battery_w(5.0, 4.0, 3.7).unwrap();
        assert!(d_sdb < 5.0 && d_naive < 5.0);
        assert!(d_sdb > 4.2 && d_naive > 4.2);
    }

    #[test]
    fn figure_6c_relative_efficiency() {
        let c = ChargeCircuit::new(ChargeTopology::SdbReversible, 2, 2.5);
        let hi = c.relative_efficiency(0.8, 3.8).unwrap();
        let lo = c.relative_efficiency(2.2, 3.8).unwrap();
        assert!(hi > lo);
        assert!(lo > 0.90, "lo = {lo}");
    }

    #[test]
    #[should_panic(expected = "at least one battery")]
    fn zero_batteries_rejected() {
        let _ = DischargeCircuit::new(DischargeTopology::SdbIntegrated, 0);
    }
}
