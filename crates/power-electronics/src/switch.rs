//! Battery switching and weighted round-robin packet scheduling.
//!
//! The SDB discharge design (Figure 4c) restructures the switched-mode
//! regulator's built-in switch to draw *packets of energy* from the
//! batteries in a weighted round-robin fashion; "the ratio of the current
//! draw is determined by the fraction of time the switch is connected to a
//! particular battery". This module provides:
//!
//! * [`SwitchPath`] — the conduction path (FET on-resistance / ideal-diode
//!   drop) through which a battery supplies the load, with its loss model.
//! * [`PacketScheduler`] — the deterministic weighted round-robin that
//!   decides which battery supplies each energy packet, with duty-ratio
//!   quantization matching a real timer resolution.

use crate::error::{check_ratios, PowerError};

/// A conduction path from one battery into the shared node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPath {
    /// FET on-resistance, ohms.
    pub r_on_ohm: f64,
    /// Constant forward drop (ideal-diode controller), volts. Zero for the
    /// integrated-regulator design.
    pub drop_v: f64,
}

impl SwitchPath {
    /// The prototype's path: an ideal-diode switch (Section 4.1), which
    /// costs a small forward drop plus conduction resistance. The paper
    /// notes this *underestimates* the proposal's efficiency.
    #[must_use]
    pub fn prototype() -> Self {
        Self {
            r_on_ohm: 0.016,
            drop_v: 0.018,
        }
    }

    /// The proposed integrated design, where the battery switch is the
    /// regulator's own switch: no extra diode drop, minimal added
    /// resistance.
    #[must_use]
    pub fn integrated() -> Self {
        Self {
            r_on_ohm: 0.004,
            drop_v: 0.0,
        }
    }

    /// Power lost in the path at `current_a` amps.
    #[must_use]
    pub fn loss_w(&self, current_a: f64) -> f64 {
        let i = current_a.abs();
        i * i * self.r_on_ohm + i * self.drop_v
    }
}

/// Deterministic weighted round-robin packet scheduler over `n` batteries.
///
/// Uses a largest-remainder (stride) discipline: each packet goes to the
/// battery whose accumulated credit is furthest behind its target share, so
/// the realized share of any prefix deviates from the setpoint by at most
/// one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketScheduler {
    /// Target share per battery (sums to 1).
    shares: Vec<f64>,
    /// Packets issued per battery.
    issued: Vec<u64>,
    /// Total packets issued.
    total: u64,
    /// Duty quantization: shares are rounded to multiples of
    /// `1/quantization_steps` (a real timer has finite resolution).
    quantization_steps: u32,
}

impl PacketScheduler {
    /// Creates a scheduler over `shares` (must be non-negative and sum
    /// to 1) with the given timer resolution.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidRatios`] for bad shares;
    /// [`PowerError::InvalidParameter`] for zero quantization steps.
    pub fn new(shares: &[f64], quantization_steps: u32) -> Result<Self, PowerError> {
        check_ratios(shares)?;
        if quantization_steps == 0 {
            return Err(PowerError::InvalidParameter {
                name: "quantization_steps",
                value: 0.0,
            });
        }
        let quantized = quantize_shares(shares, quantization_steps);
        Ok(Self {
            issued: vec![0; shares.len()],
            shares: quantized,
            total: 0,
            quantization_steps,
        })
    }

    /// The quantized target shares actually enforced.
    #[must_use]
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Replaces the target shares, keeping issued-packet history.
    ///
    /// # Errors
    ///
    /// [`PowerError::WrongChannelCount`] if the length changed;
    /// [`PowerError::InvalidRatios`] for bad shares.
    pub fn set_shares(&mut self, shares: &[f64]) -> Result<(), PowerError> {
        if shares.len() != self.shares.len() {
            return Err(PowerError::WrongChannelCount {
                expected: self.shares.len(),
                got: shares.len(),
            });
        }
        check_ratios(shares)?;
        self.shares = quantize_shares(shares, self.quantization_steps);
        // Restart the credit race so old history does not distort the new
        // setpoint.
        self.issued.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        Ok(())
    }

    /// Chooses the battery to supply the next energy packet.
    pub fn next_packet(&mut self) -> usize {
        // Largest deficit: target·(total+1) − issued.
        let mut best = 0usize;
        let mut best_deficit = f64::NEG_INFINITY;
        let t = (self.total + 1) as f64;
        for (i, (&share, &issued)) in self.shares.iter().zip(&self.issued).enumerate() {
            let deficit = share * t - issued as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        self.issued[best] += 1;
        self.total += 1;
        best
    }

    /// Realized share per battery over all packets issued so far.
    #[must_use]
    pub fn realized_shares(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.shares.len()];
        }
        self.issued
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Worst absolute deviation between realized and target shares.
    #[must_use]
    pub fn max_share_error(&self) -> f64 {
        self.realized_shares()
            .iter()
            .zip(&self.shares)
            .map(|(r, s)| (r - s).abs())
            .fold(0.0, f64::max)
    }

    /// Total packets issued.
    #[must_use]
    pub fn packets_issued(&self) -> u64 {
        self.total
    }
}

/// Rounds shares to the timer grid with the largest-remainder method:
/// every quantized share stays non-negative and the total is exactly 1
/// (dumping the remainder on one entry could drive it negative when many
/// small shares all round up).
fn quantize_shares(shares: &[f64], steps: u32) -> Vec<f64> {
    let steps_f = f64::from(steps);
    // Floor to integer grid steps, then hand the leftover steps to the
    // entries with the largest fractional remainders.
    let exact: Vec<f64> = shares.iter().map(|s| s * steps_f).collect();
    let mut grid: Vec<u32> = exact.iter().map(|e| e.floor() as u32).collect();
    let assigned: u32 = grid.iter().sum();
    let mut leftover = steps.saturating_sub(assigned) as usize;
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).expect("shares are finite")
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        grid[i] += 1;
        leftover -= 1;
    }
    grid.iter().map(|&g| f64::from(g) / steps_f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_lossier_than_integrated() {
        let proto = SwitchPath::prototype();
        let integ = SwitchPath::integrated();
        assert!(proto.loss_w(2.0) > integ.loss_w(2.0));
    }

    #[test]
    fn loss_grows_superlinearly() {
        let p = SwitchPath::integrated();
        assert!(p.loss_w(4.0) > 3.9 * p.loss_w(2.0));
        assert_eq!(p.loss_w(0.0), 0.0);
    }

    #[test]
    fn scheduler_enforces_shares() {
        let mut s = PacketScheduler::new(&[0.25, 0.75], 1024).unwrap();
        for _ in 0..10_000 {
            s.next_packet();
        }
        let realized = s.realized_shares();
        assert!((realized[0] - 0.25).abs() < 0.001, "{realized:?}");
        assert!((realized[1] - 0.75).abs() < 0.001);
        assert!(s.max_share_error() < 0.001);
    }

    #[test]
    fn prefix_deviation_bounded_by_one_packet() {
        let mut s = PacketScheduler::new(&[0.3, 0.3, 0.4], 1024).unwrap();
        for k in 1..=500u64 {
            s.next_packet();
            for (i, &issued) in s.issued.iter().enumerate() {
                let target = s.shares[i] * k as f64;
                assert!(
                    (issued as f64 - target).abs() <= 1.0 + 1e-9,
                    "packet {k} battery {i}: issued {issued}, target {target}"
                );
            }
        }
    }

    #[test]
    fn extreme_shares() {
        let mut s = PacketScheduler::new(&[0.01, 0.99], 1024).unwrap();
        for _ in 0..100_000 {
            s.next_packet();
        }
        assert!((s.realized_shares()[0] - s.shares()[0]).abs() < 1e-3);
    }

    #[test]
    fn single_battery_gets_everything() {
        let mut s = PacketScheduler::new(&[1.0], 256).unwrap();
        for _ in 0..100 {
            assert_eq!(s.next_packet(), 0);
        }
    }

    #[test]
    fn zero_share_battery_never_selected() {
        let mut s = PacketScheduler::new(&[0.0, 1.0], 256).unwrap();
        for _ in 0..1000 {
            assert_eq!(s.next_packet(), 1);
        }
    }

    #[test]
    fn quantization_limits_resolution() {
        // With only 8 steps, a 10 % request lands on the 12.5 % grid.
        let s = PacketScheduler::new(&[0.10, 0.90], 8).unwrap();
        assert!((s.shares()[0] - 0.125).abs() < 1e-12);
        assert!((s.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_shares_validates() {
        let mut s = PacketScheduler::new(&[0.5, 0.5], 1024).unwrap();
        assert!(s.set_shares(&[0.4, 0.6]).is_ok());
        assert!(matches!(
            s.set_shares(&[0.4, 0.4, 0.2]),
            Err(PowerError::WrongChannelCount { .. })
        ));
        assert!(s.set_shares(&[0.9, 0.2]).is_err());
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(PacketScheduler::new(&[0.5, 0.6], 1024).is_err());
        assert!(PacketScheduler::new(&[0.5, 0.5], 0).is_err());
    }

    #[test]
    fn quantize_many_small_shares_stays_nonnegative() {
        // Ten 10% shares on an 8-step grid: naive rounding sums to 1.25 and
        // would drive the adjusted entry negative.
        let shares = vec![0.1; 10];
        let s = PacketScheduler::new(&shares, 8).unwrap();
        assert!((s.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.shares().iter().all(|&x| x >= 0.0), "{:?}", s.shares());
    }

    #[test]
    fn quantized_shares_always_sum_to_one() {
        for steps in [4u32, 16, 128, 1024] {
            let q = quantize_shares(&[0.123, 0.456, 0.421], steps);
            assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12, "steps {steps}");
        }
    }
}
