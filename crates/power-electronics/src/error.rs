//! Error types for the power-electronics crate.

use std::fmt;

/// Errors raised by circuit models.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A share/ratio vector did not sum to 1 (within tolerance) or had a
    /// negative entry.
    InvalidRatios {
        /// The offending sum.
        sum: f64,
    },
    /// A ratio vector length did not match the circuit's channel count.
    WrongChannelCount {
        /// Expected number of channels.
        expected: usize,
        /// Provided number of ratios.
        got: usize,
    },
    /// A physical parameter (voltage, current, power) was non-finite or out
    /// of the model's validity range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested operating point exceeds the circuit's rating.
    OverRating {
        /// The requested value.
        requested: f64,
        /// The rating.
        rating: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRatios { sum } => {
                write!(f, "ratios must be non-negative and sum to 1, got sum {sum}")
            }
            Self::WrongChannelCount { expected, got } => {
                write!(f, "expected {expected} channel ratios, got {got}")
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            Self::OverRating { requested, rating } => {
                write!(f, "requested {requested} exceeds rating {rating}")
            }
        }
    }
}

impl std::error::Error for PowerError {}

/// Validates that `ratios` are non-negative and sum to 1 within `1e-6`.
///
/// # Errors
///
/// [`PowerError::InvalidRatios`] on violation.
pub fn check_ratios(ratios: &[f64]) -> Result<(), PowerError> {
    let mut sum = 0.0;
    for &r in ratios {
        if !r.is_finite() || r < 0.0 {
            return Err(PowerError::InvalidRatios { sum: r });
        }
        sum += r;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(PowerError::InvalidRatios { sum });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_ratios() {
        check_ratios(&[0.25, 0.75]).unwrap();
        check_ratios(&[1.0]).unwrap();
        check_ratios(&[0.2, 0.3, 0.5]).unwrap();
    }

    #[test]
    fn rejects_bad_sums_and_negatives() {
        assert!(check_ratios(&[0.5, 0.6]).is_err());
        assert!(check_ratios(&[-0.1, 1.1]).is_err());
        assert!(check_ratios(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn display_messages() {
        let e = PowerError::WrongChannelCount {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
