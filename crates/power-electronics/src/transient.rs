//! SPICE-like transient simulation of the buck power stage.
//!
//! The paper validates the modified switched-mode regulator "by running
//! LTSPICE simulations that accurately simulate the internals of the switch
//! mode regulators ... under different battery voltages and load
//! conditions" (Section 3.2.1). This module provides the equivalent: an
//! explicit-integration transient simulator of the buck stage
//!
//! ```text
//!   V_in ──[switch]──┬── L ──┬──── V_out
//!                    │       │
//!                 (diode)    C ── R_load
//! ```
//!
//! with a PWM modulator, an optional proportional-integral voltage control
//! loop, and support for switching the input among multiple battery
//! voltages mid-run (the SDB weighted round-robin), so tests can check
//! regulation stability exactly where the paper did.

/// Parameters of the buck power stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuckParams {
    /// Inductance, henries.
    pub l_h: f64,
    /// Output capacitance, farads.
    pub c_f: f64,
    /// Load resistance, ohms.
    pub r_load_ohm: f64,
    /// Switching frequency, hertz.
    pub f_sw_hz: f64,
    /// Series resistance of the inductor + switch, ohms.
    pub r_series_ohm: f64,
}

impl BuckParams {
    /// Typical mobile-PMIC stage: 2.2 µH, 22 µF, 1 MHz.
    #[must_use]
    pub fn typical(r_load_ohm: f64) -> Self {
        Self {
            l_h: 2.2e-6,
            c_f: 22e-6,
            r_load_ohm,
            f_sw_hz: 1.0e6,
            r_series_ohm: 0.03,
        }
    }
}

/// Transient state of the buck stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuckState {
    /// Inductor current, amps.
    pub i_l_a: f64,
    /// Output (capacitor) voltage, volts.
    pub v_out_v: f64,
    /// Simulation time, seconds.
    pub t_s: f64,
}

/// A transient buck simulation with PWM and an optional PI voltage loop.
#[derive(Debug, Clone)]
pub struct BuckSim {
    params: BuckParams,
    state: BuckState,
    /// Fixed integration step, seconds (≥ 50 sub-steps per switching
    /// period).
    dt_s: f64,
    /// PI controller integrator state.
    integ: f64,
    /// PI gains `(kp, ki)`; `None` = fixed duty.
    pi: Option<(f64, f64)>,
    /// Regulation target, volts (used when `pi` is set).
    target_v: f64,
    /// Fixed duty in `[0, 1]` (used when `pi` is `None`).
    duty: f64,
}

impl BuckSim {
    /// Creates an open-loop simulation at fixed `duty`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    #[must_use]
    pub fn open_loop(params: BuckParams, duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty out of range: {duty}");
        let dt_s = 1.0 / (params.f_sw_hz * 64.0);
        Self {
            params,
            state: BuckState {
                i_l_a: 0.0,
                v_out_v: 0.0,
                t_s: 0.0,
            },
            dt_s,
            integ: 0.0,
            pi: None,
            target_v: 0.0,
            duty,
        }
    }

    /// Creates a closed-loop simulation regulating to `target_v` with a PI
    /// voltage controller.
    #[must_use]
    pub fn closed_loop(params: BuckParams, target_v: f64) -> Self {
        let mut sim = Self::open_loop(params, 0.5);
        sim.pi = Some((0.08, 3_000.0));
        sim.target_v = target_v;
        sim
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BuckState {
        self.state
    }

    /// Changes the load resistance mid-run (load-step tests).
    ///
    /// # Panics
    ///
    /// Panics if `r_load_ohm` is not positive.
    pub fn set_load(&mut self, r_load_ohm: f64) {
        assert!(r_load_ohm > 0.0, "load must be positive");
        self.params.r_load_ohm = r_load_ohm;
    }

    /// Runs the simulation for `duration_s` with input voltage supplied by
    /// `v_in` (a function of time, so callers can switch batteries mid-run).
    /// Returns the mean and peak-to-peak output voltage over the final 20 %
    /// of the window.
    pub fn run<F: FnMut(f64) -> f64>(&mut self, duration_s: f64, mut v_in: F) -> RunStats {
        let steps = (duration_s / self.dt_s).ceil() as u64;
        let tail_start = self.state.t_s + duration_s * 0.8;
        let mut tail_min = f64::INFINITY;
        let mut tail_max = f64::NEG_INFINITY;
        let mut tail_sum = 0.0;
        let mut tail_n = 0u64;
        for _ in 0..steps {
            let vin_now = v_in(self.state.t_s);
            // PI update once per switching period.
            let period = 1.0 / self.params.f_sw_hz;
            let phase = (self.state.t_s / period).fract();
            if let Some((kp, ki)) = self.pi {
                let err = self.target_v - self.state.v_out_v;
                self.integ += err * self.dt_s;
                let ff = if vin_now > 0.0 {
                    self.target_v / vin_now
                } else {
                    0.0
                };
                self.duty = (ff + kp * err + ki * self.integ).clamp(0.0, 1.0);
            }
            let switch_on = phase < self.duty;
            let v_sw = if switch_on { vin_now } else { 0.0 };
            // Inductor: L di/dt = v_sw − v_out − i·R_series, with the diode
            // preventing negative inductor current (discontinuous mode).
            let di = (v_sw - self.state.v_out_v - self.state.i_l_a * self.params.r_series_ohm)
                / self.params.l_h
                * self.dt_s;
            self.state.i_l_a =
                (self.state.i_l_a + di).max(if switch_on { f64::NEG_INFINITY } else { 0.0 });
            // Capacitor: C dv/dt = i_L − v_out/R_load.
            let dv = (self.state.i_l_a - self.state.v_out_v / self.params.r_load_ohm)
                / self.params.c_f
                * self.dt_s;
            self.state.v_out_v += dv;
            self.state.t_s += self.dt_s;
            if self.state.t_s >= tail_start {
                tail_min = tail_min.min(self.state.v_out_v);
                tail_max = tail_max.max(self.state.v_out_v);
                tail_sum += self.state.v_out_v;
                tail_n += 1;
            }
        }
        RunStats {
            mean_v: if tail_n > 0 {
                tail_sum / tail_n as f64
            } else {
                self.state.v_out_v
            },
            ripple_v: if tail_n > 0 { tail_max - tail_min } else { 0.0 },
        }
    }
}

/// Output statistics over the settled tail of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Mean output voltage, volts.
    pub mean_v: f64,
    /// Peak-to-peak ripple, volts.
    pub ripple_v: f64,
}

/// Transient simulation of the synchronous buck operating in **reverse
/// buck mode** (Section 3.2.2): current flows from the low-voltage output
/// terminal back to the high-voltage input — electrically a boost
/// converter from the battery at the output into the bus at the input.
///
/// ```text
///   V_bus ──[sink R_bus]──┬──[high FET]──┬── L ── V_batt
///                         C              │
///                                   [low FET/PWM]
/// ```
///
/// The simulation drives the low-side switch with duty `d`; in steady
/// state the bus settles near `V_batt / (1 − d)`, proving that the same
/// power stage pushes charge "uphill" — the trick that collapses the
/// naive `O(N²)` charging matrix to `O(N)` regulators.
#[derive(Debug, Clone)]
pub struct ReverseBuckSim {
    /// Source (battery) voltage at the converter's output terminal, volts.
    pub v_batt: f64,
    /// Load resistance on the bus side, ohms.
    pub r_bus_ohm: f64,
    /// Inductance, henries.
    pub l_h: f64,
    /// Bus capacitance, farads.
    pub c_f: f64,
    /// Switching frequency, hertz.
    pub f_sw_hz: f64,
    /// Series resistance, ohms.
    pub r_series_ohm: f64,
    /// Low-side duty cycle in `[0, 1)`.
    duty: f64,
    /// Inductor current (positive = toward the bus), amps.
    i_l_a: f64,
    /// Bus voltage, volts.
    v_bus_v: f64,
    /// Simulation time, seconds.
    t_s: f64,
}

impl ReverseBuckSim {
    /// Creates a reverse-mode simulation with a typical PMIC stage.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 0.95]` (boost duty near 1 is
    /// unbounded) or `v_batt`/`r_bus_ohm` are not positive.
    #[must_use]
    pub fn new(v_batt: f64, r_bus_ohm: f64, duty: f64) -> Self {
        assert!((0.0..=0.95).contains(&duty), "duty out of range: {duty}");
        assert!(v_batt > 0.0 && r_bus_ohm > 0.0);
        Self {
            v_batt,
            r_bus_ohm,
            l_h: 2.2e-6,
            c_f: 22e-6,
            f_sw_hz: 1.0e6,
            r_series_ohm: 0.03,
            duty,
            i_l_a: 0.0,
            v_bus_v: v_batt,
            t_s: 0.0,
        }
    }

    /// Runs for `duration_s`; returns bus-voltage statistics over the
    /// final 20 % of the window.
    pub fn run(&mut self, duration_s: f64) -> RunStats {
        let dt = 1.0 / (self.f_sw_hz * 64.0);
        let steps = (duration_s / dt).ceil() as u64;
        let tail_start = self.t_s + duration_s * 0.8;
        let (mut min, mut max, mut sum, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0u64);
        for _ in 0..steps {
            let period = 1.0 / self.f_sw_hz;
            let phase = (self.t_s / period).fract();
            let low_on = phase < self.duty;
            // Low FET on: inductor charges from the battery (bus side
            // isolated). Low FET off: inductor discharges into the bus.
            let v_l = if low_on {
                self.v_batt - self.i_l_a * self.r_series_ohm
            } else {
                self.v_batt - self.v_bus_v - self.i_l_a * self.r_series_ohm
            };
            self.i_l_a = (self.i_l_a + v_l / self.l_h * dt).max(0.0);
            let i_into_bus = if low_on { 0.0 } else { self.i_l_a };
            let dv = (i_into_bus - self.v_bus_v / self.r_bus_ohm) / self.c_f * dt;
            self.v_bus_v += dv;
            self.t_s += dt;
            if self.t_s >= tail_start {
                min = min.min(self.v_bus_v);
                max = max.max(self.v_bus_v);
                sum += self.v_bus_v;
                n += 1;
            }
        }
        RunStats {
            mean_v: if n > 0 { sum / n as f64 } else { self.v_bus_v },
            ripple_v: if n > 0 { max - min } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_tracks_duty_times_vin() {
        let mut sim = BuckSim::open_loop(BuckParams::typical(5.0), 0.5);
        let stats = sim.run(2e-3, |_| 4.0);
        // Ideal: 2.0 V; series resistance sags it slightly.
        assert!((stats.mean_v - 2.0).abs() < 0.15, "mean = {}", stats.mean_v);
    }

    #[test]
    fn ripple_is_small() {
        let mut sim = BuckSim::open_loop(BuckParams::typical(5.0), 0.5);
        let stats = sim.run(2e-3, |_| 4.0);
        assert!(stats.ripple_v < 0.05, "ripple = {}", stats.ripple_v);
    }

    #[test]
    fn closed_loop_regulates_to_target() {
        let mut sim = BuckSim::closed_loop(BuckParams::typical(3.0), 1.8);
        let stats = sim.run(4e-3, |_| 3.9);
        assert!((stats.mean_v - 1.8).abs() < 0.05, "mean = {}", stats.mean_v);
    }

    #[test]
    fn regulation_survives_battery_switching() {
        // The SDB case: input hops between two battery voltages at high
        // frequency (weighted round-robin). Output must stay regulated.
        let mut sim = BuckSim::closed_loop(BuckParams::typical(3.0), 1.8);
        let stats = sim.run(4e-3, |t| {
            // 100 kHz battery multiplex between 3.6 V and 4.15 V.
            if (t * 100_000.0).fract() < 0.4 {
                3.6
            } else {
                4.15
            }
        });
        assert!((stats.mean_v - 1.8).abs() < 0.08, "mean = {}", stats.mean_v);
        assert!(stats.ripple_v < 0.25, "ripple = {}", stats.ripple_v);
    }

    #[test]
    fn regulation_survives_load_step() {
        let mut sim = BuckSim::closed_loop(BuckParams::typical(6.0), 1.8);
        sim.run(2e-3, |_| 3.9);
        // Halve the load resistance (double the current).
        sim.set_load(3.0);
        let stats = sim.run(2e-3, |_| 3.9);
        assert!((stats.mean_v - 1.8).abs() < 0.08, "mean = {}", stats.mean_v);
    }

    #[test]
    fn zero_duty_decays_to_zero() {
        let mut sim = BuckSim::open_loop(BuckParams::typical(5.0), 0.0);
        let stats = sim.run(2e-3, |_| 4.0);
        assert!(stats.mean_v < 0.05);
    }

    #[test]
    fn full_duty_approaches_vin() {
        let mut sim = BuckSim::open_loop(BuckParams::typical(5.0), 1.0);
        let stats = sim.run(2e-3, |_| 4.0);
        assert!(stats.mean_v > 3.6, "mean = {}", stats.mean_v);
    }

    #[test]
    #[should_panic(expected = "duty out of range")]
    fn rejects_bad_duty() {
        let _ = BuckSim::open_loop(BuckParams::typical(5.0), 1.5);
    }

    #[test]
    fn reverse_buck_boosts_battery_to_bus() {
        // A 3.7 V battery pushing into a 20 Ω bus at duty 0.5: the bus
        // settles near V_batt / (1 − d) ≈ 7.4 V — current flowed from the
        // regulator's output back to its input.
        let mut sim = ReverseBuckSim::new(3.7, 20.0, 0.5);
        let stats = sim.run(4e-3);
        assert!((stats.mean_v - 7.4).abs() < 0.6, "bus = {} V", stats.mean_v);
        assert!(stats.ripple_v < 0.3, "ripple = {}", stats.ripple_v);
    }

    #[test]
    fn reverse_buck_duty_controls_transfer() {
        // Higher duty stores more energy per cycle → higher bus voltage →
        // more power pushed uphill.
        let lo = ReverseBuckSim::new(3.7, 20.0, 0.3).run(4e-3).mean_v;
        let hi = ReverseBuckSim::new(3.7, 20.0, 0.6).run(4e-3).mean_v;
        assert!(hi > lo + 1.0, "lo {lo}, hi {hi}");
    }

    #[test]
    fn zero_duty_reverse_is_a_diode_path() {
        // Duty 0: the inductor conducts only while bus < battery, so the
        // bus floats up to roughly the battery voltage, no boost.
        let stats = ReverseBuckSim::new(3.7, 20.0, 0.0).run(4e-3);
        assert!(stats.mean_v < 3.8, "bus = {}", stats.mean_v);
    }

    #[test]
    #[should_panic(expected = "duty out of range")]
    fn reverse_rejects_extreme_duty() {
        let _ = ReverseBuckSim::new(3.7, 20.0, 0.99);
    }
}
