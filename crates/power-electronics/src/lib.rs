//! Power-electronics substrate for Software Defined Batteries.
//!
//! The paper's SDB hardware (Section 3.2, Figure 4) consists of a modified
//! switched-mode regulator that multiplexes *energy packets* across
//! batteries on the discharge side, and a set of synchronous reversible
//! buck regulators on the charge side. The prototype is evaluated with four
//! microbenchmarks (Figure 6). We have no board, so this crate models the
//! circuits at component level:
//!
//! * [`regulator`] — switched-mode regulator efficiency/loss models (buck,
//!   buck-boost, synchronous reversible buck) and charging-efficiency
//!   curves (Figure 6c).
//! * [`switch`] — the FET/ideal-diode switch path and the weighted
//!   round-robin packet scheduler that implements fine-grained battery
//!   sharing (Figures 4a/4c), with duty-ratio quantization.
//! * [`circuits`] — the naive and SDB discharge/charge circuit topologies,
//!   their loss curves (Figure 6a) and component counts (`O(N²)` vs
//!   `O(N)`).
//! * [`measurement`] — sense-resistor/ADC/DAC quantization models producing
//!   the setpoint-vs-measured errors of Figures 6b and 6d.
//! * [`transient`] — a small SPICE-like transient simulator for the buck
//!   converter power stage, standing in for the paper's LTSPICE
//!   validation.
//!
//! Units follow the workspace convention: volts `_v`, amps `_a`, ohms
//! `_ohm`, watts `_w`, seconds `_s`, henries `_h`, farads `_f`.
//!
//! # Example
//!
//! ```
//! use sdb_power_electronics::{PacketScheduler, Regulator, RegulatorKind};
//!
//! // The SDB discharge trick: energy packets drawn from batteries in a
//! // weighted round-robin.
//! let mut sched = PacketScheduler::new(&[0.25, 0.75], 16_384).unwrap();
//! for _ in 0..10_000 {
//!     sched.next_packet();
//! }
//! assert!(sched.max_share_error() < 1e-3);
//!
//! // The reversible buck that collapses the charging matrix to O(N).
//! let reg = Regulator::typical(RegulatorKind::SynchronousReversibleBuck, 3.0);
//! assert!(reg.efficiency(1.0, 3.8).unwrap() > 0.9);
//! ```

pub mod circuits;
pub mod error;
pub mod measurement;
pub mod regulator;
pub mod switch;
pub mod transient;

pub use circuits::{ChargeCircuit, ChargeTopology, DischargeCircuit, DischargeTopology};
pub use error::PowerError;
pub use measurement::{CurrentSetpoint, SenseChain, ShareChain};
pub use regulator::{FlowDirection, Regulator, RegulatorKind};
pub use switch::{PacketScheduler, SwitchPath};
