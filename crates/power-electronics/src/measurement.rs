//! Setpoint and measurement error models.
//!
//! Figures 6(b) and 6(d) of the paper report how accurately the prototype
//! enforces what the microcontroller asked for: the share of load current
//! drawn from each battery (< 0.6 % error across 1–99 % settings) and the
//! charging current (≤ 0.5 % error across 0.2–2.0 A). Both errors come from
//! the same physical sources — timer/DAC quantization, sense-chain offset,
//! and gain mismatch — which this module models deterministically.

use crate::error::PowerError;

/// Deterministic per-setpoint wiggle in `[-1, 1]`, standing in for the
/// unit-specific gain mismatch a real board exhibits (reproducible so the
/// figure harness is stable).
fn setpoint_wiggle(x: f64) -> f64 {
    let bits = x.to_bits();
    let mut h = bits ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// A current setpoint DAC + sense-resistor chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseChain {
    /// Full-scale current, amps.
    pub full_scale_a: f64,
    /// DAC/ADC resolution in bits.
    pub bits: u32,
    /// Sense-chain offset, amps.
    pub offset_a: f64,
    /// Peak gain mismatch (fraction).
    pub gain_mismatch: f64,
}

impl SenseChain {
    /// The prototype's charger chain: 12-bit over 4 A full scale, 0.5 mA
    /// offset, 0.1 % gain mismatch.
    #[must_use]
    pub fn prototype_charger() -> Self {
        Self {
            full_scale_a: 4.0,
            bits: 12,
            offset_a: 0.0005,
            gain_mismatch: 0.001,
        }
    }

    /// One least-significant bit in amps.
    #[must_use]
    pub fn lsb_a(&self) -> f64 {
        self.full_scale_a
            / f64::from(1u64.checked_shl(self.bits).unwrap_or(u64::MAX) as u32).max(1.0)
    }

    /// The current the hardware actually realizes for a requested setpoint.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for non-finite or negative
    /// setpoints; [`PowerError::OverRating`] above full scale.
    pub fn realized_current_a(&self, set_a: f64) -> Result<f64, PowerError> {
        if !set_a.is_finite() || set_a < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "set_a",
                value: set_a,
            });
        }
        if set_a > self.full_scale_a {
            return Err(PowerError::OverRating {
                requested: set_a,
                rating: self.full_scale_a,
            });
        }
        let lsb = self.lsb_a();
        let quantized = (set_a / lsb).round() * lsb;
        let gained = quantized * (1.0 + self.gain_mismatch * setpoint_wiggle(set_a));
        Ok((gained + self.offset_a).max(0.0))
    }

    /// Relative setpoint error in percent — the Figure 6(d) quantity.
    ///
    /// # Errors
    ///
    /// As [`SenseChain::realized_current_a`]; zero setpoint is rejected
    /// (relative error undefined).
    pub fn error_percent(&self, set_a: f64) -> Result<f64, PowerError> {
        if set_a <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "set_a",
                value: set_a,
            });
        }
        let realized = self.realized_current_a(set_a)?;
        Ok(((realized - set_a) / set_a).abs() * 100.0)
    }
}

/// The discharge-share chain: the share of load current assigned to one
/// battery is realized through timer-grid duty quantization plus the sense
/// chain's gain mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareChain {
    /// Duty timer steps per switching period.
    pub duty_steps: u32,
    /// Peak gain mismatch between the per-battery current sensors
    /// (fraction).
    pub gain_mismatch: f64,
}

impl ShareChain {
    /// The prototype's share chain: 14-bit effective duty resolution,
    /// 0.15 % sensor mismatch.
    #[must_use]
    pub fn prototype() -> Self {
        Self {
            duty_steps: 16_384,
            gain_mismatch: 0.0015,
        }
    }

    /// The share actually realized for a requested proportion setting.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] if `share` is outside `(0, 1]`.
    pub fn realized_share(&self, share: f64) -> Result<f64, PowerError> {
        if !share.is_finite() || share <= 0.0 || share > 1.0 {
            return Err(PowerError::InvalidParameter {
                name: "share",
                value: share,
            });
        }
        let step = 1.0 / f64::from(self.duty_steps);
        let quantized = (share / step).round() * step;
        Ok((quantized * (1.0 + self.gain_mismatch * setpoint_wiggle(share))).clamp(0.0, 1.0))
    }

    /// Relative share error in percent — the Figure 6(b) quantity
    /// ("% error of the measured % discharge current vs the % set").
    ///
    /// # Errors
    ///
    /// As [`ShareChain::realized_share`].
    pub fn error_percent(&self, share: f64) -> Result<f64, PowerError> {
        let realized = self.realized_share(share)?;
        Ok(((realized - share) / share).abs() * 100.0)
    }
}

/// Alias kept for API clarity: a current setpoint is realized through a
/// [`SenseChain`].
pub type CurrentSetpoint = SenseChain;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiggle_is_deterministic_and_bounded() {
        for &x in &[0.01, 0.2, 0.5, 1.37, 2.0] {
            let a = setpoint_wiggle(x);
            let b = setpoint_wiggle(x);
            assert_eq!(a, b);
            assert!((-1.0..=1.0).contains(&a));
        }
        assert_ne!(setpoint_wiggle(0.5), setpoint_wiggle(0.51));
    }

    #[test]
    fn lsb_matches_bits() {
        let s = SenseChain::prototype_charger();
        assert!((s.lsb_a() - 4.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn figure_6d_error_bounds() {
        // ≤ ~0.5 % error across the paper's 0.2–2.0 A sweep.
        let s = SenseChain::prototype_charger();
        let mut worst: f64 = 0.0;
        let mut i = 0.2;
        while i <= 2.0 + 1e-9 {
            let e = s.error_percent(i).unwrap();
            worst = worst.max(e);
            i += 0.2;
        }
        assert!(worst <= 0.6, "worst = {worst}");
        assert!(worst > 0.0, "a physical chain has nonzero error");
    }

    #[test]
    fn error_shrinks_at_high_current() {
        let s = SenseChain::prototype_charger();
        // Offset dominates at low currents: relative error at 0.2 A should
        // generally exceed that at 2.0 A.
        let low = s.error_percent(0.2).unwrap();
        let high = s.error_percent(2.0).unwrap();
        assert!(low > high * 0.5, "low {low}, high {high}");
    }

    #[test]
    fn realized_current_validates() {
        let s = SenseChain::prototype_charger();
        assert!(s.realized_current_a(-0.1).is_err());
        assert!(s.realized_current_a(f64::NAN).is_err());
        assert!(matches!(
            s.realized_current_a(5.0),
            Err(PowerError::OverRating { .. })
        ));
        assert!(s.error_percent(0.0).is_err());
    }

    #[test]
    fn figure_6b_error_bounds() {
        // < 0.6 % error across the paper's 1–99 % proportion settings.
        let c = ShareChain::prototype();
        for &p in &[0.01, 0.05, 0.10, 0.20, 0.50, 0.80, 0.95, 0.99] {
            let e = c.error_percent(p).unwrap();
            assert!(e < 0.6, "error at {p} = {e}");
        }
    }

    #[test]
    fn share_chain_validates() {
        let c = ShareChain::prototype();
        assert!(c.realized_share(0.0).is_err());
        assert!(c.realized_share(1.1).is_err());
        assert!(c.realized_share(-0.2).is_err());
        assert!(c.realized_share(1.0).is_ok());
    }

    #[test]
    fn realized_share_close_to_setpoint() {
        let c = ShareChain::prototype();
        for &p in &[0.01, 0.33, 0.66, 0.99] {
            let r = c.realized_share(p).unwrap();
            assert!((r - p).abs() / p < 0.006);
        }
    }
}
