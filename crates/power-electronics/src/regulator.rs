//! Switched-mode regulator models.
//!
//! Section 3.2 of the paper uses three regulator forms: plain buck
//! regulators (external-supply charging), buck-boost regulators (naive
//! battery-to-battery charging), and synchronous *reversible* buck
//! regulators — the trick that collapses the naive `O(N²)` charging matrix
//! to `O(N)` (Figure 4c). This module models their loss/efficiency
//! behavior; Figure 6(c)'s "% of typical chip efficiency vs charging
//! current" curve comes from [`Regulator::relative_efficiency`].

use crate::error::PowerError;

/// Regulator topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegulatorKind {
    /// Step-down only; output voltage below input. Used for charging from
    /// an external supply.
    Buck,
    /// Output above or below input; needed when charging one battery from
    /// another of unknown relative voltage (naive design, Figure 4b).
    BuckBoost,
    /// Synchronous buck that can run in *reverse buck* mode, moving current
    /// from output to input (the SDB charging circuit, Figure 4c).
    SynchronousReversibleBuck,
}

impl RegulatorKind {
    /// Peak efficiency typical of the class at its design point.
    #[must_use]
    pub fn typical_efficiency(self) -> f64 {
        match self {
            Self::Buck => 0.96,
            Self::BuckBoost => 0.92,
            Self::SynchronousReversibleBuck => 0.95,
        }
    }

    /// Whether this topology can push current from its output terminal
    /// back to its input terminal.
    #[must_use]
    pub fn is_reversible(self) -> bool {
        matches!(self, Self::SynchronousReversibleBuck)
    }

    /// Whether the output voltage may exceed the input voltage.
    #[must_use]
    pub fn can_boost(self) -> bool {
        matches!(self, Self::BuckBoost)
    }
}

/// Direction of power flow through a reversible regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDirection {
    /// Input → output (normal buck operation).
    Forward,
    /// Output → input (reverse buck mode).
    Reverse,
}

/// A switched-mode regulator with a physical loss model:
/// `P_loss = P_quiescent + V_sw·f·Q + I²·R_cond`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regulator {
    /// Topology.
    pub kind: RegulatorKind,
    /// Quiescent (controller) power, watts.
    pub quiescent_w: f64,
    /// Switching loss coefficient, watts (already folded with frequency and
    /// gate charge: loss contribution proportional to duty activity).
    pub switching_w: f64,
    /// Total conduction-path resistance (FETs + inductor DCR), ohms.
    pub conduction_ohm: f64,
    /// Maximum rated output current, amps.
    pub rated_a: f64,
}

impl Regulator {
    /// A regulator with class-typical parameters rated for `rated_a` amps.
    #[must_use]
    pub fn typical(kind: RegulatorKind, rated_a: f64) -> Self {
        let (quiescent_w, switching_w, conduction_ohm) = match kind {
            RegulatorKind::Buck => (0.004, 0.015, 0.030),
            RegulatorKind::BuckBoost => (0.006, 0.030, 0.050),
            // The charger path includes the sense resistor and both FETs;
            // calibrated so relative efficiency lands near the paper's
            // ~94 % at 2.2 A (Figure 6c).
            RegulatorKind::SynchronousReversibleBuck => (0.008, 0.018, 0.120),
        };
        Self {
            kind,
            quiescent_w,
            switching_w,
            conduction_ohm,
            rated_a,
        }
    }

    /// Power lost when carrying `current_a` at output voltage `v_out`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for non-finite inputs;
    /// [`PowerError::OverRating`] above the current rating.
    pub fn loss_w(&self, current_a: f64, v_out: f64) -> Result<f64, PowerError> {
        if !current_a.is_finite() || current_a < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "current_a",
                value: current_a,
            });
        }
        if !v_out.is_finite() || v_out <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "v_out",
                value: v_out,
            });
        }
        if current_a > self.rated_a * (1.0 + 1e-9) {
            return Err(PowerError::OverRating {
                requested: current_a,
                rating: self.rated_a,
            });
        }
        Ok(self.quiescent_w
            + self.switching_w * (current_a / self.rated_a)
            + current_a * current_a * self.conduction_ohm)
    }

    /// Efficiency when delivering `current_a` at `v_out`:
    /// `P_out / (P_out + P_loss)`.
    ///
    /// # Errors
    ///
    /// As [`Regulator::loss_w`]. Zero current yields zero efficiency (all
    /// quiescent loss).
    pub fn efficiency(&self, current_a: f64, v_out: f64) -> Result<f64, PowerError> {
        let p_out = current_a * v_out;
        let loss = self.loss_w(current_a, v_out)?;
        if p_out <= 0.0 {
            return Ok(0.0);
        }
        Ok(p_out / (p_out + loss))
    }

    /// Efficiency as a percentage of the chip's typical (design-point)
    /// efficiency — the Figure 6(c) quantity. Near 100 % at light loads,
    /// dropping to ~94 % at high charging currents as conduction losses
    /// dominate.
    ///
    /// # Errors
    ///
    /// As [`Regulator::efficiency`].
    pub fn relative_efficiency(&self, current_a: f64, v_out: f64) -> Result<f64, PowerError> {
        // The chip's "typical" number is quoted at a light design load
        // (20 % of rating).
        let design = self.efficiency(self.rated_a * 0.2, v_out)?;
        Ok((self.efficiency(current_a, v_out)? / design).min(1.0))
    }

    /// Transfers `power_w` through the regulator in `direction`, returning
    /// the power that reaches the other side.
    ///
    /// # Errors
    ///
    /// As [`Regulator::loss_w`]; reverse flow on a non-reversible topology
    /// is rejected as an invalid parameter.
    pub fn transfer_w(
        &self,
        power_w: f64,
        v_out: f64,
        direction: FlowDirection,
    ) -> Result<f64, PowerError> {
        if direction == FlowDirection::Reverse && !self.kind.is_reversible() {
            return Err(PowerError::InvalidParameter {
                name: "direction",
                value: -1.0,
            });
        }
        if !power_w.is_finite() || power_w < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "power_w",
                value: power_w,
            });
        }
        let current = power_w / v_out;
        let eta = self.efficiency(current, v_out)?;
        Ok(power_w * eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Regulator {
        Regulator::typical(RegulatorKind::SynchronousReversibleBuck, 3.0)
    }

    #[test]
    fn typical_parameters_sane() {
        for kind in [
            RegulatorKind::Buck,
            RegulatorKind::BuckBoost,
            RegulatorKind::SynchronousReversibleBuck,
        ] {
            let r = Regulator::typical(kind, 2.0);
            assert!(r.quiescent_w > 0.0 && r.conduction_ohm > 0.0);
            assert!(kind.typical_efficiency() > 0.9);
        }
    }

    #[test]
    fn buck_boost_least_efficient() {
        let bb = Regulator::typical(RegulatorKind::BuckBoost, 3.0);
        let b = Regulator::typical(RegulatorKind::Buck, 3.0);
        let e_bb = bb.efficiency(1.5, 3.8).unwrap();
        let e_b = b.efficiency(1.5, 3.8).unwrap();
        assert!(e_b > e_bb);
    }

    #[test]
    fn efficiency_peaks_mid_load() {
        let r = reg();
        let light = r.efficiency(0.05, 3.8).unwrap();
        let mid = r.efficiency(0.8, 3.8).unwrap();
        let heavy = r.efficiency(3.0, 3.8).unwrap();
        assert!(mid > light, "quiescent loss dominates at light load");
        assert!(mid > heavy, "conduction loss dominates at heavy load");
        assert!(mid > 0.93);
    }

    #[test]
    fn figure_6c_shape() {
        // Relative efficiency ≈ 100 % at light charge currents, ~94 % at
        // the 2.2 A top of the paper's sweep.
        let r = Regulator::typical(RegulatorKind::SynchronousReversibleBuck, 2.5);
        let hi = r.relative_efficiency(0.8, 3.8).unwrap();
        let lo = r.relative_efficiency(2.2, 3.8).unwrap();
        assert!(hi > 0.985, "hi = {hi}");
        assert!(lo > 0.90 && lo < 0.97, "lo = {lo}");
        assert!(hi > lo);
    }

    #[test]
    fn reverse_mode_only_on_reversible() {
        let r = Regulator::typical(RegulatorKind::Buck, 2.0);
        assert!(r.transfer_w(5.0, 3.8, FlowDirection::Reverse).is_err());
        let r = reg();
        let out = r.transfer_w(5.0, 3.8, FlowDirection::Reverse).unwrap();
        assert!(out < 5.0 && out > 4.5);
    }

    #[test]
    fn rejects_over_rating_and_bad_inputs() {
        let r = reg();
        assert!(matches!(
            r.loss_w(10.0, 3.8),
            Err(PowerError::OverRating { .. })
        ));
        assert!(r.loss_w(-1.0, 3.8).is_err());
        assert!(r.loss_w(1.0, 0.0).is_err());
        assert!(r.efficiency(f64::NAN, 3.8).is_err());
    }

    #[test]
    fn zero_current_zero_efficiency() {
        assert_eq!(reg().efficiency(0.0, 3.8).unwrap(), 0.0);
    }

    #[test]
    fn transfer_conserves_less_than_input() {
        let r = reg();
        let out = r.transfer_w(8.0, 3.8, FlowDirection::Forward).unwrap();
        assert!(out < 8.0 && out > 7.0);
        assert_eq!(r.transfer_w(0.0, 3.8, FlowDirection::Forward).unwrap(), 0.0);
    }
}
