//! Property-based tests for the power-electronics substrate.

use proptest::prelude::*;
use sdb_power_electronics::circuits::{DischargeCircuit, DischargeTopology};
use sdb_power_electronics::measurement::{SenseChain, ShareChain};
use sdb_power_electronics::regulator::{Regulator, RegulatorKind};
use sdb_power_electronics::switch::PacketScheduler;

fn arb_kind() -> impl Strategy<Value = RegulatorKind> {
    prop::sample::select(vec![
        RegulatorKind::Buck,
        RegulatorKind::BuckBoost,
        RegulatorKind::SynchronousReversibleBuck,
    ])
}

proptest! {
    /// Regulator efficiency is always in (0, 1) for positive in-range
    /// current.
    #[test]
    fn efficiency_in_unit_interval(
        kind in arb_kind(),
        frac in 0.001f64..1.0,
        v in 2.5f64..4.5,
    ) {
        let r = Regulator::typical(kind, 3.0);
        let eta = r.efficiency(frac * 3.0, v).unwrap();
        prop_assert!(eta > 0.0 && eta < 1.0);
    }

    /// Transfer never creates energy.
    #[test]
    fn transfer_is_lossy(
        kind in arb_kind(),
        p in 0.1f64..10.0,
        v in 2.5f64..4.5,
    ) {
        let r = Regulator::typical(kind, 3.0);
        if let Ok(out) = r.transfer_w(p, v, sdb_power_electronics::regulator::FlowDirection::Forward) {
            prop_assert!(out < p);
            prop_assert!(out >= 0.0);
        }
    }

    /// Packet scheduler realized shares converge to the (quantized)
    /// setpoint for any share vector.
    #[test]
    fn scheduler_converges(
        raw in prop::collection::vec(0.01f64..1.0, 2..6),
    ) {
        let sum: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let mut s = PacketScheduler::new(&shares, 16_384).unwrap();
        for _ in 0..20_000 {
            s.next_packet();
        }
        prop_assert!(s.max_share_error() < 2e-3, "err = {}", s.max_share_error());
    }

    /// Scheduler never picks a zero-share battery.
    #[test]
    fn zero_share_never_picked(weight in 0.1f64..1.0) {
        let shares = [0.0, weight, 1.0 - weight];
        let mut s = PacketScheduler::new(&shares, 16_384).unwrap();
        for _ in 0..5_000 {
            prop_assert!(s.next_packet() != 0);
        }
    }

    /// Discharge loss fraction is positive, finite, and below 100 % over
    /// the benchmarked load range.
    #[test]
    fn loss_fraction_bounded(load in 0.05f64..20.0, v in 3.0f64..4.4) {
        for topo in [DischargeTopology::NaiveSwitch, DischargeTopology::SdbIntegrated] {
            let c = DischargeCircuit::new(topo, 2);
            let f = c.loss_fraction(load, v).unwrap();
            prop_assert!(f > 0.0 && f < 0.25, "f = {f}");
        }
    }

    /// Sense-chain absolute error stays within its physical budget
    /// (half an LSB of quantization + offset + gain mismatch).
    #[test]
    fn sense_error_bounded(i in 0.05f64..4.0) {
        let s = SenseChain::prototype_charger();
        let realized = s.realized_current_a(i).unwrap();
        let budget = s.lsb_a() / 2.0 + s.offset_a + s.gain_mismatch * i + 1e-12;
        prop_assert!((realized - i).abs() <= budget, "error at {i} A = {}", (realized - i).abs());
        // And within the paper's 0.5 % relative bound over its measured
        // sweep (0.2–2.0 A).
        if (0.2..=2.0).contains(&i) {
            let e = s.error_percent(i).unwrap();
            prop_assert!(e < 0.7, "error at {i} A = {e}%");
        }
    }

    /// Share-chain realized value round-trips within its quantization +
    /// mismatch budget.
    #[test]
    fn share_error_budget(p in 0.005f64..1.0) {
        let c = ShareChain::prototype();
        let realized = c.realized_share(p).unwrap();
        let budget = 0.5 / 16_384.0 + 0.0015 * p + 1e-12;
        prop_assert!((realized - p).abs() <= budget, "p={p} realized={realized}");
    }
}
