//! Property-based tests for the power-electronics substrate (sdb-testkit
//! seeded-case harness).

use sdb_power_electronics::circuits::{DischargeCircuit, DischargeTopology};
use sdb_power_electronics::measurement::{SenseChain, ShareChain};
use sdb_power_electronics::regulator::{Regulator, RegulatorKind};
use sdb_power_electronics::switch::PacketScheduler;
use sdb_testkit::{check, Gen};

fn arb_kind(g: &mut Gen) -> RegulatorKind {
    g.pick(&[
        RegulatorKind::Buck,
        RegulatorKind::BuckBoost,
        RegulatorKind::SynchronousReversibleBuck,
    ])
}

/// Regulator efficiency is always in (0, 1) for positive in-range current.
#[test]
fn efficiency_in_unit_interval() {
    check(256, 0x9E_0001, |g| {
        let kind = arb_kind(g);
        let frac = g.f64_range(0.001, 1.0);
        let v = g.f64_range(2.5, 4.5);
        let r = Regulator::typical(kind, 3.0);
        let eta = r.efficiency(frac * 3.0, v).unwrap();
        assert!(eta > 0.0 && eta < 1.0);
    });
}

/// Transfer never creates energy.
#[test]
fn transfer_is_lossy() {
    check(256, 0x9E_0002, |g| {
        let kind = arb_kind(g);
        let p = g.f64_range(0.1, 10.0);
        let v = g.f64_range(2.5, 4.5);
        let r = Regulator::typical(kind, 3.0);
        if let Ok(out) = r.transfer_w(
            p,
            v,
            sdb_power_electronics::regulator::FlowDirection::Forward,
        ) {
            assert!(out < p);
            assert!(out >= 0.0);
        }
    });
}

/// Packet scheduler realized shares converge to the (quantized) setpoint
/// for any share vector.
#[test]
fn scheduler_converges() {
    check(64, 0x9E_0003, |g| {
        let raw = g.vec_f64(0.01, 1.0, 2..6);
        let sum: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let mut s = PacketScheduler::new(&shares, 16_384).unwrap();
        for _ in 0..20_000 {
            s.next_packet();
        }
        assert!(s.max_share_error() < 2e-3, "err = {}", s.max_share_error());
    });
}

/// Scheduler never picks a zero-share battery.
#[test]
fn zero_share_never_picked() {
    check(64, 0x9E_0004, |g| {
        let weight = g.f64_range(0.1, 1.0);
        let shares = [0.0, weight, 1.0 - weight];
        let mut s = PacketScheduler::new(&shares, 16_384).unwrap();
        for _ in 0..5_000 {
            assert!(s.next_packet() != 0);
        }
    });
}

/// Discharge loss fraction is positive, finite, and below 100 % over the
/// benchmarked load range.
#[test]
fn loss_fraction_bounded() {
    check(256, 0x9E_0005, |g| {
        let load = g.f64_range(0.05, 20.0);
        let v = g.f64_range(3.0, 4.4);
        for topo in [
            DischargeTopology::NaiveSwitch,
            DischargeTopology::SdbIntegrated,
        ] {
            let c = DischargeCircuit::new(topo, 2);
            let f = c.loss_fraction(load, v).unwrap();
            assert!(f > 0.0 && f < 0.25, "f = {f}");
        }
    });
}

/// Sense-chain absolute error stays within its physical budget (half an
/// LSB of quantization + offset + gain mismatch).
#[test]
fn sense_error_bounded() {
    check(256, 0x9E_0006, |g| {
        let i = g.f64_range(0.05, 4.0);
        let s = SenseChain::prototype_charger();
        let realized = s.realized_current_a(i).unwrap();
        let budget = s.lsb_a() / 2.0 + s.offset_a + s.gain_mismatch * i + 1e-12;
        assert!(
            (realized - i).abs() <= budget,
            "error at {i} A = {}",
            (realized - i).abs()
        );
        // And within the paper's 0.5 % relative bound over its measured
        // sweep (0.2–2.0 A).
        if (0.2..=2.0).contains(&i) {
            let e = s.error_percent(i).unwrap();
            assert!(e < 0.7, "error at {i} A = {e}%");
        }
    });
}

/// Share-chain realized value round-trips within its quantization +
/// mismatch budget.
#[test]
fn share_error_budget() {
    check(256, 0x9E_0007, |g| {
        let p = g.f64_range(0.005, 1.0);
        let c = ShareChain::prototype();
        let realized = c.realized_share(p).unwrap();
        let budget = 0.5 / 16_384.0 + 0.0015 * p + 1e-12;
        assert!((realized - p).abs() <= budget, "p={p} realized={realized}");
    });
}
