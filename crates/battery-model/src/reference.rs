//! Higher-fidelity reference cell standing in for the lab cyclers.
//!
//! The paper validates its Thevenin emulator against physical cells measured
//! on Arbin BT-2000 and Maccor 4200 cyclers and reports 97.5 % terminal-
//! voltage accuracy (Figure 10). We have no cyclers, so this module provides
//! the "experiment" side of that comparison: a **2-RC** Thevenin variant
//! with an additional nonlinear (Butler–Volmer-like) charge-transfer
//! overpotential and deterministic measurement noise. The production 1-RC
//! model of [`crate::thevenin`] is validated against this richer process,
//! reproducing the paper's methodology (simple model vs richer ground
//! truth) and a comparable accuracy figure.

use crate::error::BatteryError;
use crate::spec::BatterySpec;

/// Deterministic xorshift noise source (no external RNG dependency; the
/// reference cell must be reproducible for the Figure 10 bench).
#[derive(Debug, Clone)]
struct Noise {
    state: u64,
}

impl Noise {
    fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    /// Uniform value in `[-1, 1)`.
    fn next(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        // Map the top 53 bits to [0, 1), then shift to [-1, 1).
        ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// The richer reference cell: 2-RC Thevenin + nonlinear overpotential +
/// measurement noise.
#[derive(Debug, Clone)]
pub struct ReferenceCell {
    spec: BatterySpec,
    soc: f64,
    /// Fast RC branch voltage (60 % of the concentration resistance).
    v_rc_fast: f64,
    /// Slow RC branch voltage (40 % of the concentration resistance, 8x the
    /// time constant).
    v_rc_slow: f64,
    noise: Noise,
    /// Peak measurement noise amplitude, volts (cycler-grade: ~2 mV).
    noise_amp_v: f64,
    /// Charge-transfer overpotential scale, volts.
    overpotential_v: f64,
    /// OCP hysteresis, volts: real cells sit slightly below their rest OCP
    /// curve while discharging (and above while charging) — an effect the
    /// 1-RC production model does not capture, and the main source of the
    /// paper's ~2.5 % validation gap.
    hysteresis_v: f64,
}

impl ReferenceCell {
    /// Creates a fully charged reference cell with the default cycler-grade
    /// noise (4 mV), charge-transfer overpotential (45 mV at the exchange
    /// current), and OCP hysteresis (55 mV) — calibrated so the 1-RC
    /// production model validates near the paper's 97.5 %.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    #[must_use]
    pub fn new(spec: BatterySpec, seed: u64) -> Self {
        spec.validate().expect("invalid battery spec");
        Self {
            spec,
            soc: 1.0,
            v_rc_fast: 0.0,
            v_rc_slow: 0.0,
            noise: Noise::new(seed),
            noise_amp_v: 0.004,
            overpotential_v: 0.045,
            hysteresis_v: 0.055,
        }
    }

    /// Sets the initial state of charge.
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    #[must_use]
    pub fn with_soc(mut self, soc: f64) -> Self {
        assert!((0.0..=1.0).contains(&soc), "soc out of range: {soc}");
        self.soc = soc;
        self
    }

    /// State of charge.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// The cell spec.
    #[must_use]
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Nonlinear charge-transfer overpotential at load current `i`
    /// (`η = a·asinh(I/I₀)`, with `I₀` = 0.5C exchange current).
    #[must_use]
    pub fn overpotential(&self, current_a: f64) -> f64 {
        let i0 = 0.5 * self.spec.capacity_ah;
        self.overpotential_v * (current_a / i0).asinh()
    }

    /// Advances the reference process by `dt_s` at `current_a` (positive =
    /// discharge) and returns the *measured* terminal voltage (with noise).
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidTimeStep`]/[`BatteryError::InvalidLoad`] for
    /// bad inputs; [`BatteryError::Empty`]/[`BatteryError::Full`] at the SoC
    /// boundaries.
    pub fn step_current(&mut self, current_a: f64, dt_s: f64) -> Result<f64, BatteryError> {
        if !dt_s.is_finite() || dt_s < 0.0 {
            return Err(BatteryError::InvalidTimeStep { dt_s });
        }
        if !current_a.is_finite() {
            return Err(BatteryError::InvalidLoad { value: current_a });
        }
        if current_a > 0.0 && self.soc <= 0.0 {
            return Err(BatteryError::Empty);
        }
        if current_a < 0.0 && self.soc >= 1.0 {
            return Err(BatteryError::Full);
        }

        let r_fast = self.spec.concentration_r_ohm * 0.6;
        let r_slow = self.spec.concentration_r_ohm * 0.4;
        let tau_fast = r_fast * self.spec.plate_c_f;
        let tau_slow = r_slow * self.spec.plate_c_f * 8.0;
        let relax = |v: f64, target: f64, tau: f64| {
            if tau > 0.0 {
                target + (v - target) * (-dt_s / tau).exp()
            } else {
                target
            }
        };
        self.v_rc_fast = relax(self.v_rc_fast, current_a * r_fast, tau_fast);
        self.v_rc_slow = relax(self.v_rc_slow, current_a * r_slow, tau_slow);

        self.soc = (self.soc - current_a * dt_s / 3600.0 / self.spec.capacity_ah).clamp(0.0, 1.0);
        Ok(self.terminal_voltage(current_a))
    }

    /// Measured terminal voltage at load `current_a` (includes noise).
    #[must_use]
    pub fn terminal_voltage(&mut self, current_a: f64) -> f64 {
        let hysteresis = self.hysteresis_v * current_a.signum();
        let clean = self.spec.ocp.eval(self.soc)
            - current_a * self.spec.dcir.eval(self.soc)
            - self.v_rc_fast
            - self.v_rc_slow
            - self.overpotential(current_a)
            - hysteresis;
        clean + self.noise.next() * self.noise_amp_v
    }

    /// Whether the cell is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.soc <= f64::EPSILON
    }
}

/// Result of validating the 1-RC production model against the reference
/// process (the Figure 10 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// Discharge current used, amps.
    pub current_a: f64,
    /// Mean absolute relative terminal-voltage error.
    pub mean_abs_rel_error: f64,
    /// Maximum absolute relative error observed.
    pub max_abs_rel_error: f64,
    /// Number of comparison samples.
    pub samples: usize,
}

impl ValidationReport {
    /// Accuracy as the paper states it: `1 − mean relative error`, percent.
    #[must_use]
    pub fn accuracy_percent(&self) -> f64 {
        (1.0 - self.mean_abs_rel_error) * 100.0
    }
}

/// Runs the Figure 10 validation: discharges a fresh model cell and a fresh
/// reference cell at `current_a` from full to 5 % SoC, comparing terminal
/// voltages every `dt_s` seconds.
///
/// # Panics
///
/// Panics if `current_a` or `dt_s` is not positive.
#[must_use]
pub fn validate_model(
    spec: &BatterySpec,
    current_a: f64,
    dt_s: f64,
    seed: u64,
) -> ValidationReport {
    assert!(current_a > 0.0 && dt_s > 0.0);
    let mut model = crate::thevenin::TheveninCell::new(spec.clone());
    let mut reference = ReferenceCell::new(spec.clone(), seed);
    let mut sum_err = 0.0;
    let mut max_err: f64 = 0.0;
    let mut samples = 0usize;
    while reference.soc() > 0.05 && model.soc() > 0.05 {
        let v_ref = match reference.step_current(current_a, dt_s) {
            Ok(v) => v,
            Err(_) => break,
        };
        let out = match model.step_current(current_a, dt_s) {
            Ok(o) => o,
            Err(_) => break,
        };
        let rel = ((out.terminal_v - v_ref) / v_ref).abs();
        sum_err += rel;
        max_err = max_err.max(rel);
        samples += 1;
    }
    ValidationReport {
        current_a,
        mean_abs_rel_error: if samples > 0 {
            sum_err / samples as f64
        } else {
            0.0
        },
        max_abs_rel_error: max_err,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn spec() -> BatterySpec {
        BatterySpec::from_chemistry("v", Chemistry::Type2CoStandard, 1.5)
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..1000 {
            let x = a.next();
            assert!((-1.0..1.0).contains(&x));
            assert_eq!(x, b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1);
        let mut b = Noise::new(2);
        let va: Vec<f64> = (0..8).map(|_| a.next()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn overpotential_is_odd_and_monotone() {
        let r = ReferenceCell::new(spec(), 7);
        assert!(r.overpotential(1.0) > 0.0);
        assert!((r.overpotential(1.0) + r.overpotential(-1.0)).abs() < 1e-12);
        assert!(r.overpotential(2.0) > r.overpotential(1.0));
        assert!(r.overpotential(0.0).abs() < 1e-12);
    }

    #[test]
    fn reference_discharges() {
        let mut r = ReferenceCell::new(spec(), 7);
        let v = r.step_current(0.5, 60.0).unwrap();
        assert!(v > 3.0 && v < 4.4);
        assert!(r.soc() < 1.0);
    }

    #[test]
    fn validation_matches_paper_accuracy() {
        // Paper Figure 10: model is ~97.5 % accurate at 0.2/0.5/0.7 A.
        let spec = spec();
        for &i in &[0.2, 0.5, 0.7] {
            let report = validate_model(&spec, i, 10.0, 99);
            assert!(report.samples > 100);
            let acc = report.accuracy_percent();
            assert!(acc > 96.0, "accuracy at {i} A = {acc}%");
            assert!(acc < 100.0);
        }
    }

    #[test]
    fn higher_current_is_no_more_accurate() {
        // The nonlinear overpotential grows with current, so the 1-RC model
        // diverges more at higher loads — matching the paper's worst fit at
        // 0.7 A.
        let spec = spec();
        let low = validate_model(&spec, 0.2, 10.0, 5);
        let high = validate_model(&spec, 0.7, 10.0, 5);
        assert!(high.mean_abs_rel_error >= low.mean_abs_rel_error * 0.8);
    }

    #[test]
    fn boundary_errors() {
        let mut r = ReferenceCell::new(spec(), 3).with_soc(0.0);
        assert_eq!(r.step_current(1.0, 1.0), Err(BatteryError::Empty));
        let mut r = ReferenceCell::new(spec(), 3);
        assert_eq!(r.step_current(-1.0, 1.0), Err(BatteryError::Full));
    }
}
