//! Lumped thermal model for a cell.
//!
//! The paper lists device temperature among the external factors that can
//! trigger policy changes (Section 3.3) and motivates the SDB discharge
//! design with heating concerns. This module provides a first-order lumped
//! model: the cell is one thermal mass heated by its resistive losses and
//! cooled toward ambient through a fixed thermal resistance.

/// Arrhenius-style temperature dependence of the cell's internal
/// resistance: ionic conductivity drops in the cold, so resistance rises.
/// Returns the multiplier relative to the 25 °C reference (≈1.6× at 0 °C,
/// ≈0.8× at 40 °C).
#[must_use]
pub fn resistance_multiplier_at(temperature_c: f64) -> f64 {
    const T_REF_K: f64 = 298.15;
    const ACTIVATION_K: f64 = 1600.0;
    let t_k = (temperature_c + 273.15).max(200.0);
    (ACTIVATION_K * (1.0 / t_k - 1.0 / T_REF_K)).exp()
}

/// First-order thermal state: `C_th · dT/dt = P_heat − (T − T_amb)/R_th`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Cell temperature, °C.
    temperature_c: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance to ambient, K/W.
    pub r_th_k_per_w: f64,
    /// Thermal capacitance, J/K.
    pub c_th_j_per_k: f64,
}

impl ThermalModel {
    /// Creates a model at ambient equilibrium.
    ///
    /// Typical pouch-cell values: `r_th` ≈ 12 K/W for a small cell in a
    /// device, `c_th` ≈ 45 J/K per Ah of capacity.
    #[must_use]
    pub fn new(ambient_c: f64, r_th_k_per_w: f64, c_th_j_per_k: f64) -> Self {
        Self {
            temperature_c: ambient_c,
            ambient_c,
            r_th_k_per_w,
            c_th_j_per_k,
        }
    }

    /// Default model for a cell of `capacity_ah` at 25 °C ambient.
    #[must_use]
    pub fn for_capacity(capacity_ah: f64) -> Self {
        Self::for_capacity_at(capacity_ah, 25.0)
    }

    /// Default model for a cell of `capacity_ah` at a given ambient.
    #[must_use]
    pub fn for_capacity_at(capacity_ah: f64, ambient_c: f64) -> Self {
        Self::new(
            ambient_c,
            12.0 / capacity_ah.max(0.1).sqrt(),
            45.0 * capacity_ah.max(0.1),
        )
    }

    /// Current cell temperature, °C.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Overwrites the temperature state (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite temperature.
    pub fn set_temperature_c(&mut self, temperature_c: f64) {
        assert!(temperature_c.is_finite(), "bad temperature {temperature_c}");
        self.temperature_c = temperature_c;
    }

    /// Advances the thermal state by `dt_s` seconds with `heat_w` watts of
    /// internal dissipation (exact exponential update, stable for any step).
    pub fn step(&mut self, heat_w: f64, dt_s: f64) {
        debug_assert!(dt_s >= 0.0 && heat_w.is_finite());
        let t_ss = self.ambient_c + heat_w.max(0.0) * self.r_th_k_per_w;
        let tau = self.r_th_k_per_w * self.c_th_j_per_k;
        if tau > 0.0 {
            self.temperature_c = t_ss + (self.temperature_c - t_ss) * (-dt_s / tau).exp();
        } else {
            self.temperature_c = t_ss;
        }
    }

    /// Steady-state temperature under constant `heat_w` watts.
    #[must_use]
    pub fn steady_state_c(&self, heat_w: f64) -> f64 {
        self.ambient_c + heat_w.max(0.0) * self.r_th_k_per_w
    }

    /// Rise above ambient, kelvin.
    #[must_use]
    pub fn rise_k(&self) -> f64 {
        self.temperature_c - self.ambient_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_multiplier_shape() {
        assert!((resistance_multiplier_at(25.0) - 1.0).abs() < 1e-3);
        let cold = resistance_multiplier_at(0.0);
        let hot = resistance_multiplier_at(40.0);
        assert!(cold > 1.4 && cold < 1.9, "cold = {cold}");
        assert!(hot > 0.7 && hot < 0.9, "hot = {hot}");
        // Monotone decreasing in temperature.
        assert!(resistance_multiplier_at(-20.0) > cold);
        assert!(resistance_multiplier_at(60.0) < hot);
    }

    #[test]
    fn starts_at_ambient() {
        let t = ThermalModel::new(25.0, 10.0, 100.0);
        assert_eq!(t.temperature_c(), 25.0);
        assert_eq!(t.rise_k(), 0.0);
    }

    #[test]
    fn heats_toward_steady_state() {
        let mut t = ThermalModel::new(25.0, 10.0, 100.0);
        // 1 W → steady state 35 °C.
        for _ in 0..100 {
            t.step(1.0, 60.0);
        }
        assert!((t.temperature_c() - 35.0).abs() < 0.1);
        assert_eq!(t.steady_state_c(1.0), 35.0);
    }

    #[test]
    fn cools_back_to_ambient() {
        let mut t = ThermalModel::new(25.0, 10.0, 100.0);
        t.step(5.0, 10_000.0);
        assert!(t.temperature_c() > 30.0);
        t.step(0.0, 100_000.0);
        assert!((t.temperature_c() - 25.0).abs() < 0.01);
    }

    #[test]
    fn exponential_update_is_stable_for_huge_steps() {
        let mut t = ThermalModel::new(25.0, 10.0, 100.0);
        t.step(2.0, 1e9);
        assert!((t.temperature_c() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn bigger_cells_heat_slower() {
        let mut small = ThermalModel::for_capacity(0.2);
        let mut large = ThermalModel::for_capacity(3.0);
        small.step(1.0, 60.0);
        large.step(1.0, 60.0);
        assert!(small.rise_k() > large.rise_k());
    }

    #[test]
    fn negative_heat_clamped() {
        let mut t = ThermalModel::new(25.0, 10.0, 100.0);
        t.step(-5.0, 1000.0);
        assert!(t.temperature_c() >= 25.0 - 1e-9);
    }
}
