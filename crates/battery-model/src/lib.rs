//! Electrochemical battery simulation substrate for Software Defined Batteries.
//!
//! This crate is the bottom layer of the SDB reproduction. It provides:
//!
//! * [`curves`] — monotone piecewise-linear curves used for open-circuit
//!   potential (OCP) vs state of charge (SoC) and DC internal resistance
//!   (DCIR) vs SoC, including the derivative queries the RBL policy needs.
//! * [`chemistry`] — the paper's four Li-ion chemistry classes (Figure 1a)
//!   with their per-axis capability scores and physical constants.
//! * [`spec`] — [`spec::BatterySpec`], a full parameterization of one cell.
//! * [`thevenin`] — the production 1-RC Thevenin cell model the paper's
//!   emulator uses (Figure 8a), with heat-loss and efficiency accounting.
//! * [`mod@reference`] — a richer 2-RC + nonlinear-overpotential cell standing in
//!   for the lab cyclers, used to validate the Thevenin model (Figure 10).
//! * [`aging`] — cycle counting exactly per the paper's rules and a
//!   C-rate-dependent capacity-fade law (Figures 1b and 11c).
//! * [`thermal`] — a lumped thermal model tracking cell temperature from
//!   resistive heat.
//! * [`library`] — the 15 modeled batteries plus the scenario cells used in
//!   Section 5 of the paper.
//! * [`units`] — typed physical quantities for public entry points.
//!
//! # Conventions
//!
//! All physical quantities are `f64` in SI-ish units with suffixed names:
//! volts (`_v`), amps (`_a`), ohms (`_ohm`), watts (`_w`), joules (`_j`),
//! amp-hours (`_ah`), seconds (`_s`). **Positive current discharges the
//! cell**; negative current charges it. State of charge is a fraction in
//! `[0, 1]`.
//!
//! # Example
//!
//! ```
//! use sdb_battery_model::library;
//!
//! // A standard high-energy-density phone cell (paper Type 2).
//! let mut cell = library::type2_standard(3.0); // 3.0 Ah
//! assert!((cell.soc() - 1.0).abs() < 1e-12);
//!
//! // Discharge at 1C for one minute.
//! let out = cell.step_current(3.0, 60.0).unwrap();
//! assert!(out.terminal_v > 2.5 && out.terminal_v < 4.4);
//! assert!(cell.soc() < 1.0);
//! ```

pub mod aging;
pub mod chemistry;
pub mod curves;
pub mod error;
pub mod library;
pub mod reference;
pub mod spec;
pub mod thermal;
pub mod thevenin;
pub mod units;

pub use aging::{AgingState, CycleCounter, FadeModel};
pub use chemistry::{AxisScores, Chemistry};
pub use curves::{Curve, CurveCursor, CurveLut};
pub use error::BatteryError;
pub use reference::ReferenceCell;
pub use spec::BatterySpec;
pub use thevenin::{StepOutcome, TheveninCell};
