//! Piecewise-linear curves for battery characteristic maps.
//!
//! The paper's emulator (Section 4.3) parameterizes every cell with two
//! measured curves: open-circuit potential vs state of charge (Figure 8b)
//! and internal resistance vs state of charge (Figure 8c). The RBL policies
//! additionally need the *derivative* of the DCIR curve (`δi` in Section
//! 3.3), so [`Curve`] exposes both interpolation and slope queries.

use crate::error::BatteryError;
use std::cell::Cell;

/// Last-segment memo for repeated [`Curve`] lookups.
///
/// Battery state of charge drifts slowly between consecutive simulation
/// steps, so the segment that answered the previous query almost always
/// answers the next one. A cursor remembers that segment (and, for
/// [`Curve::invert_cached`], whether the curve is monotone) and lets the
/// cached query paths re-hit it in O(1), probing the two adjacent segments
/// before falling back to the plain binary search on a jump.
///
/// A cursor is pure memoization: every cached query validates the
/// remembered segment against the actual query point before using it, so
/// results are bit-identical to the uncached forms no matter how stale the
/// cursor is. The only contract is that a cursor must be reused with the
/// same curve it last queried — pairing it with a different curve is safe
/// (the validation misses and re-searches) but wastes the memo.
///
/// Interior mutability (`Cell`) keeps the cached query methods `&self`, so
/// a cursor can live next to a shared `Arc<BatterySpec>` without making
/// the spec itself mutable. `Cell` makes holders `!Sync`; the simulation
/// moves each cell/device into exactly one worker thread (`Send`), which
/// is the concurrency contract the workspace asserts.
#[derive(Debug, Clone)]
pub struct CurveCursor {
    /// Index of the upper knot of the last-hit segment (`1..points.len()`).
    seg: Cell<usize>,
    /// Cached monotonicity classification for `invert_cached`.
    mono: Cell<u8>,
    /// Bit pattern of the last `eval_cached` query (NaN sentinel = none);
    /// a repeat query at the identical `x` returns the memoized value
    /// without touching the curve at all.
    x_bits: Cell<u64>,
    /// The value `eval_cached` computed for the `x` above.
    y_memo: Cell<f64>,
}

impl CurveCursor {
    const MONO_UNKNOWN: u8 = 0;
    const MONO_YES: u8 = 1;
    const MONO_NO: u8 = 2;

    /// A fresh cursor with no remembered segment.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seg: Cell::new(1),
            mono: Cell::new(Self::MONO_UNKNOWN),
            x_bits: Cell::new(f64::NAN.to_bits()),
            y_memo: Cell::new(f64::NAN),
        }
    }
}

impl Default for CurveCursor {
    fn default() -> Self {
        Self::new()
    }
}

/// A piecewise-linear curve `y = f(x)` over strictly increasing knots.
///
/// Evaluation outside the knot range clamps to the end values (batteries do
/// not extrapolate: an SoC query below the first characterized point returns
/// the first characterized value).
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Knot points, strictly increasing in x.
    points: Vec<(f64, f64)>,
}

impl Curve {
    /// Builds a curve from `(x, y)` knots.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given, any coordinate is
    /// non-finite, or the x-coordinates are not strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        if points.len() < 2 {
            return Err(BatteryError::CurveTooShort {
                points: points.len(),
            });
        }
        for (i, &(x, y)) in points.iter().enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(BatteryError::CurveNotFinite { index: i });
            }
        }
        for i in 1..points.len() {
            if points[i].0 <= points[i - 1].0 {
                return Err(BatteryError::CurveNotSorted { index: i });
            }
        }
        Ok(Self { points })
    }

    /// Builds a curve and additionally checks that y is non-decreasing.
    ///
    /// Used for OCP-vs-SoC curves, which are physically monotone
    /// (Figure 8b: "open circuit potential increases with state of charge").
    ///
    /// # Errors
    ///
    /// As [`Curve::new`], plus [`BatteryError::CurveNotMonotone`] if any step
    /// decreases in y.
    pub fn new_non_decreasing(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        let c = Self::new(points)?;
        for i in 1..c.points.len() {
            if c.points[i].1 < c.points[i - 1].1 {
                return Err(BatteryError::CurveNotMonotone { index: i });
            }
        }
        Ok(c)
    }

    /// Builds a curve and additionally checks that y is non-increasing.
    ///
    /// Used for DCIR-vs-SoC curves, which decrease with state of charge
    /// (Figure 8c: "internal resistance decreases with the state of charge").
    ///
    /// # Errors
    ///
    /// As [`Curve::new`], plus [`BatteryError::CurveNotMonotone`] if any step
    /// increases in y.
    pub fn new_non_increasing(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        let c = Self::new(points)?;
        for i in 1..c.points.len() {
            if c.points[i].1 > c.points[i - 1].1 {
                return Err(BatteryError::CurveNotMonotone { index: i });
            }
        }
        Ok(c)
    }

    /// Evaluates the curve at `x`, clamping outside the knot range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = match pts
            .binary_search_by(|&(px, _)| px.partial_cmp(&x).expect("knots and query are finite"))
        {
            Ok(i) => return pts[i].1,
            Err(i) => i,
        };
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Returns the slope `dy/dx` of the segment containing `x`.
    ///
    /// Outside the knot range the slope is 0 (consistent with clamped
    /// evaluation). Exactly at an interior knot, the right segment's slope is
    /// returned.
    #[must_use]
    pub fn slope(&self, x: f64) -> f64 {
        let pts = &self.points;
        // Exactly at the last knot, report the left segment's slope (the
        // curve's domain includes its endpoint; clamping only applies
        // beyond it) — e.g. a full cell still has a DCIR slope.
        if x == pts[pts.len() - 1].0 {
            let (x0, y0) = pts[pts.len() - 2];
            let (x1, y1) = pts[pts.len() - 1];
            return (y1 - y0) / (x1 - x0);
        }
        if x < pts[0].0 || x > pts[pts.len() - 1].0 {
            return 0.0;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        // `idx` is the first knot strictly greater than x; the segment is
        // [idx-1, idx]. `x >= pts[0].0` guarantees idx >= 1.
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        (y1 - y0) / (x1 - x0)
    }

    /// Locates the segment `[i-1, i]` with `pts[i-1].0 <= x <= pts[i].0`
    /// for an in-range `x`, using the cursor's memo: re-hit the cached
    /// segment, then its two neighbors, then binary search. The found
    /// index is stored back into the cursor.
    ///
    /// Callers must ensure `pts[0].0 <= x < pts[last].0` (or `x` equal to
    /// an interior knot); out-of-range clamping happens before this.
    fn locate(&self, cursor: &CurveCursor, x: f64) -> usize {
        let pts = &self.points;
        let last = pts.len() - 1;
        let c = cursor.seg.get().clamp(1, last);
        let i = if pts[c - 1].0 <= x && x <= pts[c].0 {
            c
        } else if x > pts[c].0 && c < last && x <= pts[c + 1].0 {
            c + 1
        } else if x < pts[c - 1].0 && c > 1 && pts[c - 2].0 <= x {
            c - 1
        } else {
            // First index whose knot is >= x; never 0 for in-range x
            // except x == pts[0].0, where segment 1 (with x == x0) is
            // the correct answer.
            pts.partition_point(|&(px, _)| px < x).max(1)
        };
        cursor.seg.set(i);
        i
    }

    /// [`Curve::eval`] with a [`CurveCursor`] memo. Bit-identical results
    /// (for the finite `x` the simulation queries with): the interior
    /// segment containing `x` is unique (knots are strictly increasing),
    /// the interpolation arithmetic is the same expression in the same
    /// order regardless of how the segment was found, and a repeat query
    /// at the identical `x` returns the identical previously computed
    /// value.
    #[must_use]
    pub fn eval_cached(&self, cursor: &CurveCursor, x: f64) -> f64 {
        // The hot loop evaluates the same SoC against the same curve
        // several times per step (report row, planning caps, current
        // solve); the value memo turns the repeats into two loads.
        if x.to_bits() == cursor.x_bits.get() {
            return cursor.y_memo.get();
        }
        let y = self.eval_cached_cold(cursor, x);
        cursor.x_bits.set(x.to_bits());
        cursor.y_memo.set(y);
        y
    }

    fn eval_cached_cold(&self, cursor: &CurveCursor, x: f64) -> f64 {
        let pts = &self.points;
        let last = pts.len() - 1;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[last].0 {
            return pts[last].1;
        }
        let i = self.locate(cursor, x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        // Exact-knot hits return the knot's y, matching the binary
        // search's `Ok` branch in `eval`.
        if x == x0 {
            return y0;
        }
        if x == x1 {
            return y1;
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// [`Curve::slope`] with a [`CurveCursor`] memo. Bit-identical results
    /// (same segment-selection semantics: right segment at interior knots,
    /// left segment at the last knot, 0 outside the range).
    #[must_use]
    pub fn slope_cached(&self, cursor: &CurveCursor, x: f64) -> f64 {
        let pts = &self.points;
        let last = pts.len() - 1;
        if x == pts[last].0 {
            let (x0, y0) = pts[last - 1];
            let (x1, y1) = pts[last];
            return (y1 - y0) / (x1 - x0);
        }
        if x < pts[0].0 || x > pts[last].0 {
            return 0.0;
        }
        // `locate` finds a closed-interval segment; `slope` wants the
        // half-open one (right segment at interior knots), so shift right
        // when x sits exactly on the located segment's upper knot.
        let mut i = self.locate(cursor, x);
        if x == pts[i].0 {
            i += 1;
        }
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        (y1 - y0) / (x1 - x0)
    }

    /// Evaluates the curve and the slope of the surrounding segment in one
    /// segment search.
    ///
    /// Returns exactly `(self.eval(x), self.slope(x))` — the RBL balance
    /// needs both the DCIR value and its derivative at the same SoC, and
    /// this halves the lookup work.
    #[must_use]
    pub fn value_and_slope(&self, x: f64) -> (f64, f64) {
        let pts = &self.points;
        let last = pts.len() - 1;
        if x < pts[0].0 {
            return (pts[0].1, 0.0);
        }
        if x > pts[last].0 {
            return (pts[last].1, 0.0);
        }
        if x == pts[last].0 {
            let (x0, y0) = pts[last - 1];
            let (x1, y1) = pts[last];
            return (y1, (y1 - y0) / (x1 - x0));
        }
        // pts[0].0 <= x < pts[last].0: use slope's segment (right segment
        // at interior knots); its lower knot carries eval's exact-knot y.
        let i = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        let slope = (y1 - y0) / (x1 - x0);
        let value = if x == x0 {
            y0
        } else {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        };
        (value, slope)
    }

    /// [`Curve::value_and_slope`] with a [`CurveCursor`] memo.
    /// Bit-identical to the uncached form (and hence to the separate
    /// `eval` + `slope` calls).
    #[must_use]
    pub fn value_and_slope_cached(&self, cursor: &CurveCursor, x: f64) -> (f64, f64) {
        let pts = &self.points;
        let last = pts.len() - 1;
        if x < pts[0].0 {
            return (pts[0].1, 0.0);
        }
        if x > pts[last].0 {
            return (pts[last].1, 0.0);
        }
        if x == pts[last].0 {
            let (x0, y0) = pts[last - 1];
            let (x1, y1) = pts[last];
            return (y1, (y1 - y0) / (x1 - x0));
        }
        let mut i = self.locate(cursor, x);
        if x == pts[i].0 {
            i += 1;
        }
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        let slope = (y1 - y0) / (x1 - x0);
        let value = if x == x0 {
            y0
        } else {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        };
        (value, slope)
    }

    /// Returns a new curve with every y multiplied by `factor`.
    ///
    /// Used, e.g., to derive an aged DCIR curve (resistance grows with age)
    /// or a chemistry variant from a base curve.
    #[must_use]
    pub fn scale_y(&self, factor: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(x, y)| (x, y * factor)).collect(),
        }
    }

    /// Returns a new curve with `offset` added to every y.
    #[must_use]
    pub fn offset_y(&self, offset: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(x, y)| (x, y + offset)).collect(),
        }
    }

    /// The smallest knot x-coordinate.
    #[must_use]
    pub fn x_min(&self) -> f64 {
        self.points[0].0
    }

    /// The largest knot x-coordinate.
    #[must_use]
    pub fn x_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// The minimum y value over all knots.
    #[must_use]
    pub fn y_min(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum y value over all knots.
    #[must_use]
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The knot points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Samples the curve at `n` evenly spaced x positions across its range.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn sample(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least 2 samples");
        let (lo, hi) = (self.x_min(), self.x_max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * (i as f64) / ((n - 1) as f64);
                (x, self.eval(x))
            })
            .collect()
    }

    /// Numerically inverts a monotone curve: finds `x` with `f(x) = y`.
    ///
    /// Returns `None` if `y` is outside the curve's y range or the curve is
    /// not monotone over its knots. Used, e.g., to recover SoC from a rest
    /// OCV measurement in the fuel gauge.
    #[must_use]
    pub fn invert(&self, y: f64) -> Option<f64> {
        let increasing = self.points.windows(2).all(|w| w[1].1 >= w[0].1);
        let decreasing = self.points.windows(2).all(|w| w[1].1 <= w[0].1);
        if !increasing && !decreasing {
            return None;
        }
        let (ylo, yhi) = (self.y_min(), self.y_max());
        if y < ylo || y > yhi {
            return None;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (seg_lo, seg_hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
            if y >= seg_lo && y <= seg_hi {
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(x0);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        None
    }

    /// [`Curve::invert`] with a [`CurveCursor`] memo. Bit-identical
    /// results.
    ///
    /// The fast path fires only when the cursor already knows the curve is
    /// monotone and `y` falls *strictly* inside the cached segment's
    /// y-span (and that span is not near-flat): under those conditions the
    /// containing segment is unique, so the plain first-match scan would
    /// land on the same segment and compute the same expression. Anything
    /// else — boundary y values shared by adjacent segments, flat
    /// segments, out-of-range y, unknown monotonicity — takes the exact
    /// slow path.
    #[must_use]
    pub fn invert_cached(&self, cursor: &CurveCursor, y: f64) -> Option<f64> {
        let pts = &self.points;
        if cursor.mono.get() == CurveCursor::MONO_YES {
            let c = cursor.seg.get();
            if c >= 1 && c < pts.len() {
                let (x0, y0) = pts[c - 1];
                let (x1, y1) = pts[c];
                let strictly_inside = (y0 < y && y < y1) || (y1 < y && y < y0);
                if strictly_inside && (y1 - y0).abs() >= f64::EPSILON {
                    return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
                }
            }
        }
        if cursor.mono.get() == CurveCursor::MONO_UNKNOWN {
            let increasing = pts.windows(2).all(|w| w[1].1 >= w[0].1);
            let decreasing = pts.windows(2).all(|w| w[1].1 <= w[0].1);
            cursor.mono.set(if increasing || decreasing {
                CurveCursor::MONO_YES
            } else {
                CurveCursor::MONO_NO
            });
        }
        if cursor.mono.get() == CurveCursor::MONO_NO {
            return None;
        }
        let (ylo, yhi) = (self.y_min(), self.y_max());
        if y < ylo || y > yhi {
            return None;
        }
        for (i, w) in pts.windows(2).enumerate() {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (seg_lo, seg_hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
            if y >= seg_lo && y <= seg_hi {
                cursor.seg.set(i + 1);
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(x0);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        None
    }

    /// Precomputes a uniform-grid lookup table with `cells` grid cells
    /// spanning the curve's x range.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    #[must_use]
    pub fn to_lut(&self, cells: usize) -> CurveLut {
        assert!(cells > 0, "LUT needs at least one grid cell");
        let x0 = self.x_min();
        let dx = (self.x_max() - x0) / cells as f64;
        let ys = (0..=cells)
            .map(|i| {
                // Sample the exact endpoint last so end clamping agrees
                // with the source curve bit-for-bit.
                let x = if i == cells {
                    self.x_max()
                } else {
                    dx.mul_add(i as f64, x0)
                };
                self.eval(x)
            })
            .collect();
        CurveLut {
            x0,
            dx,
            inv_dx: 1.0 / dx,
            ys,
        }
    }
}

/// A precomputed uniform-grid lookup table over a [`Curve`]'s x range.
///
/// Evaluation replaces the segment search with one multiply and two table
/// reads. The table interpolates between *grid samples* rather than the
/// original knots, so results are an approximation wherever a knot falls
/// between grid points — which is why the LUT is opt-in and **not** used
/// on the simulation's default path (the default path must stay
/// bit-identical to the knot-exact curve). Use it for throughput-bound
/// consumers that can tolerate the bound reported by
/// [`CurveLut::max_abs_error`].
#[derive(Debug, Clone, PartialEq)]
pub struct CurveLut {
    /// Grid origin (the source curve's `x_min`).
    x0: f64,
    /// Grid spacing.
    dx: f64,
    /// Reciprocal grid spacing (precomputed; division is slow).
    inv_dx: f64,
    /// Samples at the `cells + 1` grid points.
    ys: Vec<f64>,
}

impl CurveLut {
    /// Evaluates the table at `x`, clamping outside the grid range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let t = (x - self.x0) * self.inv_dx;
        if t <= 0.0 {
            return self.ys[0];
        }
        let hi = self.ys.len() - 1;
        if t >= hi as f64 {
            return self.ys[hi];
        }
        let i = t as usize;
        let frac = t - i as f64;
        (self.ys[i + 1] - self.ys[i]).mul_add(frac, self.ys[i])
    }

    /// Number of grid cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.ys.len() - 1
    }

    /// The exact maximum absolute error of this table against `curve`.
    ///
    /// Both functions are piecewise linear, so their difference is
    /// piecewise linear with breakpoints at the union of the curve's knots
    /// and the grid points; a piecewise-linear function attains its
    /// extremes at breakpoints. At grid points the table reproduces the
    /// curve by construction, so the error is maximal at (a floating-point
    /// hair's width from) an original knot — this evaluates every
    /// breakpoint of both kinds and returns the worst.
    #[must_use]
    pub fn max_abs_error(&self, curve: &Curve) -> f64 {
        let mut worst = 0.0f64;
        for &(x, y) in curve.points() {
            worst = worst.max((y - self.eval(x)).abs());
        }
        for i in 0..self.ys.len() {
            let x = self.dx.mul_add(i as f64, self.x0);
            worst = worst.max((curve.eval(x) - self.eval(x)).abs());
        }
        worst
    }
}

/// Convenience constructor for curves over SoC in `[0, 1]` from evenly
/// spaced y values.
///
/// # Errors
///
/// Propagates [`Curve::new`] validation failures.
///
/// # Panics
///
/// Panics if `ys` has fewer than two entries (cannot span `[0, 1]`).
pub fn from_soc_samples(ys: &[f64]) -> Result<Curve, BatteryError> {
    assert!(ys.len() >= 2, "need at least 2 samples to span [0,1]");
    let n = ys.len();
    Curve::new(
        ys.iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 / (n - 1) as f64, y))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Curve {
        Curve::new(vec![(0.0, 1.0), (1.0, 3.0)]).unwrap()
    }

    #[test]
    fn rejects_short_curve() {
        assert_eq!(
            Curve::new(vec![(0.0, 1.0)]),
            Err(BatteryError::CurveTooShort { points: 1 })
        );
    }

    #[test]
    fn rejects_unsorted() {
        assert_eq!(
            Curve::new(vec![(0.0, 1.0), (0.0, 2.0)]),
            Err(BatteryError::CurveNotSorted { index: 1 })
        );
        assert_eq!(
            Curve::new(vec![(0.5, 1.0), (0.2, 2.0)]),
            Err(BatteryError::CurveNotSorted { index: 1 })
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            Curve::new(vec![(0.0, f64::NAN), (1.0, 2.0)]),
            Err(BatteryError::CurveNotFinite { index: 0 })
        );
    }

    #[test]
    fn monotone_validators() {
        assert!(Curve::new_non_decreasing(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 5.0)]).is_ok());
        assert_eq!(
            Curve::new_non_decreasing(vec![(0.0, 2.0), (1.0, 1.0)]),
            Err(BatteryError::CurveNotMonotone { index: 1 })
        );
        assert!(Curve::new_non_increasing(vec![(0.0, 5.0), (1.0, 1.0)]).is_ok());
        assert_eq!(
            Curve::new_non_increasing(vec![(0.0, 1.0), (1.0, 2.0)]),
            Err(BatteryError::CurveNotMonotone { index: 1 })
        );
    }

    #[test]
    fn interpolates_linearly() {
        let c = line();
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(0.5), 2.0);
        assert_eq!(c.eval(1.0), 3.0);
    }

    #[test]
    fn clamps_outside_range() {
        let c = line();
        assert_eq!(c.eval(-1.0), 1.0);
        assert_eq!(c.eval(2.0), 3.0);
    }

    #[test]
    fn eval_hits_knot_exactly() {
        let c = Curve::new(vec![(0.0, 1.0), (0.5, 10.0), (1.0, 3.0)]).unwrap();
        assert_eq!(c.eval(0.5), 10.0);
    }

    #[test]
    fn slope_per_segment() {
        let c = Curve::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]).unwrap();
        assert_eq!(c.slope(0.5), 2.0);
        assert_eq!(c.slope(1.5), 0.0);
        // At interior knot: right segment.
        assert_eq!(c.slope(1.0), 0.0);
        // Outside: zero.
        assert_eq!(c.slope(-1.0), 0.0);
        assert_eq!(c.slope(3.0), 0.0);
    }

    #[test]
    fn scale_and_offset() {
        let c = line().scale_y(2.0).offset_y(1.0);
        assert_eq!(c.eval(0.0), 3.0);
        assert_eq!(c.eval(1.0), 7.0);
    }

    #[test]
    fn range_queries() {
        let c = Curve::new(vec![(0.0, 5.0), (1.0, 2.0), (2.0, 8.0)]).unwrap();
        assert_eq!(c.x_min(), 0.0);
        assert_eq!(c.x_max(), 2.0);
        assert_eq!(c.y_min(), 2.0);
        assert_eq!(c.y_max(), 8.0);
    }

    #[test]
    fn sample_covers_range() {
        let s = line().sample(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 1.0));
        assert_eq!(s[4], (1.0, 3.0));
    }

    #[test]
    fn invert_increasing() {
        let c = line();
        let x = c.invert(2.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
        assert!(c.invert(0.5).is_none());
        assert!(c.invert(3.5).is_none());
    }

    #[test]
    fn invert_decreasing() {
        let c = Curve::new(vec![(0.0, 10.0), (1.0, 0.0)]).unwrap();
        let x = c.invert(5.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invert_non_monotone_is_none() {
        let c = Curve::new(vec![(0.0, 0.0), (1.0, 5.0), (2.0, 1.0)]).unwrap();
        assert!(c.invert(2.0).is_none());
    }

    #[test]
    fn invert_flat_segment() {
        let c = Curve::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        // Flat segment: returns the segment start.
        assert_eq!(c.invert(1.0), Some(0.0));
    }

    #[test]
    fn cursor_eval_matches_plain_eval() {
        let c = Curve::new(vec![(0.0, 1.0), (0.3, 2.0), (0.5, 10.0), (1.0, 3.0)]).unwrap();
        let cur = CurveCursor::new();
        // Drift, jump, exact knots, and out-of-range clamps.
        for &x in &[
            0.1, 0.12, 0.14, 0.9, 0.3, 0.5, 0.0, 1.0, -0.5, 1.5, 0.29, 0.31, 0.30,
        ] {
            assert_eq!(c.eval_cached(&cur, x).to_bits(), c.eval(x).to_bits());
            assert_eq!(c.slope_cached(&cur, x).to_bits(), c.slope(x).to_bits());
        }
    }

    #[test]
    fn value_and_slope_matches_two_calls() {
        let c = Curve::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]).unwrap();
        let cur = CurveCursor::new();
        for &x in &[-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let (v, s) = c.value_and_slope(x);
            assert_eq!(v.to_bits(), c.eval(x).to_bits());
            assert_eq!(s.to_bits(), c.slope(x).to_bits());
            let (vc, sc) = c.value_and_slope_cached(&cur, x);
            assert_eq!(vc.to_bits(), v.to_bits());
            assert_eq!(sc.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn cursor_invert_matches_plain_invert() {
        let c = Curve::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0), (3.0, 5.0)]).unwrap();
        let cur = CurveCursor::new();
        for &y in &[0.5, 1.0, 1.5, 2.0, 3.7, 3.7000001, 5.0, 6.0] {
            assert_eq!(
                c.invert_cached(&cur, y).map(f64::to_bits),
                c.invert(y).map(f64::to_bits)
            );
        }
        let non_mono = Curve::new(vec![(0.0, 0.0), (1.0, 5.0), (2.0, 1.0)]).unwrap();
        let cur2 = CurveCursor::new();
        assert_eq!(non_mono.invert_cached(&cur2, 2.0), None);
        assert_eq!(non_mono.invert_cached(&cur2, 2.0), None);
    }

    #[test]
    fn lut_is_exact_for_a_line_and_bounded_otherwise() {
        let lut = line().to_lut(4);
        assert_eq!(lut.cells(), 4);
        // A straight line is represented exactly by any grid.
        assert!(lut.max_abs_error(&line()) < 1e-12);
        assert_eq!(lut.eval(-1.0), 1.0);
        assert_eq!(lut.eval(2.0), 3.0);

        // A kinked curve on a coarse grid has error, bounded by
        // max_abs_error, and maximal at the off-grid knot.
        let kink = Curve::new(vec![(0.0, 0.0), (0.125, 1.0), (1.0, 0.0)]).unwrap();
        let lut = kink.to_lut(4);
        let bound = lut.max_abs_error(&kink);
        assert!(bound > 0.0);
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!((lut.eval(x) - kink.eval(x)).abs() <= bound * (1.0 + 1e-12) + 1e-12);
        }
        // A finer grid shrinks the bound.
        assert!(kink.to_lut(64).max_abs_error(&kink) < bound);
    }

    #[test]
    fn from_soc_samples_spans_unit_interval() {
        let c = from_soc_samples(&[3.0, 3.5, 4.2]).unwrap();
        assert_eq!(c.x_min(), 0.0);
        assert_eq!(c.x_max(), 1.0);
        assert_eq!(c.eval(0.5), 3.5);
    }
}
