//! Piecewise-linear curves for battery characteristic maps.
//!
//! The paper's emulator (Section 4.3) parameterizes every cell with two
//! measured curves: open-circuit potential vs state of charge (Figure 8b)
//! and internal resistance vs state of charge (Figure 8c). The RBL policies
//! additionally need the *derivative* of the DCIR curve (`δi` in Section
//! 3.3), so [`Curve`] exposes both interpolation and slope queries.

use crate::error::BatteryError;

/// A piecewise-linear curve `y = f(x)` over strictly increasing knots.
///
/// Evaluation outside the knot range clamps to the end values (batteries do
/// not extrapolate: an SoC query below the first characterized point returns
/// the first characterized value).
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Knot points, strictly increasing in x.
    points: Vec<(f64, f64)>,
}

impl Curve {
    /// Builds a curve from `(x, y)` knots.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given, any coordinate is
    /// non-finite, or the x-coordinates are not strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        if points.len() < 2 {
            return Err(BatteryError::CurveTooShort {
                points: points.len(),
            });
        }
        for (i, &(x, y)) in points.iter().enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(BatteryError::CurveNotFinite { index: i });
            }
        }
        for i in 1..points.len() {
            if points[i].0 <= points[i - 1].0 {
                return Err(BatteryError::CurveNotSorted { index: i });
            }
        }
        Ok(Self { points })
    }

    /// Builds a curve and additionally checks that y is non-decreasing.
    ///
    /// Used for OCP-vs-SoC curves, which are physically monotone
    /// (Figure 8b: "open circuit potential increases with state of charge").
    ///
    /// # Errors
    ///
    /// As [`Curve::new`], plus [`BatteryError::CurveNotMonotone`] if any step
    /// decreases in y.
    pub fn new_non_decreasing(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        let c = Self::new(points)?;
        for i in 1..c.points.len() {
            if c.points[i].1 < c.points[i - 1].1 {
                return Err(BatteryError::CurveNotMonotone { index: i });
            }
        }
        Ok(c)
    }

    /// Builds a curve and additionally checks that y is non-increasing.
    ///
    /// Used for DCIR-vs-SoC curves, which decrease with state of charge
    /// (Figure 8c: "internal resistance decreases with the state of charge").
    ///
    /// # Errors
    ///
    /// As [`Curve::new`], plus [`BatteryError::CurveNotMonotone`] if any step
    /// increases in y.
    pub fn new_non_increasing(points: Vec<(f64, f64)>) -> Result<Self, BatteryError> {
        let c = Self::new(points)?;
        for i in 1..c.points.len() {
            if c.points[i].1 > c.points[i - 1].1 {
                return Err(BatteryError::CurveNotMonotone { index: i });
            }
        }
        Ok(c)
    }

    /// Evaluates the curve at `x`, clamping outside the knot range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = match pts
            .binary_search_by(|&(px, _)| px.partial_cmp(&x).expect("knots and query are finite"))
        {
            Ok(i) => return pts[i].1,
            Err(i) => i,
        };
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Returns the slope `dy/dx` of the segment containing `x`.
    ///
    /// Outside the knot range the slope is 0 (consistent with clamped
    /// evaluation). Exactly at an interior knot, the right segment's slope is
    /// returned.
    #[must_use]
    pub fn slope(&self, x: f64) -> f64 {
        let pts = &self.points;
        // Exactly at the last knot, report the left segment's slope (the
        // curve's domain includes its endpoint; clamping only applies
        // beyond it) — e.g. a full cell still has a DCIR slope.
        if x == pts[pts.len() - 1].0 {
            let (x0, y0) = pts[pts.len() - 2];
            let (x1, y1) = pts[pts.len() - 1];
            return (y1 - y0) / (x1 - x0);
        }
        if x < pts[0].0 || x > pts[pts.len() - 1].0 {
            return 0.0;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        // `idx` is the first knot strictly greater than x; the segment is
        // [idx-1, idx]. `x >= pts[0].0` guarantees idx >= 1.
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        (y1 - y0) / (x1 - x0)
    }

    /// Returns a new curve with every y multiplied by `factor`.
    ///
    /// Used, e.g., to derive an aged DCIR curve (resistance grows with age)
    /// or a chemistry variant from a base curve.
    #[must_use]
    pub fn scale_y(&self, factor: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(x, y)| (x, y * factor)).collect(),
        }
    }

    /// Returns a new curve with `offset` added to every y.
    #[must_use]
    pub fn offset_y(&self, offset: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(x, y)| (x, y + offset)).collect(),
        }
    }

    /// The smallest knot x-coordinate.
    #[must_use]
    pub fn x_min(&self) -> f64 {
        self.points[0].0
    }

    /// The largest knot x-coordinate.
    #[must_use]
    pub fn x_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// The minimum y value over all knots.
    #[must_use]
    pub fn y_min(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum y value over all knots.
    #[must_use]
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The knot points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Samples the curve at `n` evenly spaced x positions across its range.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn sample(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least 2 samples");
        let (lo, hi) = (self.x_min(), self.x_max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * (i as f64) / ((n - 1) as f64);
                (x, self.eval(x))
            })
            .collect()
    }

    /// Numerically inverts a monotone curve: finds `x` with `f(x) = y`.
    ///
    /// Returns `None` if `y` is outside the curve's y range or the curve is
    /// not monotone over its knots. Used, e.g., to recover SoC from a rest
    /// OCV measurement in the fuel gauge.
    #[must_use]
    pub fn invert(&self, y: f64) -> Option<f64> {
        let increasing = self.points.windows(2).all(|w| w[1].1 >= w[0].1);
        let decreasing = self.points.windows(2).all(|w| w[1].1 <= w[0].1);
        if !increasing && !decreasing {
            return None;
        }
        let (ylo, yhi) = (self.y_min(), self.y_max());
        if y < ylo || y > yhi {
            return None;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (seg_lo, seg_hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
            if y >= seg_lo && y <= seg_hi {
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(x0);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        None
    }
}

/// Convenience constructor for curves over SoC in `[0, 1]` from evenly
/// spaced y values.
///
/// # Errors
///
/// Propagates [`Curve::new`] validation failures.
///
/// # Panics
///
/// Panics if `ys` has fewer than two entries (cannot span `[0, 1]`).
pub fn from_soc_samples(ys: &[f64]) -> Result<Curve, BatteryError> {
    assert!(ys.len() >= 2, "need at least 2 samples to span [0,1]");
    let n = ys.len();
    Curve::new(
        ys.iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 / (n - 1) as f64, y))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Curve {
        Curve::new(vec![(0.0, 1.0), (1.0, 3.0)]).unwrap()
    }

    #[test]
    fn rejects_short_curve() {
        assert_eq!(
            Curve::new(vec![(0.0, 1.0)]),
            Err(BatteryError::CurveTooShort { points: 1 })
        );
    }

    #[test]
    fn rejects_unsorted() {
        assert_eq!(
            Curve::new(vec![(0.0, 1.0), (0.0, 2.0)]),
            Err(BatteryError::CurveNotSorted { index: 1 })
        );
        assert_eq!(
            Curve::new(vec![(0.5, 1.0), (0.2, 2.0)]),
            Err(BatteryError::CurveNotSorted { index: 1 })
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            Curve::new(vec![(0.0, f64::NAN), (1.0, 2.0)]),
            Err(BatteryError::CurveNotFinite { index: 0 })
        );
    }

    #[test]
    fn monotone_validators() {
        assert!(Curve::new_non_decreasing(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 5.0)]).is_ok());
        assert_eq!(
            Curve::new_non_decreasing(vec![(0.0, 2.0), (1.0, 1.0)]),
            Err(BatteryError::CurveNotMonotone { index: 1 })
        );
        assert!(Curve::new_non_increasing(vec![(0.0, 5.0), (1.0, 1.0)]).is_ok());
        assert_eq!(
            Curve::new_non_increasing(vec![(0.0, 1.0), (1.0, 2.0)]),
            Err(BatteryError::CurveNotMonotone { index: 1 })
        );
    }

    #[test]
    fn interpolates_linearly() {
        let c = line();
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(0.5), 2.0);
        assert_eq!(c.eval(1.0), 3.0);
    }

    #[test]
    fn clamps_outside_range() {
        let c = line();
        assert_eq!(c.eval(-1.0), 1.0);
        assert_eq!(c.eval(2.0), 3.0);
    }

    #[test]
    fn eval_hits_knot_exactly() {
        let c = Curve::new(vec![(0.0, 1.0), (0.5, 10.0), (1.0, 3.0)]).unwrap();
        assert_eq!(c.eval(0.5), 10.0);
    }

    #[test]
    fn slope_per_segment() {
        let c = Curve::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]).unwrap();
        assert_eq!(c.slope(0.5), 2.0);
        assert_eq!(c.slope(1.5), 0.0);
        // At interior knot: right segment.
        assert_eq!(c.slope(1.0), 0.0);
        // Outside: zero.
        assert_eq!(c.slope(-1.0), 0.0);
        assert_eq!(c.slope(3.0), 0.0);
    }

    #[test]
    fn scale_and_offset() {
        let c = line().scale_y(2.0).offset_y(1.0);
        assert_eq!(c.eval(0.0), 3.0);
        assert_eq!(c.eval(1.0), 7.0);
    }

    #[test]
    fn range_queries() {
        let c = Curve::new(vec![(0.0, 5.0), (1.0, 2.0), (2.0, 8.0)]).unwrap();
        assert_eq!(c.x_min(), 0.0);
        assert_eq!(c.x_max(), 2.0);
        assert_eq!(c.y_min(), 2.0);
        assert_eq!(c.y_max(), 8.0);
    }

    #[test]
    fn sample_covers_range() {
        let s = line().sample(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 1.0));
        assert_eq!(s[4], (1.0, 3.0));
    }

    #[test]
    fn invert_increasing() {
        let c = line();
        let x = c.invert(2.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
        assert!(c.invert(0.5).is_none());
        assert!(c.invert(3.5).is_none());
    }

    #[test]
    fn invert_decreasing() {
        let c = Curve::new(vec![(0.0, 10.0), (1.0, 0.0)]).unwrap();
        let x = c.invert(5.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invert_non_monotone_is_none() {
        let c = Curve::new(vec![(0.0, 0.0), (1.0, 5.0), (2.0, 1.0)]).unwrap();
        assert!(c.invert(2.0).is_none());
    }

    #[test]
    fn invert_flat_segment() {
        let c = Curve::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        // Flat segment: returns the segment start.
        assert_eq!(c.invert(1.0), Some(0.0));
    }

    #[test]
    fn from_soc_samples_spans_unit_interval() {
        let c = from_soc_samples(&[3.0, 3.5, 4.2]).unwrap();
        assert_eq!(c.x_min(), 0.0);
        assert_eq!(c.x_max(), 1.0);
        assert_eq!(c.eval(0.5), 3.5);
    }
}
