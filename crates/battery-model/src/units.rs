//! Light-weight typed physical quantities.
//!
//! The simulation core works in `f64` with unit-suffixed names (fast, and
//! idiomatic for numerical kernels), but public entry points benefit from
//! type-checked construction: a `Watts(5.0)` cannot be passed where
//! `Amps` are expected, and conversions are explicit. These are thin
//! `#[repr(transparent)]` wrappers with only the physically meaningful
//! arithmetic implemented.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[repr(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The raw value.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Whether the value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

quantity!(
    /// Electric potential, volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current, amps (positive = discharge by crate convention).
    Amps,
    "A"
);
quantity!(
    /// Resistance, ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Power, watts.
    Watts,
    "W"
);
quantity!(
    /// Energy, joules.
    Joules,
    "J"
);
quantity!(
    /// Energy, watt-hours.
    WattHours,
    "Wh"
);
quantity!(
    /// Charge, amp-hours.
    AmpHours,
    "Ah"
);
quantity!(
    /// Time, seconds.
    Seconds,
    "s"
);

// Cross-quantity physics.

impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Amps {
    type Output = AmpHours;
    fn mul(self, rhs: Seconds) -> AmpHours {
        AmpHours(self.0 * rhs.0 / 3600.0)
    }
}

impl Joules {
    /// Converts to watt-hours.
    #[must_use]
    pub fn to_watt_hours(self) -> WattHours {
        WattHours(self.0 / 3600.0)
    }
}

impl WattHours {
    /// Converts to joules.
    #[must_use]
    pub fn to_joules(self) -> Joules {
        Joules(self.0 * 3600.0)
    }

    /// Charge content at a nominal voltage.
    #[must_use]
    pub fn at_voltage(self, v: Volts) -> AmpHours {
        AmpHours(self.0 / v.0)
    }
}

impl AmpHours {
    /// Energy content at a nominal voltage.
    #[must_use]
    pub fn at_voltage(self, v: Volts) -> WattHours {
        WattHours(self.0 * v.0)
    }

    /// The C-rate a current represents for this capacity.
    #[must_use]
    pub fn c_rate(self, i: Amps) -> f64 {
        i.0.abs() / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law() {
        let v = Amps(2.0) * Ohms(0.05);
        assert_eq!(v, Volts(0.1));
        assert_eq!(Volts(3.7) / Ohms(0.1), Amps(37.0));
        assert_eq!(Volts(4.0) / Amps(2.0), Ohms(2.0));
    }

    #[test]
    fn power_and_energy() {
        assert_eq!(Volts(3.7) * Amps(2.0), Watts(7.4));
        assert_eq!(Amps(2.0) * Volts(3.7), Watts(7.4));
        assert_eq!(Watts(10.0) / Volts(5.0), Amps(2.0));
        assert_eq!(Watts(10.0) * Seconds(360.0), Joules(3600.0));
        assert_eq!(Joules(3600.0).to_watt_hours(), WattHours(1.0));
        assert_eq!(WattHours(1.0).to_joules(), Joules(3600.0));
    }

    #[test]
    fn charge_conversions() {
        assert_eq!(Amps(1.0) * Seconds(3600.0), AmpHours(1.0));
        assert_eq!(AmpHours(2.0).at_voltage(Volts(3.8)), WattHours(7.6));
        assert_eq!(WattHours(7.6).at_voltage(Volts(3.8)), AmpHours(2.0));
        assert!((AmpHours(2.0).c_rate(Amps(-1.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scalar_arithmetic_and_ratio() {
        let p = Watts(5.0) * 2.0 / 4.0;
        assert_eq!(p, Watts(2.5));
        assert_eq!(Watts(6.0) / Watts(3.0), 2.0);
        assert_eq!(-Amps(1.5), Amps(-1.5));
        assert_eq!(Amps(-1.5).abs(), Amps(1.5));
        assert_eq!(Watts(1.0) + Watts(2.0) - Watts(0.5), Watts(2.5));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Volts(3.7).to_string(), "3.7 V");
        assert_eq!(Ohms(0.05).to_string(), "0.05 Ω");
        assert_eq!(WattHours(1.5).to_string(), "1.5 Wh");
    }

    #[test]
    fn ordering_and_default() {
        assert!(Watts(2.0) > Watts(1.0));
        assert_eq!(Watts::default(), Watts(0.0));
        assert!(!Volts(f64::NAN).is_finite());
    }
}
