//! Cycle counting and capacity fade.
//!
//! Section 5.1 of the paper defines the bookkeeping we reproduce here:
//!
//! > "The cycle count increases each time the battery is charged to more
//! > than 80% (cumulative) of current energy capacity. For example, if a
//! > user charges the battery to 50% and drains it to 0%, the cumulative
//! > charge counter is set to 50. Later when the user charges the battery
//! > again beyond 30%, the cumulative charge counter is increased to 80,
//! > the cycle count is incremented and the cumulative charge counter is
//! > set to zero until the next time the device is charged."
//!
//! Capacity fade follows the crack-growth story of Section 1/2: higher
//! charge and discharge currents accelerate fissure formation in the
//! electrodes, so the per-cycle capacity loss grows with the square of the
//! C-rate (resistive/crack stress ∝ I²). The law is calibrated so a cell
//! cycled at 1C reaches its warranty threshold (80 % of original capacity)
//! at exactly its chemistry's tolerable cycle count, matching the spread of
//! Figure 1(b) for a 1 Ah Type 2 sample charged at 0.5/0.7/1.0 A.

use crate::spec::BatterySpec;

/// Fraction of current capacity that must be (cumulatively) recharged to
/// count one cycle.
pub const CYCLE_CHARGE_THRESHOLD: f64 = 0.80;

/// Warranty capacity threshold: the fade model is calibrated so 1C cycling
/// reaches this fraction at the chemistry's tolerable cycle count.
pub const WARRANTY_CAPACITY_FRACTION: f64 = 0.80;

/// Tracks cumulative recharged charge and emits cycle increments per the
/// paper's 80 %-cumulative rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleCounter {
    /// Completed charge cycles.
    cycles: u32,
    /// Cumulative recharged fraction of current capacity since the last
    /// cycle increment, in `[0, CYCLE_CHARGE_THRESHOLD)`.
    cumulative_frac: f64,
}

impl CycleCounter {
    /// Creates a fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `charged_frac` (charge added as a fraction of *current*
    /// capacity, must be ≥ 0) and returns how many cycle increments this
    /// charge completed.
    ///
    /// The paper resets the counter to zero on increment; we carry the
    /// remainder past the threshold so that, e.g., a single 0→100 % charge
    /// credits 1 cycle plus 20 points toward the next instead of discarding
    /// them. This only makes cycle counts (and thus fade) slightly more
    /// conservative.
    pub fn on_charge(&mut self, charged_frac: f64) -> u32 {
        debug_assert!(charged_frac >= 0.0 && charged_frac.is_finite());
        self.cumulative_frac += charged_frac.max(0.0);
        let mut completed = 0;
        // Tolerate float rounding so, e.g., 3 × 0.8 of charge counts 3 cycles.
        while self.cumulative_frac >= CYCLE_CHARGE_THRESHOLD - 1e-12 {
            self.cumulative_frac -= CYCLE_CHARGE_THRESHOLD;
            self.cycles += 1;
            completed += 1;
        }
        completed
    }

    /// Completed cycles so far.
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Progress toward the next cycle as a fraction of the threshold.
    #[must_use]
    pub fn progress(&self) -> f64 {
        self.cumulative_frac / CYCLE_CHARGE_THRESHOLD
    }

    /// Raw counter state for snapshotting: `(cycles, cumulative_frac)`.
    #[must_use]
    pub fn export_state(&self) -> (u32, f64) {
        (self.cycles, self.cumulative_frac)
    }

    /// Restores counter state captured by [`CycleCounter::export_state`].
    pub fn import_state(&mut self, cycles: u32, cumulative_frac: f64) {
        self.cycles = cycles;
        self.cumulative_frac = cumulative_frac;
    }
}

/// Per-cycle capacity-fade law: `loss(c) = base · (floor + (1−floor)·c^exp)`.
///
/// `base` is the per-cycle loss at 1C; `floor` is the C-rate-independent
/// (calendar/SEI) share; `exp` is the crack-growth exponent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadeModel {
    /// Per-cycle capacity loss fraction at the 1C reference rate.
    pub base_loss_per_cycle: f64,
    /// Fraction of the loss that is rate-independent.
    pub rate_independent_floor: f64,
    /// Exponent on the C-rate for the rate-dependent share.
    pub crate_exponent: f64,
}

impl FadeModel {
    /// Derives the fade model from a cell spec: calibrated so 1C cycling
    /// reaches [`WARRANTY_CAPACITY_FRACTION`] at `spec.tolerable_cycles`.
    #[must_use]
    pub fn for_spec(spec: &BatterySpec) -> Self {
        Self {
            base_loss_per_cycle: (1.0 - WARRANTY_CAPACITY_FRACTION)
                / f64::from(spec.tolerable_cycles),
            rate_independent_floor: 0.20,
            crate_exponent: spec.fade_crate_exponent.clamp(1.0, 3.0),
        }
    }

    /// Capacity fraction lost by one cycle performed at mean C-rate `c`.
    #[must_use]
    pub fn loss_per_cycle(&self, c_rate: f64) -> f64 {
        let c = c_rate.max(0.0);
        let floor = self.rate_independent_floor;
        self.base_loss_per_cycle * (floor + (1.0 - floor) * c.powf(self.crate_exponent))
    }

    /// Capacity fraction remaining after `cycles` cycles at constant mean
    /// C-rate `c`, floored at 10 % (cells do not fade to zero; they are
    /// retired long before).
    #[must_use]
    pub fn capacity_after(&self, cycles: u32, c_rate: f64) -> f64 {
        (1.0 - f64::from(cycles) * self.loss_per_cycle(c_rate)).max(0.10)
    }
}

/// Combined aging state for one cell: cycle counter, capacity fraction, and
/// the DCIR growth that accompanies fade.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingState {
    counter: CycleCounter,
    fade: FadeModel,
    /// Remaining capacity as a fraction of original (1.0 = new).
    capacity_fraction: f64,
    /// Charge-weighted mean C-rate since the last cycle increment.
    crate_accum: f64,
    /// Charge (fraction of capacity) accumulated into `crate_accum`.
    crate_weight: f64,
    /// Cached [`AgingState::resistance_multiplier`]: queried on every
    /// resistance lookup in the hot loop but only changes when
    /// `capacity_fraction` does (at cycle completions).
    res_mult: f64,
}

/// DCIR growth for a given remaining-capacity fraction: resistance rises
/// ~60 % by the time the cell reaches its 80 % warranty capacity.
fn resistance_multiplier_for(capacity_fraction: f64) -> f64 {
    let lost = 1.0 - capacity_fraction;
    1.0 + 0.6 * (lost / (1.0 - WARRANTY_CAPACITY_FRACTION))
}

impl AgingState {
    /// Fresh aging state for a cell spec.
    #[must_use]
    pub fn new(spec: &BatterySpec) -> Self {
        Self {
            counter: CycleCounter::new(),
            fade: FadeModel::for_spec(spec),
            capacity_fraction: 1.0,
            crate_accum: 0.0,
            crate_weight: 0.0,
            res_mult: resistance_multiplier_for(1.0),
        }
    }

    /// Records one simulation step.
    ///
    /// `current_a` follows the crate convention (positive discharges);
    /// `capacity_ah` is the cell's *original* rated capacity. Returns the
    /// number of cycles completed by this step.
    pub fn step(&mut self, current_a: f64, dt_s: f64, capacity_ah: f64) -> u32 {
        debug_assert!(dt_s >= 0.0 && capacity_ah > 0.0);
        let c_rate = current_a.abs() / capacity_ah;
        let moved_frac = current_a.abs() * dt_s / 3600.0 / (capacity_ah * self.capacity_fraction);
        // Both charge and discharge stress the electrodes; weight the mean
        // C-rate by charge moved in either direction.
        if moved_frac > 0.0 {
            self.crate_accum += c_rate * moved_frac;
            self.crate_weight += moved_frac;
        }
        if current_a < 0.0 {
            let completed = self.counter.on_charge(moved_frac);
            for _ in 0..completed {
                let mean_c = if self.crate_weight > 0.0 {
                    self.crate_accum / self.crate_weight
                } else {
                    c_rate
                };
                self.capacity_fraction =
                    (self.capacity_fraction - self.fade.loss_per_cycle(mean_c)).max(0.10);
                self.res_mult = resistance_multiplier_for(self.capacity_fraction);
                self.crate_accum = 0.0;
                self.crate_weight = 0.0;
            }
            completed
        } else {
            0
        }
    }

    /// Completed charge cycles.
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.counter.cycles()
    }

    /// Remaining capacity as a fraction of original.
    #[must_use]
    pub fn capacity_fraction(&self) -> f64 {
        self.capacity_fraction
    }

    /// DCIR growth multiplier: resistance rises ~60 % by the time the cell
    /// reaches its 80 % warranty capacity ("the resistance of the separator
    /// typically increases with the age of the battery", Section 2.1).
    #[must_use]
    pub fn resistance_multiplier(&self) -> f64 {
        self.res_mult
    }

    /// Wear ratio `λ = cc / χ` from Section 3.3, given the tolerable cycle
    /// count `χ`.
    #[must_use]
    pub fn wear_ratio(&self, tolerable_cycles: u32) -> f64 {
        f64::from(self.counter.cycles()) / f64::from(tolerable_cycles.max(1))
    }

    /// Progress toward the next cycle increment, `[0, 1)`.
    #[must_use]
    pub fn cycle_progress(&self) -> f64 {
        self.counter.progress()
    }

    /// Exports the full mutable aging state for bit-exact snapshotting.
    /// The fade model is spec-derived configuration and is not included.
    #[must_use]
    pub fn export_state(&self) -> AgingStateSnapshot {
        let (cycles, cumulative_frac) = self.counter.export_state();
        AgingStateSnapshot {
            cycles,
            cumulative_frac,
            capacity_fraction: self.capacity_fraction,
            crate_accum: self.crate_accum,
            crate_weight: self.crate_weight,
        }
    }

    /// Restores state captured by [`AgingState::export_state`]. The cached
    /// resistance multiplier is recomputed from the restored capacity
    /// fraction — a pure function of it, so this is bit-identical to the
    /// value cached at export time.
    pub fn import_state(&mut self, snap: &AgingStateSnapshot) {
        self.counter.import_state(snap.cycles, snap.cumulative_frac);
        self.capacity_fraction = snap.capacity_fraction;
        self.crate_accum = snap.crate_accum;
        self.crate_weight = snap.crate_weight;
        self.res_mult = resistance_multiplier_for(snap.capacity_fraction);
    }
}

/// Plain-data capture of one cell's mutable aging state (see
/// [`AgingState::export_state`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingStateSnapshot {
    /// Completed charge cycles.
    pub cycles: u32,
    /// Cumulative recharged fraction toward the next cycle.
    pub cumulative_frac: f64,
    /// Remaining capacity as a fraction of original.
    pub capacity_fraction: f64,
    /// Charge-weighted C-rate accumulator since the last cycle.
    pub crate_accum: f64,
    /// Charge weight accumulated into `crate_accum`.
    pub crate_weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn spec() -> BatterySpec {
        BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 1.0)
    }

    #[test]
    fn paper_example_cycle_counting() {
        // Charge to 50 %, drain to 0, charge beyond 30 %: one cycle.
        let mut cc = CycleCounter::new();
        assert_eq!(cc.on_charge(0.50), 0);
        assert_eq!(cc.on_charge(0.30), 1);
        assert_eq!(cc.cycles(), 1);
        assert!(cc.progress() < 1e-12);
    }

    #[test]
    fn full_charge_counts_one_cycle_with_carry() {
        let mut cc = CycleCounter::new();
        assert_eq!(cc.on_charge(1.0), 1);
        // 0.2 of remainder carried: 0.2/0.8 progress.
        assert!((cc.progress() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn big_charge_counts_multiple_cycles() {
        let mut cc = CycleCounter::new();
        assert_eq!(cc.on_charge(2.4), 3);
        assert_eq!(cc.cycles(), 3);
    }

    #[test]
    fn discharge_never_counts() {
        let spec = spec();
        let mut aging = AgingState::new(&spec);
        // Pure discharge for 10 hours at 1C.
        for _ in 0..36000 {
            assert_eq!(aging.step(1.0, 1.0, 1.0), 0);
        }
        assert_eq!(aging.cycles(), 0);
        assert!((aging.capacity_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_cc_cycle_via_steps() {
        let spec = spec();
        let mut aging = AgingState::new(&spec);
        // Charge 0.9 Ah at 0.5 A into the 1 Ah cell: 0.9 fraction → 1 cycle.
        let mut cycles = 0;
        for _ in 0..6480 {
            cycles += aging.step(-0.5, 1.0, 1.0);
        }
        assert_eq!(cycles, 1);
        assert_eq!(aging.cycles(), 1);
        assert!(aging.capacity_fraction() < 1.0);
    }

    #[test]
    fn fade_calibrated_at_1c() {
        let spec = spec();
        let fade = FadeModel::for_spec(&spec);
        // At 1C, χ cycles bring the cell to exactly the warranty threshold.
        let after = fade.capacity_after(spec.tolerable_cycles, 1.0);
        assert!((after - WARRANTY_CAPACITY_FRACTION).abs() < 1e-9);
    }

    #[test]
    fn figure_1b_ordering_and_magnitudes() {
        // 1 Ah Type 2 sample charged at 0.5/0.7/1.0 A for 600 cycles.
        let spec = spec();
        let fade = FadeModel::for_spec(&spec);
        let c05 = fade.capacity_after(600, 0.5);
        let c07 = fade.capacity_after(600, 0.7);
        let c10 = fade.capacity_after(600, 1.0);
        assert!(c05 > c07 && c07 > c10, "higher current degrades faster");
        // Figure 1b shapes: ~95 %, ~90 %, ~low-80s %.
        assert!(c05 > 0.92 && c05 < 0.99, "c05 = {c05}");
        assert!(c07 > 0.88 && c07 < 0.94, "c07 = {c07}");
        assert!(c10 > 0.80 && c10 < 0.88, "c10 = {c10}");
    }

    #[test]
    fn gentle_cycling_lasts_longer_than_tolerable_cycles() {
        let spec = spec();
        let fade = FadeModel::for_spec(&spec);
        // At 0.2C the cell retains far more than warranty at χ cycles.
        assert!(fade.capacity_after(spec.tolerable_cycles, 0.2) > 0.90);
    }

    #[test]
    fn capacity_floor() {
        let spec = spec();
        let fade = FadeModel::for_spec(&spec);
        assert!((fade.capacity_after(u32::MAX, 5.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn resistance_grows_with_age() {
        let spec = spec();
        let mut aging = AgingState::new(&spec);
        let r0 = aging.resistance_multiplier();
        assert!((r0 - 1.0).abs() < 1e-12);
        // Cycle hard for a while.
        for _ in 0..200 {
            for _ in 0..3600 {
                aging.step(1.0, 1.0, 1.0);
            }
            for _ in 0..3600 {
                aging.step(-1.0, 1.0, 1.0);
            }
        }
        assert!(aging.cycles() > 100);
        assert!(aging.resistance_multiplier() > 1.05);
        assert!(aging.capacity_fraction() < 0.97);
    }

    #[test]
    fn wear_ratio_definition() {
        let spec = spec();
        let mut aging = AgingState::new(&spec);
        for _ in 0..8 {
            aging.step(-0.8 * 3600.0 / 3600.0, 3600.0, 1.0);
        }
        // 8 × 0.8 fraction charged = 6.4 → 8 cycles.
        assert_eq!(aging.cycles(), 8);
        assert!((aging.wear_ratio(800) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn fast_charge_chemistry_ages_slower_per_cycle_at_high_c() {
        let lfp = BatterySpec::from_chemistry("lfp", Chemistry::Type1LfpPower, 1.0);
        let co = spec();
        let f_lfp = FadeModel::for_spec(&lfp);
        let f_co = FadeModel::for_spec(&co);
        // LFP tolerates many more cycles, so its per-cycle loss is smaller.
        assert!(f_lfp.loss_per_cycle(2.0) < f_co.loss_per_cycle(2.0));
    }
}
