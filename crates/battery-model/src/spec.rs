//! Full parameterization of a single battery cell.
//!
//! A [`BatterySpec`] carries everything the paper's emulator (Section 4.3)
//! learns from the cycler hardware for one cell: the OCP-vs-SoC curve, the
//! DCIR-vs-SoC curve, the concentration resistance, and the plate
//! capacitance — plus ratings (capacity, current limits), physical size, and
//! aging parameters.

use crate::chemistry::Chemistry;
use crate::curves::Curve;
use crate::error::BatteryError;

/// Static description of one battery cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySpec {
    /// Human-readable name (e.g. "Library #7 (Type 2)").
    pub name: String,
    /// Chemistry class.
    pub chemistry: Chemistry,
    /// Rated capacity in amp-hours.
    pub capacity_ah: f64,
    /// Open-circuit potential vs SoC (volts).
    pub ocp: Curve,
    /// DC internal (ohmic) resistance vs SoC for *this* cell (ohms),
    /// already scaled for its capacity.
    pub dcir: Curve,
    /// Concentration (RC-branch) resistance in ohms — fixed per cell.
    pub concentration_r_ohm: f64,
    /// Plate (RC-branch) capacitance in farads — fixed per cell.
    pub plate_c_f: f64,
    /// Maximum continuous discharge current in amps.
    pub max_discharge_a: f64,
    /// Maximum charge current in amps.
    pub max_charge_a: f64,
    /// Tolerable charge cycles `χ` before the cell falls below its warranty
    /// capacity threshold (Section 3.3).
    pub tolerable_cycles: u32,
    /// Cell volume in liters (for energy-density accounting, Figure 11a).
    pub volume_l: f64,
    /// Cell mass in kilograms.
    pub mass_kg: f64,
    /// Per-cycle capacity-fade coefficient at the reference 0.3C rate
    /// (fraction of original capacity lost per equivalent full cycle).
    pub fade_per_cycle: f64,
    /// Exponent controlling how fade accelerates with C-rate.
    pub fade_crate_exponent: f64,
}

impl BatterySpec {
    /// Builds a spec for a cell of `chemistry` with the given capacity,
    /// deriving curves, limits, size, and aging parameters from the
    /// chemistry's constants.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_ah` is not a positive finite number; use
    /// [`BatterySpec::validate`] for fallible checking of hand-built specs.
    #[must_use]
    pub fn from_chemistry(name: &str, chemistry: Chemistry, capacity_ah: f64) -> Self {
        assert!(
            capacity_ah.is_finite() && capacity_ah > 0.0,
            "capacity must be positive, got {capacity_ah}"
        );
        // Resistance scales inversely with capacity (more parallel plate
        // area), so a 1 Ah-normalized curve divides by capacity.
        let dcir = chemistry.dcir_curve_1ah().scale_y(1.0 / capacity_ah);
        let energy_wh = capacity_ah * chemistry.nominal_voltage_v();
        let volume_l = energy_wh / chemistry.energy_density_wh_per_l();
        // Gravimetric density roughly 2.3x the volumetric number in Wh/kg
        // terms for pouch cells; good enough for mass bookkeeping.
        let mass_kg = energy_wh / (chemistry.energy_density_wh_per_l() * 0.45);
        // Reference fade: cell reaches ~80 % capacity at `tolerable_cycles`
        // when cycled gently at 0.3C.
        let fade_per_cycle = 0.20 / f64::from(chemistry.tolerable_cycles());
        Self {
            name: name.to_owned(),
            chemistry,
            capacity_ah,
            ocp: chemistry.ocp_curve(),
            dcir,
            concentration_r_ohm: chemistry.base_resistance_ohm_ah() * 0.35 / capacity_ah,
            plate_c_f: 900.0 * capacity_ah,
            max_discharge_a: chemistry.max_discharge_c() * capacity_ah,
            max_charge_a: chemistry.max_charge_c() * capacity_ah,
            tolerable_cycles: chemistry.tolerable_cycles(),
            volume_l,
            mass_kg,
            fade_per_cycle,
            fade_crate_exponent: chemistry.crate_aging_sensitivity(),
        }
    }

    /// Checks that every numeric field is physically sensible.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] naming the first bad field.
    pub fn validate(&self) -> Result<(), BatteryError> {
        let positive: [(&'static str, f64); 8] = [
            ("capacity_ah", self.capacity_ah),
            ("concentration_r_ohm", self.concentration_r_ohm),
            ("plate_c_f", self.plate_c_f),
            ("max_discharge_a", self.max_discharge_a),
            ("max_charge_a", self.max_charge_a),
            ("volume_l", self.volume_l),
            ("mass_kg", self.mass_kg),
            ("fade_crate_exponent", self.fade_crate_exponent),
        ];
        for (field, value) in positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(BatteryError::InvalidSpec { field, value });
            }
        }
        if !self.fade_per_cycle.is_finite() || self.fade_per_cycle < 0.0 {
            return Err(BatteryError::InvalidSpec {
                field: "fade_per_cycle",
                value: self.fade_per_cycle,
            });
        }
        if self.tolerable_cycles == 0 {
            return Err(BatteryError::InvalidSpec {
                field: "tolerable_cycles",
                value: 0.0,
            });
        }
        if self.ocp.y_min() <= 0.0 {
            return Err(BatteryError::InvalidSpec {
                field: "ocp",
                value: self.ocp.y_min(),
            });
        }
        if self.dcir.y_min() <= 0.0 {
            return Err(BatteryError::InvalidSpec {
                field: "dcir",
                value: self.dcir.y_min(),
            });
        }
        Ok(())
    }

    /// Rated energy content in watt-hours at nominal voltage.
    #[must_use]
    pub fn energy_wh(&self) -> f64 {
        self.capacity_ah * self.chemistry.nominal_voltage_v()
    }

    /// Rated charge content in coulombs.
    #[must_use]
    pub fn capacity_c(&self) -> f64 {
        self.capacity_ah * 3600.0
    }

    /// Converts a current in amps to a C-rate for this cell.
    #[must_use]
    pub fn c_rate(&self, current_a: f64) -> f64 {
        current_a.abs() / self.capacity_ah
    }

    /// Maximum instantaneous discharge power in watts at the given SoC:
    /// the vertex of `P(I) = I·(OCV − I·R)` capped by the current limit.
    #[must_use]
    pub fn max_power_w(&self, soc: f64) -> f64 {
        let ocv = self.ocp.eval(soc);
        let r = self.dcir.eval(soc);
        let i_peak = (ocv / (2.0 * r)).min(self.max_discharge_a);
        i_peak * (ocv - i_peak * r)
    }

    /// Returns a copy with a different name (for building cell libraries).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Returns a copy with DCIR scaled by `factor` (unit-to-unit variation
    /// or age).
    #[must_use]
    pub fn with_dcir_scaled(mut self, factor: f64) -> Self {
        self.dcir = self.dcir.scale_y(factor);
        self.concentration_r_ohm *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chemistry_is_valid() {
        for chem in Chemistry::ALL {
            let spec = BatterySpec::from_chemistry("t", chem, 2.0);
            spec.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 0.0);
    }

    #[test]
    fn validate_catches_bad_field() {
        let mut spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        spec.mass_kg = -1.0;
        assert_eq!(
            spec.validate(),
            Err(BatteryError::InvalidSpec {
                field: "mass_kg",
                value: -1.0
            })
        );
    }

    #[test]
    fn resistance_scales_inversely_with_capacity() {
        let small = BatterySpec::from_chemistry("s", Chemistry::Type2CoStandard, 1.0);
        let big = BatterySpec::from_chemistry("b", Chemistry::Type2CoStandard, 4.0);
        let r_small = small.dcir.eval(0.5);
        let r_big = big.dcir.eval(0.5);
        assert!((r_small / r_big - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_and_charge_content() {
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        assert!((spec.energy_wh() - 2.0 * 3.8).abs() < 1e-12);
        assert!((spec.capacity_c() - 7200.0).abs() < 1e-12);
        assert!((spec.c_rate(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_power_higher_at_high_soc() {
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        assert!(spec.max_power_w(0.9) > spec.max_power_w(0.1));
        assert!(spec.max_power_w(0.5) > 0.0);
    }

    #[test]
    fn power_cell_outpowers_energy_cell() {
        let p = BatterySpec::from_chemistry("p", Chemistry::Type3CoPower, 2.0);
        let e = BatterySpec::from_chemistry("e", Chemistry::Type2CoStandard, 2.0);
        assert!(p.max_power_w(0.5) > e.max_power_w(0.5));
    }

    #[test]
    fn dcir_scaling_helper() {
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        let aged = spec.clone().with_dcir_scaled(1.5);
        assert!((aged.dcir.eval(0.5) / spec.dcir.eval(0.5) - 1.5).abs() < 1e-9);
        assert!((aged.concentration_r_ohm / spec.concentration_r_ohm - 1.5).abs() < 1e-9);
    }

    #[test]
    fn volume_tracks_energy_density() {
        // Same capacity: the lower-density chemistry needs more volume.
        let t2 = BatterySpec::from_chemistry("t2", Chemistry::Type2CoStandard, 2.0);
        let t1 = BatterySpec::from_chemistry("t1", Chemistry::Type1LfpPower, 2.0);
        let t2_density = t2.energy_wh() / t2.volume_l;
        let t1_density = t1.energy_wh() / t1.volume_l;
        assert!(t2_density > t1_density);
    }
}
