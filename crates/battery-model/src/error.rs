//! Error types for the battery-model crate.

use std::fmt;

/// Errors raised by battery model construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryError {
    /// A curve was constructed from fewer than two points.
    CurveTooShort {
        /// Number of points supplied.
        points: usize,
    },
    /// A curve's x-coordinates were not strictly increasing.
    CurveNotSorted {
        /// Index of the first offending point.
        index: usize,
    },
    /// A curve contained a non-finite coordinate.
    CurveNotFinite {
        /// Index of the offending point.
        index: usize,
    },
    /// A curve expected to be monotone in y was not.
    CurveNotMonotone {
        /// Index of the first non-monotone step.
        index: usize,
    },
    /// A spec parameter was outside its physical range.
    InvalidSpec {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A simulation step received a non-finite or negative duration.
    InvalidTimeStep {
        /// The rejected duration in seconds.
        dt_s: f64,
    },
    /// A simulation step received a non-finite current or power.
    InvalidLoad {
        /// The rejected value.
        value: f64,
    },
    /// The requested power cannot be supplied: the discharge power exceeds
    /// the maximum the cell can deliver at its present state (the quadratic
    /// `P = I·(OCV − I·R)` has no real solution).
    PowerInfeasible {
        /// Power requested in watts.
        requested_w: f64,
        /// Maximum deliverable power in watts at the present state.
        max_w: f64,
    },
    /// The cell is empty (SoC reached 0) and cannot supply further charge.
    Empty,
    /// The cell is full (SoC reached 1) and cannot accept further charge.
    Full,
    /// Current exceeds the cell's rated maximum.
    CurrentLimit {
        /// Requested current magnitude in amps.
        requested_a: f64,
        /// Rated limit in amps.
        limit_a: f64,
    },
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CurveTooShort { points } => {
                write!(f, "curve needs at least 2 points, got {points}")
            }
            Self::CurveNotSorted { index } => {
                write!(
                    f,
                    "curve x-coordinates not strictly increasing at index {index}"
                )
            }
            Self::CurveNotFinite { index } => {
                write!(f, "curve contains non-finite coordinate at index {index}")
            }
            Self::CurveNotMonotone { index } => {
                write!(f, "curve not monotone in y at index {index}")
            }
            Self::InvalidSpec { field, value } => {
                write!(f, "invalid battery spec: {field} = {value}")
            }
            Self::InvalidTimeStep { dt_s } => write!(f, "invalid time step: {dt_s} s"),
            Self::InvalidLoad { value } => write!(f, "invalid load value: {value}"),
            Self::PowerInfeasible { requested_w, max_w } => write!(
                f,
                "requested {requested_w} W exceeds deliverable maximum {max_w} W"
            ),
            Self::Empty => write!(f, "cell is empty"),
            Self::Full => write!(f, "cell is full"),
            Self::CurrentLimit {
                requested_a,
                limit_a,
            } => {
                write!(f, "current {requested_a} A exceeds rated limit {limit_a} A")
            }
        }
    }
}

impl std::error::Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BatteryError::PowerInfeasible {
            requested_w: 20.0,
            max_w: 11.5,
        };
        let s = e.to_string();
        assert!(s.contains("20"));
        assert!(s.contains("11.5"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(BatteryError::Empty, BatteryError::Empty);
        assert_ne!(BatteryError::Empty, BatteryError::Full);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BatteryError::Full);
        assert_eq!(e.to_string(), "cell is full");
    }
}
