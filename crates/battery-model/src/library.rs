//! The modeled battery library.
//!
//! The paper characterizes 15 state-of-the-art mobile-device batteries on
//! cycler hardware (Figure 9): "two of Type 4, two of Type 3, eight of
//! Type 2 and 3 more of other types". This module reconstructs that library
//! synthetically (with deterministic unit-to-unit variation) and provides
//! the specific cells used by the Section 5 scenarios.

use crate::chemistry::Chemistry;
use crate::spec::BatterySpec;
use crate::thevenin::TheveninCell;

/// Deterministic unit-to-unit variation factors (±6 % resistance spread),
/// derived from the unit index so the library is reproducible.
fn unit_variation(index: usize) -> f64 {
    // A fixed low-discrepancy sequence in [0.94, 1.06].
    let frac = ((index as f64) * 0.618_033_988_749_895) % 1.0;
    0.94 + 0.12 * frac
}

/// Builds the paper's 15-battery library: 8× Type 2, 2× Type 3, 2× Type 4,
/// and 3 "other" cells (2× NMC, 1× LTO), each with deterministic
/// unit-to-unit resistance variation.
#[must_use]
pub fn paper_library() -> Vec<BatterySpec> {
    let mut specs = Vec::with_capacity(15);
    let mut idx = 0usize;
    let mut push = |specs: &mut Vec<BatterySpec>, chem: Chemistry, cap: f64, label: &str| {
        let name = format!("Library #{:02} ({label})", idx + 1);
        let spec =
            BatterySpec::from_chemistry(&name, chem, cap).with_dcir_scaled(unit_variation(idx));
        specs.push(spec);
        idx += 1;
    };
    // Eight Type 2 cells across phone/tablet capacities.
    for &cap in &[1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0] {
        push(&mut specs, Chemistry::Type2CoStandard, cap, "Type 2");
    }
    // Two Type 3 fast-charging cells.
    for &cap in &[2.0, 4.0] {
        push(&mut specs, Chemistry::Type3CoPower, cap, "Type 3");
    }
    // Two Type 4 bendable cells.
    for &cap in &[0.2, 0.5] {
        push(&mut specs, Chemistry::Type4Bendable, cap, "Type 4");
    }
    // Three other cells.
    push(&mut specs, Chemistry::OtherNmc, 2.6, "NMC");
    push(&mut specs, Chemistry::OtherNmc, 3.2, "NMC");
    push(&mut specs, Chemistry::OtherLto, 1.3, "LTO");
    specs
}

/// A fresh Type 1 (LiFePO4 power-tool class) cell.
#[must_use]
pub fn type1_power(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Type 1 power cell",
        Chemistry::Type1LfpPower,
        capacity_ah,
    ))
}

/// A fresh Type 2 (standard high-energy-density) cell.
#[must_use]
pub fn type2_standard(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Type 2 standard cell",
        Chemistry::Type2CoStandard,
        capacity_ah,
    ))
}

/// A fresh Type 3 (fast-charging / high-power) cell.
#[must_use]
pub fn type3_fast_charge(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Type 3 fast-charge cell",
        Chemistry::Type3CoPower,
        capacity_ah,
    ))
}

/// A fresh Type 4 (bendable) cell.
#[must_use]
pub fn type4_bendable(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Type 4 bendable cell",
        Chemistry::Type4Bendable,
        capacity_ah,
    ))
}

/// The smart-watch scenario's rigid cell: a 200 mAh Type 2 (Section 5.2).
#[must_use]
pub fn watch_li_ion() -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Watch Li-ion 200 mAh",
        Chemistry::Type2CoStandard,
        0.2,
    ))
}

/// The smart-watch scenario's strap cell: a 200 mAh Type 4 bendable
/// (Section 5.2). The strap *prototype* is substantially more resistive
/// than the Figure 1(a) Type 4 pouch — the paper's prototypes were
/// "excellent at handling low power workloads but often very inefficient
/// for high power workloads" — modeled as a 2.5× DCIR scale on the base
/// chemistry.
#[must_use]
pub fn watch_bendable() -> TheveninCell {
    TheveninCell::new(
        BatterySpec::from_chemistry("Watch bendable 200 mAh", Chemistry::Type4Bendable, 0.2)
            .with_dcir_scaled(2.5),
    )
}

/// The tablet scenario's high-energy-density cell (Section 5.1): half of an
/// 8000 mAh budget by default.
#[must_use]
pub fn tablet_high_energy(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Tablet high-energy cell",
        Chemistry::Type2CoStandard,
        capacity_ah,
    ))
}

/// The tablet scenario's fast-charging cell (Section 5.1).
#[must_use]
pub fn tablet_fast_charge(capacity_ah: f64) -> TheveninCell {
    TheveninCell::new(BatterySpec::from_chemistry(
        "Tablet fast-charge cell",
        Chemistry::Type3CoPower,
        capacity_ah,
    ))
}

/// The 2-in-1 scenario's two equal Type 2 cells (Section 5.3): internal
/// (tablet) and external (keyboard base) batteries.
#[must_use]
pub fn two_in_one_pair(capacity_ah: f64) -> (TheveninCell, TheveninCell) {
    (
        TheveninCell::new(BatterySpec::from_chemistry(
            "2-in-1 internal cell",
            Chemistry::Type2CoStandard,
            capacity_ah,
        )),
        TheveninCell::new(BatterySpec::from_chemistry(
            "2-in-1 external (keyboard) cell",
            Chemistry::Type2CoStandard,
            capacity_ah,
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_paper_composition() {
        let lib = paper_library();
        assert_eq!(lib.len(), 15);
        let count = |chem: Chemistry| lib.iter().filter(|s| s.chemistry == chem).count();
        assert_eq!(count(Chemistry::Type2CoStandard), 8);
        assert_eq!(count(Chemistry::Type3CoPower), 2);
        assert_eq!(count(Chemistry::Type4Bendable), 2);
        assert_eq!(count(Chemistry::OtherNmc) + count(Chemistry::OtherLto), 3);
    }

    #[test]
    fn library_specs_are_valid_and_named_uniquely() {
        let lib = paper_library();
        for spec in &lib {
            spec.validate().unwrap();
        }
        let mut names: Vec<&str> = lib.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn library_is_deterministic() {
        let a = paper_library();
        let b = paper_library();
        assert_eq!(a, b);
    }

    #[test]
    fn units_vary() {
        let lib = paper_library();
        // Two same-chemistry cells scaled to 1 Ah should differ in DCIR.
        let r0 = lib[0].dcir.eval(0.5) * lib[0].capacity_ah;
        let r1 = lib[1].dcir.eval(0.5) * lib[1].capacity_ah;
        assert!((r0 - r1).abs() > 1e-6);
    }

    #[test]
    fn scenario_cells_match_paper_sizes() {
        assert!((watch_li_ion().spec().capacity_ah - 0.2).abs() < 1e-12);
        assert!((watch_bendable().spec().capacity_ah - 0.2).abs() < 1e-12);
        let (int, ext) = two_in_one_pair(4.0);
        assert_eq!(int.spec().capacity_ah, ext.spec().capacity_ah);
    }

    #[test]
    fn bendable_watch_cell_less_efficient_than_rigid() {
        let rigid = watch_li_ion();
        let flex = watch_bendable();
        assert!(
            flex.heat_loss_fraction_at_c_rate(1.0) > 2.0 * rigid.heat_loss_fraction_at_c_rate(1.0)
        );
    }

    #[test]
    fn fast_charge_cell_accepts_higher_charge_current() {
        let fast = tablet_fast_charge(4.0);
        let slow = tablet_high_energy(4.0);
        assert!(fast.spec().max_charge_a > 2.0 * slow.spec().max_charge_a);
    }
}
