//! Battery chemistry classes and their capability profiles.
//!
//! Figure 1(a) of the paper compares four Li-ion cell constructions along six
//! axes: power density, form-factor flexibility, energy density,
//! affordability, longevity, and efficiency. This module encodes those
//! classes, their qualitative axis scores (used to regenerate the radar
//! chart), and the physical constants that seed the quantitative models.

use crate::curves::{self, Curve};

/// The Li-ion chemistry classes compared in Figure 1(a), plus two extra
/// classes covering the "3 more of other types" in the paper's 15-battery
/// library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chemistry {
    /// Type 1: LiFePO4 cathode, high-density liquid polymer separator.
    /// Power-tool class: fast charging, high peak power, poor energy density.
    Type1LfpPower,
    /// Type 2: CoO2 cathode, high-density liquid polymer separator.
    /// The standard mobile-device cell: best energy density.
    Type2CoStandard,
    /// Type 3: CoO2 cathode, low-density liquid polymer separator.
    /// Emerging higher-power variant of Type 2, trading some energy density.
    Type3CoPower,
    /// Type 4: CoO2 cathode, rubber-like solid ceramic separator.
    /// Bendable, but high internal resistance and poor efficiency.
    Type4Bendable,
    /// NMC cathode cell ("other" class in the paper's library).
    OtherNmc,
    /// LTO anode cell ("other" class): extreme cycle life and charge rate,
    /// low voltage and energy density.
    OtherLto,
}

/// Qualitative axis scores in `[0, 1]` matching Figure 1(a)'s radar axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisScores {
    /// Sustained/peak power per unit mass.
    pub power_density: f64,
    /// Mechanical flexibility (bend radius axis).
    pub form_factor_flexibility: f64,
    /// Energy per unit volume/mass.
    pub energy_density: f64,
    /// Inverse of $/joule.
    pub affordability: f64,
    /// Capacity retention over cycle count.
    pub longevity: f64,
    /// One minus the typical resistive loss fraction.
    pub efficiency: f64,
}

impl AxisScores {
    /// Returns the scores as `(label, value)` pairs in the figure's axis
    /// order, for table/radar regeneration.
    #[must_use]
    pub fn as_rows(&self) -> [(&'static str, f64); 6] {
        [
            ("Power Density", self.power_density),
            ("Form-factor Flexibility", self.form_factor_flexibility),
            ("Energy Density", self.energy_density),
            ("Affordability", self.affordability),
            ("Longevity", self.longevity),
            ("Efficiency", self.efficiency),
        ]
    }
}

impl Chemistry {
    /// All chemistry classes, Figure 1(a) order first.
    pub const ALL: [Chemistry; 6] = [
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
        Chemistry::OtherNmc,
        Chemistry::OtherLto,
    ];

    /// The four classes shown in Figure 1(a).
    pub const FIGURE_1A: [Chemistry; 4] = [
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ];

    /// Short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Type1LfpPower => "Type 1 (LiFePO4, power)",
            Self::Type2CoStandard => "Type 2 (CoO2, standard)",
            Self::Type3CoPower => "Type 3 (CoO2, low-density separator)",
            Self::Type4Bendable => "Type 4 (bendable, solid separator)",
            Self::OtherNmc => "Other (NMC)",
            Self::OtherLto => "Other (LTO)",
        }
    }

    /// Qualitative axis scores for Figure 1(a).
    #[must_use]
    pub fn axis_scores(self) -> AxisScores {
        match self {
            Self::Type1LfpPower => AxisScores {
                power_density: 0.95,
                form_factor_flexibility: 0.2,
                energy_density: 0.35,
                affordability: 0.8,
                longevity: 0.9,
                efficiency: 0.85,
            },
            Self::Type2CoStandard => AxisScores {
                power_density: 0.5,
                form_factor_flexibility: 0.3,
                energy_density: 0.95,
                affordability: 0.7,
                longevity: 0.6,
                efficiency: 0.9,
            },
            Self::Type3CoPower => AxisScores {
                power_density: 0.7,
                form_factor_flexibility: 0.3,
                energy_density: 0.8,
                affordability: 0.6,
                longevity: 0.55,
                efficiency: 0.85,
            },
            Self::Type4Bendable => AxisScores {
                power_density: 0.25,
                form_factor_flexibility: 0.95,
                energy_density: 0.55,
                affordability: 0.4,
                longevity: 0.5,
                efficiency: 0.45,
            },
            Self::OtherNmc => AxisScores {
                power_density: 0.65,
                form_factor_flexibility: 0.25,
                energy_density: 0.85,
                affordability: 0.65,
                longevity: 0.7,
                efficiency: 0.88,
            },
            Self::OtherLto => AxisScores {
                power_density: 0.9,
                form_factor_flexibility: 0.2,
                energy_density: 0.25,
                affordability: 0.45,
                longevity: 0.98,
                efficiency: 0.92,
            },
        }
    }

    /// Nominal (mid-SoC) cell voltage in volts.
    #[must_use]
    pub fn nominal_voltage_v(self) -> f64 {
        match self {
            Self::Type1LfpPower => 3.2,
            Self::Type2CoStandard | Self::Type3CoPower | Self::Type4Bendable => 3.8,
            Self::OtherNmc => 3.7,
            Self::OtherLto => 2.4,
        }
    }

    /// Volumetric energy density in Wh/l (Section 5.1's measured ranges:
    /// high-energy cells 590–600 Wh/l, high-power cells 530–540 Wh/l with an
    /// effective 500–510 Wh/l after high-current swelling).
    #[must_use]
    pub fn energy_density_wh_per_l(self) -> f64 {
        match self {
            Self::Type1LfpPower => 330.0,
            Self::Type2CoStandard => 595.0,
            Self::Type3CoPower => 535.0,
            Self::Type4Bendable => 350.0,
            Self::OtherNmc => 560.0,
            Self::OtherLto => 180.0,
        }
    }

    /// Effective energy density in Wh/l after accounting for swelling under
    /// the chemistry's intended (fast) charging regime; equal to
    /// [`Self::energy_density_wh_per_l`] for chemistries that do not swell.
    #[must_use]
    pub fn effective_energy_density_wh_per_l(self) -> f64 {
        match self {
            // "prone to expand in size when charged with high currents.
            // Therefore, the effective energy density is between 500–510 Wh/l"
            Self::Type3CoPower => 505.0,
            other => other.energy_density_wh_per_l(),
        }
    }

    /// Tolerable charge cycles `χ` before capacity drops below the warranty
    /// threshold (Section 3.3's wear-ratio denominator).
    #[must_use]
    pub fn tolerable_cycles(self) -> u32 {
        match self {
            Self::Type1LfpPower => 2000,
            Self::Type2CoStandard => 800,
            // Fast-charge cells are designed for high C-rates, so their
            // rated cycle life is high; what they trade away is energy
            // density (Figure 11a) — and they still fade faster *when
            // actually fast-charged* (Figure 11c).
            Self::Type3CoPower => 1800,
            Self::Type4Bendable => 500,
            Self::OtherNmc => 1000,
            Self::OtherLto => 7000,
        }
    }

    /// Baseline internal resistance in ohms, normalized to a 1 Ah cell at
    /// mid-SoC. Actual cell resistance scales inversely with capacity
    /// (parallel plate area) and varies with SoC via the DCIR curve.
    #[must_use]
    pub fn base_resistance_ohm_ah(self) -> f64 {
        match self {
            Self::Type1LfpPower => 0.045,
            Self::Type2CoStandard => 0.09,
            Self::Type3CoPower => 0.06,
            // "rubber-like separator increases the resistance to passage of
            // ions" — roughly 5x the standard cell (Figure 1c: ~30% heat loss
            // at 2C vs ~5–8% for Types 2/3).
            Self::Type4Bendable => 0.42,
            Self::OtherNmc => 0.075,
            Self::OtherLto => 0.035,
        }
    }

    /// Maximum continuous discharge C-rate.
    #[must_use]
    pub fn max_discharge_c(self) -> f64 {
        match self {
            Self::Type1LfpPower => 10.0,
            Self::Type2CoStandard => 2.0,
            Self::Type3CoPower => 4.0,
            Self::Type4Bendable => 2.0,
            Self::OtherNmc => 3.0,
            Self::OtherLto => 10.0,
        }
    }

    /// Maximum charge C-rate (fast-charging headroom).
    #[must_use]
    pub fn max_charge_c(self) -> f64 {
        match self {
            Self::Type1LfpPower => 4.0,
            Self::Type2CoStandard => 0.7,
            Self::Type3CoPower => 2.0,
            Self::Type4Bendable => 0.5,
            Self::OtherNmc => 1.0,
            Self::OtherLto => 6.0,
        }
    }

    /// Aging sensitivity to C-rate: multiplier on the per-cycle fade rate at
    /// 1C relative to a gentle 0.3C cycle (higher = degrades faster under
    /// fast charge; Figure 1b).
    #[must_use]
    pub fn crate_aging_sensitivity(self) -> f64 {
        match self {
            Self::Type1LfpPower => 0.8,
            Self::Type2CoStandard => 2.4,
            Self::Type3CoPower => 1.3,
            Self::Type4Bendable => 2.8,
            Self::OtherNmc => 1.6,
            Self::OtherLto => 0.3,
        }
    }

    /// Open-circuit-potential curve (volts vs SoC) for this chemistry,
    /// normalized to the cell's voltage window (Figure 8b shapes).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the embedded knot tables are valid.
    #[must_use]
    pub fn ocp_curve(self) -> Curve {
        // Shapes: LFP has a famously flat plateau around 3.3 V; CoO2 cells
        // ramp from ~3.0 V to ~4.35 V; LTO sits near 2.3–2.5 V.
        let pts: &[f64] = match self {
            Self::Type1LfpPower => &[
                2.9, 3.18, 3.26, 3.29, 3.31, 3.32, 3.33, 3.34, 3.35, 3.38, 3.55,
            ],
            Self::Type2CoStandard => &[
                3.00, 3.45, 3.60, 3.68, 3.74, 3.80, 3.87, 3.95, 4.05, 4.18, 4.35,
            ],
            Self::Type3CoPower => &[
                2.95, 3.42, 3.58, 3.66, 3.72, 3.78, 3.85, 3.93, 4.03, 4.16, 4.30,
            ],
            Self::Type4Bendable => &[
                2.90, 3.35, 3.52, 3.62, 3.70, 3.77, 3.84, 3.92, 4.02, 4.14, 4.28,
            ],
            Self::OtherNmc => &[
                3.05, 3.40, 3.55, 3.62, 3.68, 3.73, 3.80, 3.89, 3.98, 4.08, 4.20,
            ],
            Self::OtherLto => &[
                2.00, 2.22, 2.28, 2.31, 2.33, 2.35, 2.37, 2.40, 2.44, 2.50, 2.65,
            ],
        };
        curves::from_soc_samples(pts).expect("embedded OCP table is valid")
    }

    /// DC internal resistance curve (ohms vs SoC) for a 1 Ah cell of this
    /// chemistry. Resistance rises steeply at low SoC (Figure 8c shapes).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the embedded knot tables are valid.
    #[must_use]
    pub fn dcir_curve_1ah(self) -> Curve {
        let base = self.base_resistance_ohm_ah();
        // Multiplier on the mid-SoC base resistance; steep rise near empty.
        let shape = [6.0, 2.8, 1.8, 1.4, 1.2, 1.0, 0.95, 0.92, 0.90, 0.88, 0.87];
        let pts: Vec<f64> = shape.iter().map(|m| m * base).collect();
        curves::from_soc_samples(&pts).expect("embedded DCIR table is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_chemistries_have_valid_curves() {
        for chem in Chemistry::ALL {
            let ocp = chem.ocp_curve();
            let dcir = chem.dcir_curve_1ah();
            // OCP increases with SoC; DCIR decreases.
            assert!(ocp.eval(0.9) > ocp.eval(0.1), "{}", chem.name());
            assert!(dcir.eval(0.1) > dcir.eval(0.9), "{}", chem.name());
        }
    }

    #[test]
    fn energy_density_ordering_matches_paper() {
        // Type 2 (high energy) > Type 3 (high power) > Type 1/4.
        assert!(
            Chemistry::Type2CoStandard.energy_density_wh_per_l()
                > Chemistry::Type3CoPower.energy_density_wh_per_l()
        );
        assert!(
            Chemistry::Type3CoPower.energy_density_wh_per_l()
                > Chemistry::Type1LfpPower.energy_density_wh_per_l()
        );
        // Paper: high-energy 590–600 Wh/l; high-power effective 500–510 Wh/l.
        let e2 = Chemistry::Type2CoStandard.energy_density_wh_per_l();
        assert!((590.0..=600.0).contains(&e2));
        let e3 = Chemistry::Type3CoPower.effective_energy_density_wh_per_l();
        assert!((500.0..=510.0).contains(&e3));
    }

    #[test]
    fn bendable_has_highest_resistance() {
        let r4 = Chemistry::Type4Bendable.base_resistance_ohm_ah();
        for chem in Chemistry::ALL {
            if chem != Chemistry::Type4Bendable {
                assert!(r4 > chem.base_resistance_ohm_ah());
            }
        }
    }

    #[test]
    fn fast_charge_chemistries_charge_faster() {
        assert!(Chemistry::Type3CoPower.max_charge_c() > Chemistry::Type2CoStandard.max_charge_c());
        assert!(Chemistry::Type1LfpPower.max_charge_c() > Chemistry::Type3CoPower.max_charge_c());
    }

    #[test]
    fn axis_scores_in_unit_range() {
        for chem in Chemistry::ALL {
            for (label, v) in chem.axis_scores().as_rows() {
                assert!((0.0..=1.0).contains(&v), "{} {label} = {v}", chem.name());
            }
        }
    }

    #[test]
    fn radar_tradeoffs_hold() {
        // Figure 1a: bendable is most flexible, least efficient; Type 2 has
        // the best energy density; Type 1 has the best power density of the
        // four shown.
        let s1 = Chemistry::Type1LfpPower.axis_scores();
        let s2 = Chemistry::Type2CoStandard.axis_scores();
        let s3 = Chemistry::Type3CoPower.axis_scores();
        let s4 = Chemistry::Type4Bendable.axis_scores();
        assert!(
            s4.form_factor_flexibility > s1.form_factor_flexibility.max(s2.form_factor_flexibility)
        );
        assert!(s4.efficiency < s1.efficiency.min(s2.efficiency).min(s3.efficiency));
        assert!(
            s2.energy_density
                > s1.energy_density
                    .max(s3.energy_density)
                    .max(s4.energy_density)
        );
        assert!(s1.power_density > s2.power_density.max(s3.power_density).max(s4.power_density));
        // Type 3 trades energy density for power density vs Type 2.
        assert!(s3.power_density > s2.power_density && s3.energy_density < s2.energy_density);
    }

    #[test]
    fn nominal_voltage_within_ocp_window() {
        for chem in Chemistry::ALL {
            let ocp = chem.ocp_curve();
            let v = chem.nominal_voltage_v();
            assert!(v >= ocp.y_min() && v <= ocp.y_max(), "{}", chem.name());
        }
    }
}
