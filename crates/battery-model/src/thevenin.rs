//! The production 1-RC Thevenin cell model (paper Figure 8a).
//!
//! The paper's emulator models each cell with four learned parameters:
//! open-circuit potential (vs SoC), internal resistance (vs SoC),
//! concentration resistance, and plate capacitance. This module implements
//! that model as a discrete-time simulation:
//!
//! ```text
//!        R0(SoC)        Rc
//!   OCV ─/\/\/─┬────┬─/\/\/─┬────o  A (terminal +)
//!   (SoC)      │    └──||───┘
//!              │        Cp
//!              o  B (terminal −)
//! ```
//!
//! Terminal voltage under load current `I` (positive = discharge):
//! `V = OCV(SoC) − I·R0(SoC)·age − Vrc`, where the RC branch voltage evolves
//! as `dVrc/dt = (I·Rc − Vrc) / (Rc·Cp)`.

use crate::aging::AgingState;
use crate::curves::CurveCursor;
use crate::error::BatteryError;
use crate::spec::BatterySpec;
use crate::thermal::{resistance_multiplier_at, ThermalModel};
use std::sync::Arc;

/// Result of one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Current actually drawn (positive = discharge), amps.
    pub current_a: f64,
    /// Terminal voltage at the step midpoint (trapezoidal accounting),
    /// volts.
    pub terminal_v: f64,
    /// Power delivered to (positive) or absorbed from (negative) the
    /// external circuit, watts.
    pub delivered_w: f64,
    /// Resistive heat dissipated inside the cell, watts.
    pub heat_w: f64,
    /// State of charge after the step.
    pub soc: f64,
    /// Charge cycles completed during this step.
    pub cycles_completed: u32,
    /// Time actually simulated, seconds — less than the requested `dt_s`
    /// when the step was truncated at an SoC boundary. Callers crediting
    /// energy per step MUST scale by `dt_used_s / dt_s`.
    pub dt_used_s: f64,
}

/// A simulated battery cell with Thevenin dynamics, aging, and energy
/// accounting.
#[derive(Debug, Clone)]
pub struct TheveninCell {
    /// Shared, immutable cell parameterization. `Arc` so a fleet of cells
    /// built from one template shares a single copy of the curve tables.
    spec: Arc<BatterySpec>,
    soc: f64,
    /// RC-branch (concentration) voltage, volts. Positive during discharge.
    v_rc: f64,
    /// Segment memo for OCP curve lookups (SoC drifts slowly per step).
    ocp_cur: CurveCursor,
    /// Segment memo for DCIR curve lookups.
    dcir_cur: CurveCursor,
    aging: AgingState,
    /// Total energy delivered to the load over the cell's life, joules.
    energy_out_j: f64,
    /// Total energy absorbed while charging, joules.
    energy_in_j: f64,
    /// Total resistive heat dissipated, joules.
    heat_j: f64,
    /// Optional lumped thermal model; when attached, the cell's heat feeds
    /// it and the ohmic resistance follows the Arrhenius temperature
    /// dependence.
    thermal: Option<ThermalModel>,
    /// Memo key for [`Self::rc_alpha`]: the bit pattern of the last `dt`
    /// the RC relaxation factor was computed for (τ is fixed by the spec,
    /// and simulations step with a fixed `dt`, so one entry suffices).
    rc_alpha_dt_bits: u64,
    /// Memoized `exp(-dt/τ)` for the `dt` above.
    rc_alpha: f64,
    /// Fault-injection multiplier on the ohmic resistance (sudden DCIR
    /// growth). 1.0 when healthy; `x * 1.0` is bit-identical to `x`, so
    /// the healthy path costs nothing and changes no results.
    fault_r_mult: f64,
}

impl TheveninCell {
    /// Creates a fully charged cell from a spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation; construct specs through
    /// [`BatterySpec::from_chemistry`] or validate them first.
    #[must_use]
    pub fn new(spec: impl Into<Arc<BatterySpec>>) -> Self {
        let spec = spec.into();
        spec.validate().expect("invalid battery spec");
        Self {
            aging: AgingState::new(&spec),
            spec,
            soc: 1.0,
            v_rc: 0.0,
            ocp_cur: CurveCursor::new(),
            dcir_cur: CurveCursor::new(),
            energy_out_j: 0.0,
            energy_in_j: 0.0,
            heat_j: 0.0,
            thermal: None,
            rc_alpha_dt_bits: f64::NAN.to_bits(),
            rc_alpha: 1.0,
            fault_r_mult: 1.0,
        }
    }

    /// `exp(-dt/τ)` with a one-entry memo keyed on the `dt` bit pattern.
    /// Bit-identical to recomputing: equal input bits give an equal `exp`.
    fn rc_alpha(&mut self, dt: f64, tau: f64) -> f64 {
        if dt.to_bits() != self.rc_alpha_dt_bits {
            self.rc_alpha_dt_bits = dt.to_bits();
            self.rc_alpha = (-dt / tau).exp();
        }
        self.rc_alpha
    }

    /// Attaches a lumped thermal model: the cell's resistive heat drives
    /// its temperature, and the ohmic resistance follows the Arrhenius
    /// temperature dependence (cold cells are more resistive).
    #[must_use]
    pub fn with_thermal(mut self, model: ThermalModel) -> Self {
        self.thermal = Some(model);
        self
    }

    /// Cell temperature in °C, if a thermal model is attached.
    #[must_use]
    pub fn temperature_c(&self) -> Option<f64> {
        self.thermal.as_ref().map(ThermalModel::temperature_c)
    }

    /// Exports the cell's full mutable state for bit-exact snapshotting.
    /// The spec (curve tables, ratings) is shared immutable configuration;
    /// the curve cursors and the RC-α memo are value-neutral caches (equal
    /// inputs give equal outputs regardless of cursor position) and are
    /// not captured.
    #[must_use]
    pub fn export_state(&self) -> CellStateSnapshot {
        CellStateSnapshot {
            soc: self.soc,
            v_rc: self.v_rc,
            energy_out_j: self.energy_out_j,
            energy_in_j: self.energy_in_j,
            heat_j: self.heat_j,
            fault_r_mult: self.fault_r_mult,
            aging: self.aging.export_state(),
            thermal: self.thermal,
        }
    }

    /// Restores state captured by [`TheveninCell::export_state`]. The
    /// restored cell is bit-identical in behavior to the exported one: the
    /// memo caches left untouched re-key on first use.
    pub fn import_state(&mut self, snap: &CellStateSnapshot) {
        self.soc = snap.soc;
        self.v_rc = snap.v_rc;
        self.energy_out_j = snap.energy_out_j;
        self.energy_in_j = snap.energy_in_j;
        self.heat_j = snap.heat_j;
        self.fault_r_mult = snap.fault_r_mult;
        self.aging.import_state(&snap.aging);
        self.thermal = snap.thermal;
    }

    /// The memoized RC relaxation factor `exp(-dt/τ)` for `dt`, exactly as
    /// [`TheveninCell::rest`] would use it (and sharing its memo). Exposed
    /// for batched stepping engines that advance `v_rc` out-of-band.
    pub fn rc_alpha_for(&mut self, dt: f64) -> f64 {
        let tau = self.spec.concentration_r_ohm * self.spec.plate_c_f;
        if tau <= 0.0 {
            // `rest` zeroes v_rc outright for a degenerate τ.
            0.0
        } else if dt > 0.0 {
            self.rc_alpha(dt, tau)
        } else {
            // No time passes: the branch voltage holds.
            1.0
        }
    }

    /// Creates a cell at a given initial state of charge.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `soc` is outside `[0, 1]`.
    #[must_use]
    pub fn with_soc(spec: impl Into<Arc<BatterySpec>>, soc: f64) -> Self {
        assert!((0.0..=1.0).contains(&soc), "soc out of range: {soc}");
        let mut cell = Self::new(spec);
        cell.soc = soc;
        cell
    }

    /// The cell's static parameters.
    #[must_use]
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// State of charge in `[0, 1]`.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Forces the state of charge (scenario setup / test fixtures only —
    /// bypasses coulomb accounting).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn set_soc(&mut self, soc: f64) {
        assert!((0.0..=1.0).contains(&soc), "soc out of range: {soc}");
        self.soc = soc;
    }

    /// Open-circuit voltage at the present SoC.
    #[must_use]
    pub fn ocv(&self) -> f64 {
        self.spec.ocp.eval_cached(&self.ocp_cur, self.soc)
    }

    /// Effective ohmic resistance at the present SoC including age growth
    /// and (when a thermal model is attached) temperature dependence.
    #[must_use]
    pub fn resistance_ohm(&self) -> f64 {
        let temp_mult = self
            .thermal
            .as_ref()
            .map_or(1.0, |t| resistance_multiplier_at(t.temperature_c()));
        self.spec.dcir.eval_cached(&self.dcir_cur, self.soc)
            * self.aging.resistance_multiplier()
            * temp_mult
            * self.fault_r_mult
    }

    /// Installs (or with `1.0` clears) a fault multiplier on the ohmic
    /// resistance, emulating sudden DCIR growth from e.g. a cracked weld
    /// or lost electrode contact.
    ///
    /// # Panics
    ///
    /// Panics unless `mult` is finite and positive.
    pub fn set_fault_resistance_mult(&mut self, mult: f64) {
        assert!(
            mult.is_finite() && mult > 0.0,
            "bad fault resistance multiplier: {mult}"
        );
        self.fault_r_mult = mult;
    }

    /// The installed fault resistance multiplier (1.0 when healthy).
    #[must_use]
    pub fn fault_resistance_mult(&self) -> f64 {
        self.fault_r_mult
    }

    /// Slope of the DCIR curve at the present SoC (the `δi` of the paper's
    /// RBL allocation, Section 3.3), including age growth.
    #[must_use]
    pub fn dcir_slope(&self) -> f64 {
        self.spec.dcir.slope_cached(&self.dcir_cur, self.soc)
            * self.aging.resistance_multiplier()
            * self.fault_r_mult
    }

    /// [`TheveninCell::resistance_ohm`] and [`TheveninCell::dcir_slope`]
    /// from one curve-segment search. Returns exactly the same pair of
    /// values (same multiplications in the same order); policy code that
    /// needs both per cell per evaluation should prefer this.
    #[must_use]
    pub fn resistance_and_dcir_slope(&self) -> (f64, f64) {
        let temp_mult = self
            .thermal
            .as_ref()
            .map_or(1.0, |t| resistance_multiplier_at(t.temperature_c()));
        let (r, s) = self
            .spec
            .dcir
            .value_and_slope_cached(&self.dcir_cur, self.soc);
        let age = self.aging.resistance_multiplier();
        (
            r * age * temp_mult * self.fault_r_mult,
            s * age * self.fault_r_mult,
        )
    }

    /// Present usable capacity in amp-hours (rated capacity × fade).
    #[must_use]
    pub fn effective_capacity_ah(&self) -> f64 {
        self.spec.capacity_ah * self.aging.capacity_fraction()
    }

    /// Remaining charge in amp-hours.
    #[must_use]
    pub fn remaining_ah(&self) -> f64 {
        self.soc * self.effective_capacity_ah()
    }

    /// Estimate of remaining deliverable energy in watt-hours, integrating
    /// the OCP curve from 0 to the present SoC (ignores load-dependent
    /// resistive losses; the RBL metric accounts for those separately).
    #[must_use]
    pub fn remaining_energy_wh(&self) -> f64 {
        let cap = self.effective_capacity_ah();
        let n = 32;
        let mut wh = 0.0;
        let step = self.soc / n as f64;
        if step <= 0.0 {
            return 0.0;
        }
        for k in 0..n {
            let mid = (k as f64 + 0.5) * step;
            // Ascending sweep: the cursor turns 32 binary searches into
            // 32 adjacent-segment probes.
            wh += self.spec.ocp.eval_cached(&self.ocp_cur, mid) * step * cap;
        }
        wh
    }

    /// Terminal voltage the cell would show under load current `i`
    /// (positive = discharge) without advancing time.
    #[must_use]
    pub fn terminal_voltage(&self, current_a: f64) -> f64 {
        if current_a == 0.0 {
            // Skip the resistance lookup: `ocv - 0.0·r - v_rc` is
            // bit-identical to `ocv - v_rc` for any finite `r`.
            return self.ocv() - self.v_rc;
        }
        self.ocv() - current_a * self.resistance_ohm() - self.v_rc
    }

    /// Maximum power a discharge planner may allocate to this cell for a
    /// step of `dt_s` seconds: the minimum of the power at the rated
    /// current cap, the quadratic deliverable maximum
    /// ([`TheveninCell::max_power_w`]), and what the remaining charge can
    /// sustain for the whole step. Computes the OCV and resistance once;
    /// the result is bit-identical to composing the three public queries.
    #[must_use]
    pub fn plan_discharge_cap_w(&self, dt_s: f64) -> f64 {
        let v0 = self.ocv();
        let r0 = self.resistance_ohm();
        let i_max = self.spec.max_discharge_a;
        // Power at the rated current (terminal voltage is linear in I, so
        // this is exact at the cap).
        let p_at_imax = ((v0 - i_max * r0 - self.v_rc) * i_max).max(0.0);
        let v_eff = v0 - self.v_rc;
        let i_peak = (v_eff / (2.0 * r0)).min(i_max);
        let p_quad = i_peak * (v_eff - i_peak * r0);
        // Energy bound: no more than the charge left can sustain.
        let p_energy = self.remaining_ah() * 3600.0 * v0 / dt_s;
        p_at_imax.min(p_quad).min(p_energy)
    }

    /// Aging bookkeeping (cycles, capacity fraction, wear ratio).
    #[must_use]
    pub fn aging(&self) -> &AgingState {
        &self.aging
    }

    /// Completed charge cycles.
    #[must_use]
    pub fn cycle_count(&self) -> u32 {
        self.aging.cycles()
    }

    /// Wear ratio `λ = cc / χ` (Section 3.3).
    #[must_use]
    pub fn wear_ratio(&self) -> f64 {
        self.aging.wear_ratio(self.spec.tolerable_cycles)
    }

    /// Lifetime energy delivered to loads, joules.
    #[must_use]
    pub fn energy_out_j(&self) -> f64 {
        self.energy_out_j
    }

    /// Lifetime energy absorbed while charging, joules.
    #[must_use]
    pub fn energy_in_j(&self) -> f64 {
        self.energy_in_j
    }

    /// Lifetime resistive heat, joules.
    #[must_use]
    pub fn heat_j(&self) -> f64 {
        self.heat_j
    }

    /// Whether the cell is effectively empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.soc <= 1e-9
    }

    /// Whether the cell is effectively full (within one part per million —
    /// a freshly topped cell stays "full" through short rests despite
    /// self-discharge).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.soc >= 1.0 - 1e-6
    }

    /// Steady-state heat-loss fraction when discharging at C-rate `c`:
    /// `I·(R0+Rc)/OCV` — the Figure 1(c) quantity ("% of energy turned into
    /// heat" at a given drain rate).
    #[must_use]
    pub fn heat_loss_fraction_at_c_rate(&self, c_rate: f64) -> f64 {
        let i = c_rate * self.spec.capacity_ah;
        let r = self.resistance_ohm() + self.spec.concentration_r_ohm;
        (i * r / self.ocv()).min(1.0)
    }

    /// Advances the cell by `dt_s` seconds at fixed current `current_a`
    /// (positive = discharge, negative = charge).
    ///
    /// The step is truncated if the cell empties (discharge) or fills
    /// (charge) before `dt_s` elapses; the outcome reports the charge
    /// actually moved via `current_a` and the truncated step's final state.
    ///
    /// # Errors
    ///
    /// * [`BatteryError::InvalidTimeStep`] / [`BatteryError::InvalidLoad`]
    ///   for non-finite inputs.
    /// * [`BatteryError::CurrentLimit`] if `|current_a|` exceeds the rated
    ///   charge/discharge limit.
    /// * [`BatteryError::Empty`] / [`BatteryError::Full`] if no charge can
    ///   be moved at all in the requested direction.
    pub fn step_current(&mut self, current_a: f64, dt_s: f64) -> Result<StepOutcome, BatteryError> {
        if !dt_s.is_finite() || dt_s < 0.0 {
            return Err(BatteryError::InvalidTimeStep { dt_s });
        }
        if !current_a.is_finite() {
            return Err(BatteryError::InvalidLoad { value: current_a });
        }
        let limit = if current_a >= 0.0 {
            self.spec.max_discharge_a
        } else {
            self.spec.max_charge_a
        };
        if current_a.abs() > limit * (1.0 + 1e-9) {
            return Err(BatteryError::CurrentLimit {
                requested_a: current_a.abs(),
                limit_a: limit,
            });
        }
        if current_a > 0.0 && self.is_empty() {
            return Err(BatteryError::Empty);
        }
        if current_a < 0.0 && self.is_full() {
            return Err(BatteryError::Full);
        }

        let cap_ah = self.effective_capacity_ah();
        // Truncate the step at the SoC boundary.
        let full_delta_soc = current_a * dt_s / 3600.0 / cap_ah;
        let (dt_used, delta_soc) = if current_a > 0.0 && full_delta_soc > self.soc {
            (self.soc * cap_ah * 3600.0 / current_a, self.soc)
        } else if current_a < 0.0 && self.soc - full_delta_soc > 1.0 {
            (
                (1.0 - self.soc) * cap_ah * 3600.0 / (-current_a),
                -(1.0 - self.soc),
            )
        } else {
            (dt_s, full_delta_soc)
        };

        // RC branch relaxation toward I·Rc with time constant Rc·Cp.
        let tau = self.spec.concentration_r_ohm * self.spec.plate_c_f;
        let target = current_a * self.spec.concentration_r_ohm;
        let v_rc_before = self.v_rc;
        if tau > 0.0 {
            if dt_used > 0.0 {
                let alpha = self.rc_alpha(dt_used, tau);
                self.v_rc = target + (self.v_rc - target) * alpha;
            }
            // dt_used == 0: no time passes, the branch voltage holds.
        } else {
            self.v_rc = target;
        }

        let soc_before = self.soc;
        self.soc = (self.soc - delta_soc).clamp(0.0, 1.0);
        let cycles_completed = self.aging.step(current_a, dt_used, self.spec.capacity_ah);

        // Energy accounting at the step midpoint (trapezoidal): with a
        // fixed current and a moving operating point, begin- or end-state
        // bookkeeping systematically mis-credits energy on steep parts of
        // the OCP/DCIR curves.
        let soc_mid = 0.5 * (soc_before + self.soc);
        let v_rc_mid = 0.5 * (v_rc_before + self.v_rc);
        let temp_mult = self
            .thermal
            .as_ref()
            .map_or(1.0, |t| resistance_multiplier_at(t.temperature_c()));
        let r0 = self.spec.dcir.eval_cached(&self.dcir_cur, soc_mid)
            * self.aging.resistance_multiplier()
            * temp_mult;
        let terminal_v =
            self.spec.ocp.eval_cached(&self.ocp_cur, soc_mid) - current_a * r0 - v_rc_mid;
        let heat_w = current_a * current_a * r0
            + v_rc_mid * v_rc_mid / self.spec.concentration_r_ohm.max(f64::EPSILON);
        let delivered_w = terminal_v * current_a;
        if delivered_w >= 0.0 {
            self.energy_out_j += delivered_w * dt_used;
        } else {
            self.energy_in_j += -delivered_w * dt_used;
        }
        self.heat_j += heat_w * dt_used;
        if let Some(thermal) = &mut self.thermal {
            // Heat flows only for the time actually simulated; a step
            // truncated at an SoC boundary must not keep heating.
            thermal.step(heat_w, dt_used);
            if dt_s > dt_used {
                thermal.step(0.0, dt_s - dt_used);
            }
        }

        Ok(StepOutcome {
            current_a,
            terminal_v,
            delivered_w,
            heat_w,
            soc: self.soc,
            cycles_completed,
            dt_used_s: dt_used,
        })
    }

    /// Advances the cell by `dt_s` seconds at fixed terminal power `power_w`
    /// (positive = discharge), solving the quadratic
    /// `P = I·(OCV − Vrc) − I²·R0` for the load current.
    ///
    /// # Errors
    ///
    /// As [`TheveninCell::step_current`], plus
    /// [`BatteryError::PowerInfeasible`] when the requested discharge power
    /// exceeds the cell's deliverable maximum at its present state.
    pub fn step_power(&mut self, power_w: f64, dt_s: f64) -> Result<StepOutcome, BatteryError> {
        let current = self.current_for_power(power_w)?;
        self.step_current(current, dt_s)
    }

    /// Solves for the load current that produces terminal power `power_w`
    /// at the cell's present state (positive = discharge).
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidLoad`] for non-finite power;
    /// [`BatteryError::PowerInfeasible`] when the discharge power exceeds
    /// the deliverable maximum.
    pub fn current_for_power(&self, power_w: f64) -> Result<f64, BatteryError> {
        if !power_w.is_finite() {
            return Err(BatteryError::InvalidLoad { value: power_w });
        }
        if power_w == 0.0 {
            return Ok(0.0);
        }
        let v_eff = self.ocv() - self.v_rc;
        let r0 = self.resistance_ohm();
        let disc = v_eff * v_eff - 4.0 * r0 * power_w;
        if disc < 0.0 {
            return Err(BatteryError::PowerInfeasible {
                requested_w: power_w,
                max_w: v_eff * v_eff / (4.0 * r0),
            });
        }
        // The physical branch is the smaller-|I| root.
        Ok((v_eff - disc.sqrt()) / (2.0 * r0))
    }

    /// Maximum instantaneous discharge power at the present state, watts.
    #[must_use]
    pub fn max_power_w(&self) -> f64 {
        let v_eff = self.ocv() - self.v_rc;
        let r0 = self.resistance_ohm();
        let i_peak = (v_eff / (2.0 * r0)).min(self.spec.max_discharge_a);
        i_peak * (v_eff - i_peak * r0)
    }

    /// Fractional charge lost to self-discharge per second (≈2.5 % per
    /// month at room temperature — Li-ion shelf behavior). Public so
    /// batched engines advancing SoC out-of-band apply the identical law.
    pub const SELF_DISCHARGE_PER_S: f64 = 0.025 / (30.0 * 86_400.0);

    /// Lets the RC branch relax (and the cell cool) with no load for
    /// `dt_s` seconds. Long rests also lose a little charge to
    /// self-discharge.
    pub fn rest(&mut self, dt_s: f64) {
        let tau = self.spec.concentration_r_ohm * self.spec.plate_c_f;
        if tau > 0.0 {
            if dt_s > 0.0 {
                self.v_rc *= self.rc_alpha(dt_s, tau);
            }
            // dt_s <= 0: no time passes, the branch voltage holds.
        } else {
            self.v_rc = 0.0;
        }
        if dt_s > 0.0 {
            self.soc = (self.soc * (1.0 - Self::SELF_DISCHARGE_PER_S * dt_s)).clamp(0.0, 1.0);
        }
        if let Some(thermal) = &mut self.thermal {
            thermal.step(0.0, dt_s.max(0.0));
        }
    }
}

/// Plain-data capture of one cell's mutable state (see
/// [`TheveninCell::export_state`]). The spec is shared immutable
/// configuration and is referenced, not copied, on restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStateSnapshot {
    /// State of charge in `[0, 1]`.
    pub soc: f64,
    /// RC-branch (concentration) voltage, volts.
    pub v_rc: f64,
    /// Lifetime energy delivered, joules.
    pub energy_out_j: f64,
    /// Lifetime energy absorbed while charging, joules.
    pub energy_in_j: f64,
    /// Lifetime resistive heat, joules.
    pub heat_j: f64,
    /// Fault-injection multiplier on the ohmic resistance.
    pub fault_r_mult: f64,
    /// Mutable aging state.
    pub aging: crate::aging::AgingStateSnapshot,
    /// Thermal model (carries its temperature state), when attached.
    pub thermal: Option<ThermalModel>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn cell() -> TheveninCell {
        TheveninCell::new(BatterySpec::from_chemistry(
            "t",
            Chemistry::Type2CoStandard,
            2.0,
        ))
    }

    #[test]
    fn starts_full() {
        let c = cell();
        assert!(c.is_full());
        assert!(!c.is_empty());
        assert!((c.remaining_ah() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_reduces_soc_by_coulombs() {
        let mut c = cell();
        // 1 A for 36 s = 0.01 Ah = 0.5 % of 2 Ah.
        c.step_current(1.0, 36.0).unwrap();
        assert!((c.soc() - 0.995).abs() < 1e-9);
    }

    #[test]
    fn charge_increases_soc() {
        let mut c = TheveninCell::with_soc(
            BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0),
            0.5,
        );
        c.step_current(-1.0, 36.0).unwrap();
        assert!((c.soc() - 0.505).abs() < 1e-9);
    }

    #[test]
    fn terminal_voltage_sags_under_load() {
        let mut c = cell();
        let v_rest = c.terminal_voltage(0.0);
        let out = c.step_current(2.0, 1.0).unwrap();
        assert!(out.terminal_v < v_rest);
        assert!(out.heat_w > 0.0);
    }

    #[test]
    fn charging_raises_terminal_voltage_above_ocv() {
        let mut c = TheveninCell::with_soc(
            BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0),
            0.5,
        );
        let ocv = c.ocv();
        let out = c.step_current(-1.0, 1.0).unwrap();
        assert!(out.terminal_v > ocv);
    }

    #[test]
    fn step_truncates_at_empty() {
        let mut c = TheveninCell::with_soc(
            BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0),
            0.01,
        );
        // 2 A for an hour would remove 1 Ah but only 0.02 Ah remains.
        let out = c.step_current(2.0, 3600.0).unwrap();
        assert!(out.soc.abs() < 1e-9);
        assert!(c.is_empty());
        // Further discharge errors.
        assert_eq!(c.step_current(1.0, 1.0), Err(BatteryError::Empty));
    }

    #[test]
    fn step_truncates_at_full() {
        let mut c = TheveninCell::with_soc(
            BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0),
            0.99,
        );
        let out = c.step_current(-1.4, 3600.0).unwrap();
        assert!((out.soc - 1.0).abs() < 1e-9);
        assert_eq!(c.step_current(-1.0, 1.0), Err(BatteryError::Full));
    }

    #[test]
    fn rejects_over_limit_current() {
        let mut c = cell();
        // Type 2 max discharge = 2C = 4 A on a 2 Ah cell.
        let err = c.step_current(10.0, 1.0).unwrap_err();
        assert!(matches!(err, BatteryError::CurrentLimit { .. }));
        // Charge limit = 0.7C = 1.4 A.
        let err = c.step_current(-3.0, 1.0).unwrap_err();
        assert!(matches!(err, BatteryError::CurrentLimit { .. }));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut c = cell();
        assert!(matches!(
            c.step_current(1.0, -1.0),
            Err(BatteryError::InvalidTimeStep { .. })
        ));
        assert!(matches!(
            c.step_current(f64::NAN, 1.0),
            Err(BatteryError::InvalidLoad { .. })
        ));
        assert!(matches!(
            c.current_for_power(f64::INFINITY),
            Err(BatteryError::InvalidLoad { .. })
        ));
    }

    #[test]
    fn power_step_delivers_requested_power() {
        let mut c = cell();
        let out = c.step_power(5.0, 1.0).unwrap();
        assert!(
            (out.delivered_w - 5.0).abs() < 0.05,
            "got {}",
            out.delivered_w
        );
        assert!(out.current_a > 0.0);
    }

    #[test]
    fn negative_power_charges() {
        let mut c = TheveninCell::with_soc(
            BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0),
            0.5,
        );
        let out = c.step_power(-4.0, 1.0).unwrap();
        assert!(out.current_a < 0.0);
        assert!((out.delivered_w + 4.0).abs() < 0.05);
    }

    #[test]
    fn infeasible_power_reports_max() {
        let c = cell();
        let max = c.max_power_w();
        let err = c.current_for_power(1e6).unwrap_err();
        match err {
            BatteryError::PowerInfeasible { max_w, .. } => {
                // The theoretical quadratic max is ≥ the limit-capped max.
                assert!(max_w >= max * 0.99);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rc_branch_builds_and_relaxes() {
        let mut c = cell();
        for _ in 0..600 {
            c.step_current(2.0, 1.0).unwrap();
        }
        let sagged = c.terminal_voltage(0.0);
        let ocv = c.ocv();
        assert!(sagged < ocv, "RC branch should hold a voltage after load");
        c.rest(3600.0);
        let rested = c.terminal_voltage(0.0);
        assert!(rested > sagged);
        assert!((rested - ocv).abs() < 1e-3);
    }

    #[test]
    fn energy_accounting_consistent() {
        let mut c = cell();
        for _ in 0..360 {
            c.step_current(2.0, 1.0).unwrap();
        }
        assert!(c.energy_out_j() > 0.0);
        assert!(c.heat_j() > 0.0);
        // Delivered + heat ≈ chemical energy drawn (OCV integral), within a
        // few percent tolerance from the RC transient.
        let chem_j_approx = c.energy_out_j() + c.heat_j();
        let drawn_ah = 2.0 * 360.0 / 3600.0;
        let chem_j_expected = drawn_ah * 3600.0 * 4.2; // near-full OCV ≈ 4.2 V
        assert!((chem_j_approx / chem_j_expected - 1.0).abs() < 0.1);
    }

    #[test]
    fn heat_loss_fraction_matches_figure_1c_shapes() {
        let t2 = TheveninCell::new(BatterySpec::from_chemistry(
            "t2",
            Chemistry::Type2CoStandard,
            1.0,
        ));
        let t3 = TheveninCell::new(BatterySpec::from_chemistry(
            "t3",
            Chemistry::Type3CoPower,
            1.0,
        ));
        let t4 = TheveninCell::new(BatterySpec::from_chemistry(
            "t4",
            Chemistry::Type4Bendable,
            1.0,
        ));
        let f2 = t2.heat_loss_fraction_at_c_rate(2.0);
        let f3 = t3.heat_loss_fraction_at_c_rate(2.0);
        let f4 = t4.heat_loss_fraction_at_c_rate(2.0);
        // Figure 1c: Type 4 ≫ Type 2 > Type 3; Type 4 around 30 % at 2C.
        assert!(f4 > f2 && f2 > f3, "f4={f4} f2={f2} f3={f3}");
        assert!(f4 > 0.22 && f4 < 0.38, "f4={f4}");
        assert!(f2 < 0.10);
        // Loss grows with C-rate.
        assert!(t4.heat_loss_fraction_at_c_rate(2.0) > t4.heat_loss_fraction_at_c_rate(0.5));
    }

    #[test]
    fn remaining_energy_scales_with_soc() {
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        let full = TheveninCell::with_soc(spec.clone(), 1.0);
        let half = TheveninCell::with_soc(spec, 0.5);
        assert!(full.remaining_energy_wh() > half.remaining_energy_wh() * 1.8);
        assert!(half.remaining_energy_wh() > 0.0);
    }

    #[test]
    fn cycling_ages_the_cell() {
        let mut c = cell();
        // 20 full-ish cycles at 1C.
        for _ in 0..20 {
            while !c.is_empty() {
                c.step_current(2.0, 60.0).unwrap();
            }
            while !c.is_full() {
                c.step_current(-1.4, 60.0).unwrap();
            }
        }
        assert!(c.cycle_count() >= 20);
        assert!(c.effective_capacity_ah() < 2.0);
        assert!(c.wear_ratio() > 0.0);
    }

    #[test]
    fn self_discharge_over_a_month() {
        let mut c = cell();
        // 30 days of rest: ~2.5 % lost.
        for _ in 0..30 {
            c.rest(86_400.0);
        }
        assert!(c.soc() < 0.98 && c.soc() > 0.96, "soc = {}", c.soc());
        // A short rest is negligible.
        let mut c = cell();
        c.rest(600.0);
        assert!(c.soc() > 0.999_99);
    }

    #[test]
    fn cold_cell_is_more_resistive() {
        use crate::thermal::ThermalModel;
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        let warm = TheveninCell::new(spec.clone());
        let cold =
            TheveninCell::new(spec.clone()).with_thermal(ThermalModel::new(0.0, 10.0, 100.0));
        let hot = TheveninCell::new(spec).with_thermal(ThermalModel::new(40.0, 10.0, 100.0));
        assert!(cold.resistance_ohm() > 1.3 * warm.resistance_ohm());
        assert!(hot.resistance_ohm() < warm.resistance_ohm());
        assert_eq!(cold.temperature_c(), Some(0.0));
        assert_eq!(warm.temperature_c(), None);
    }

    #[test]
    fn sustained_load_self_heats_and_softens_resistance() {
        use crate::thermal::ThermalModel;
        let spec = BatterySpec::from_chemistry("t", Chemistry::Type2CoStandard, 2.0);
        // A cold cell under sustained 1.5C load warms up, and its
        // resistance drops back toward the warm value.
        let mut cell = TheveninCell::new(spec).with_thermal(ThermalModel::new(0.0, 20.0, 50.0));
        let r_cold = cell.resistance_ohm();
        for _ in 0..1800 {
            cell.step_current(3.0, 1.0).unwrap();
        }
        assert!(cell.temperature_c().unwrap() > 2.0, "self-heating happened");
        // Compare at the same SoC: rebuild a cold cell at this SoC.
        let r_now = cell.resistance_ohm();
        let mut reference =
            TheveninCell::new(cell.spec().clone()).with_thermal(ThermalModel::new(0.0, 20.0, 50.0));
        reference.set_soc(cell.soc());
        let r_ref_cold = reference.resistance_ohm();
        assert!(r_now < r_ref_cold, "warming lowered resistance");
        let _ = r_cold;
        // Resting cools the cell back down.
        cell.rest(36_000.0);
        assert!(cell.temperature_c().unwrap() < 1.0);
    }

    #[test]
    fn zero_current_step_is_inert() {
        let mut c = cell();
        let before = c.soc();
        let out = c.step_current(0.0, 3600.0).unwrap();
        assert_eq!(c.soc(), before);
        assert!(out.heat_w.abs() < 1e-12);
    }
}
