//! Property-based tests for the battery-model substrate (sdb-testkit
//! seeded-case harness).

use sdb_battery_model::aging::CycleCounter;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::curves::Curve;
use sdb_battery_model::spec::BatterySpec;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_testkit::{check, Gen};

fn arb_chemistry(g: &mut Gen) -> Chemistry {
    g.pick(&Chemistry::ALL)
}

/// Curve evaluation is always within the knot y range.
#[test]
fn curve_eval_within_bounds() {
    check(256, 0xB41_0001, |g| {
        let ys = g.vec_f64(-100.0, 100.0, 2..20);
        let x = g.f64_range(-10.0, 10.0);
        let pts: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 * 0.37, y))
            .collect();
        let c = Curve::new(pts).unwrap();
        let v = c.eval(x);
        assert!(v >= c.y_min() - 1e-9 && v <= c.y_max() + 1e-9);
    });
}

/// Inverting a strictly monotone curve round-trips through eval.
#[test]
fn curve_invert_roundtrip() {
    check(256, 0xB41_0002, |g| {
        let deltas = g.vec_f64(0.01, 5.0, 2..12);
        let t = g.f64_range(0.0, 1.0);
        let mut y = 0.0;
        let pts: Vec<(f64, f64)> = deltas
            .iter()
            .enumerate()
            .map(|(i, d)| {
                y += d;
                (i as f64, y)
            })
            .collect();
        let c = Curve::new(pts).unwrap();
        let target = c.y_min() + t * (c.y_max() - c.y_min());
        let x = c.invert(target).unwrap();
        assert!((c.eval(x) - target).abs() < 1e-6);
    });
}

/// SoC stays in [0, 1] under any bounded current sequence, and charge
/// bookkeeping is exact coulomb counting when no boundary is hit.
#[test]
fn soc_invariant_under_random_loads() {
    check(256, 0xB41_0003, |g| {
        let chem = arb_chemistry(g);
        let start = g.f64_range(0.0, 1.0);
        let loads = g.vec_f64(-1.0, 1.0, 1..60);
        let spec = BatterySpec::from_chemistry("p", chem, 2.0);
        let max_d = spec.max_discharge_a;
        let max_c = spec.max_charge_a;
        let mut cell = TheveninCell::with_soc(spec, start);
        for l in loads {
            let i = if l >= 0.0 { l * max_d } else { l * max_c };
            let _ = cell.step_current(i, 5.0);
            assert!((0.0..=1.0).contains(&cell.soc()));
        }
    });
}

/// Coulomb conservation: discharging then recharging the same coulombs
/// returns the cell to its starting SoC (modulo fade, which only shrinks
/// capacity after full cycles — excluded here by small throughput).
#[test]
fn coulomb_roundtrip() {
    check(256, 0xB41_0004, |g| {
        let chem = arb_chemistry(g);
        let amps = g.f64_range(0.05, 0.3);
        let seconds = g.f64_range(1.0, 200.0);
        let spec = BatterySpec::from_chemistry("p", chem, 2.0);
        let mut cell = TheveninCell::with_soc(spec, 0.6);
        cell.step_current(amps, seconds).unwrap();
        cell.step_current(-amps, seconds).unwrap();
        assert!((cell.soc() - 0.6).abs() < 1e-9);
    });
}

/// Heat is never negative and grows with the square of current.
#[test]
fn heat_positive_and_superlinear() {
    check(256, 0xB41_0005, |g| {
        let chem = arb_chemistry(g);
        let amps = g.f64_range(0.1, 1.0);
        let spec = BatterySpec::from_chemistry("p", chem, 2.0);
        let mut a = TheveninCell::with_soc(spec.clone(), 0.8);
        let mut b = TheveninCell::with_soc(spec, 0.8);
        let out1 = a.step_current(amps, 1.0).unwrap();
        let out2 = b.step_current(2.0 * amps, 1.0).unwrap();
        assert!(out1.heat_w >= 0.0);
        // Ohmic part quadruples; RC transient softens it, so require > 2x.
        assert!(out2.heat_w > 2.0 * out1.heat_w);
    });
}

/// Cycle counting: total cycles over any charge sequence equals
/// floor(total / 0.8) within one cycle.
#[test]
fn cycle_count_matches_total_charge() {
    check(256, 0xB41_0006, |g| {
        let fracs = g.vec_f64(0.0, 0.5, 1..50);
        let mut cc = CycleCounter::new();
        let mut total = 0.0;
        let mut counted = 0;
        for f in &fracs {
            total += f;
            counted += cc.on_charge(*f);
        }
        let expected = (total / 0.8).floor() as i64;
        assert!((i64::from(counted) - expected).abs() <= 1);
        assert_eq!(counted, cc.cycles());
    });
}

/// Terminal voltage under discharge is always below OCV; above under
/// charge.
#[test]
fn voltage_ordering() {
    check(256, 0xB41_0007, |g| {
        let chem = arb_chemistry(g);
        let soc = g.f64_range(0.1, 0.9);
        let frac = g.f64_range(0.05, 0.9);
        let spec = BatterySpec::from_chemistry("p", chem, 2.0);
        let i_d = frac * spec.max_discharge_a;
        let i_c = -frac * spec.max_charge_a;
        let cell = TheveninCell::with_soc(spec, soc);
        let ocv = cell.ocv();
        assert!(cell.terminal_voltage(i_d) < ocv);
        assert!(cell.terminal_voltage(i_c) > ocv);
    });
}

/// `current_for_power` and `step_power` agree with the quadratic model:
/// delivered power matches the request for feasible discharge loads.
#[test]
fn power_solve_consistent() {
    check(256, 0xB41_0008, |g| {
        let chem = arb_chemistry(g);
        let soc = g.f64_range(0.3, 1.0);
        let frac = g.f64_range(0.05, 0.5);
        let spec = BatterySpec::from_chemistry("p", chem, 2.0);
        let cell = TheveninCell::with_soc(spec, soc);
        let p = frac * cell.max_power_w();
        let i = cell.current_for_power(p).unwrap();
        let v = cell.terminal_voltage(i);
        assert!((v * i - p).abs() < 1e-6 * p.max(1.0));
    });
}
