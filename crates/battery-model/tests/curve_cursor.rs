//! Property tests: cursor-cached curve lookups are **bit-identical** to the
//! plain binary-search forms, for arbitrary curves and arbitrary query
//! histories (the cursor is a pure memo — whatever state a previous query
//! left it in must never change a result).

use sdb_battery_model::{Curve, CurveCursor};
use sdb_testkit::{check, Gen};

/// A random strictly-increasing-x curve with 2..=24 knots. Y values are
/// unconstrained (so non-monotone curves are common); with probability
/// 0.3 the y values are forced increasing (so the monotone invert fast
/// path gets exercised too), and flat segments are injected sometimes to
/// probe the `|y1 - y0| < EPSILON` branch of `invert`.
fn random_curve(g: &mut Gen) -> Curve {
    let n = g.usize_range(2, 25);
    let mut x = -5.0 + g.f64_range(0.0, 10.0);
    let monotone = g.chance(0.3);
    let mut y = g.f64_range(-2.0, 2.0);
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        pts.push((x, y));
        x += g.f64_range(1e-3, 2.0);
        if g.chance(0.1) {
            // Flat segment: keep y exactly.
        } else if monotone {
            y += g.f64_range(1e-6, 1.5);
        } else {
            y = g.f64_range(-2.0, 2.0);
        }
    }
    Curve::new(pts).expect("valid curve")
}

/// A query mixing smooth drift, jumps, exact knot hits, and out-of-range
/// probes — the access patterns the cursor must survive.
fn random_query(g: &mut Gen, curve: &Curve, prev: f64) -> f64 {
    let pts = curve.points();
    let (x0, x1) = (pts[0].0, pts[pts.len() - 1].0);
    match g.below(10) {
        // Drift near the previous query (the cursor's fast path).
        0..=4 => (prev + g.f64_range(-0.05, 0.05)).clamp(x0 - 0.5, x1 + 0.5),
        // Random jump anywhere in (and slightly beyond) the domain.
        5 | 6 => g.f64_range(x0 - 1.0, x1 + 1.0),
        // Exact knot hit.
        7 | 8 => pts[g.usize_range(0, pts.len())].0,
        // Far out of range (clamp path).
        _ => {
            if g.chance(0.5) {
                x0 - g.f64_range(0.0, 10.0)
            } else {
                x1 + g.f64_range(0.0, 10.0)
            }
        }
    }
}

#[test]
fn cached_eval_and_slope_match_plain_bit_for_bit() {
    check(256, 0x5EC0_11E1, |g: &mut Gen| {
        let curve = random_curve(g);
        let cursor = CurveCursor::new();
        let mut x = curve.points()[0].0;
        for _ in 0..64 {
            x = random_query(g, &curve, x);
            let (v_plain, s_plain) = (curve.eval(x), curve.slope(x));
            let v_cached = curve.eval_cached(&cursor, x);
            let s_cached = curve.slope_cached(&cursor, x);
            assert_eq!(
                v_plain.to_bits(),
                v_cached.to_bits(),
                "eval mismatch at x={x} on {curve:?}"
            );
            assert_eq!(
                s_plain.to_bits(),
                s_cached.to_bits(),
                "slope mismatch at x={x} on {curve:?}"
            );
        }
    });
}

#[test]
fn value_and_slope_matches_the_two_call_form() {
    check(256, 0x00C0_3B1D, |g: &mut Gen| {
        let curve = random_curve(g);
        let cursor = CurveCursor::new();
        let mut x = curve.points()[0].0;
        for _ in 0..64 {
            x = random_query(g, &curve, x);
            let (v, s) = curve.value_and_slope(x);
            assert_eq!(v.to_bits(), curve.eval(x).to_bits(), "value at x={x}");
            assert_eq!(s.to_bits(), curve.slope(x).to_bits(), "slope at x={x}");
            let (vc, sc) = curve.value_and_slope_cached(&cursor, x);
            assert_eq!(vc.to_bits(), v.to_bits(), "cached value at x={x}");
            assert_eq!(sc.to_bits(), s.to_bits(), "cached slope at x={x}");
        }
    });
}

#[test]
fn cached_invert_matches_plain_invert() {
    check(256, 0x0127_20CF, |g: &mut Gen| {
        let curve = random_curve(g);
        let cursor = CurveCursor::new();
        let pts = curve.points();
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..64 {
            let y = match g.below(4) {
                // In-range targets, including exact knot y values.
                0 | 1 => g.f64_range(lo - 0.1, hi + 0.1),
                2 => pts[g.usize_range(0, pts.len())].1,
                _ => g.f64_range(lo - 5.0, hi + 5.0),
            };
            let plain = curve.invert(y);
            let cached = curve.invert_cached(&cursor, y);
            match (plain, cached) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "invert({y}) on {curve:?}");
                }
                _ => panic!("invert({y}): plain={plain:?} cached={cached:?} on {curve:?}"),
            }
        }
    });
}

#[test]
fn lut_stays_within_its_reported_error_bound() {
    check(128, 0x0107_B0BD, |g: &mut Gen| {
        let curve = random_curve(g);
        let cells = g.usize_range(1, 200);
        let lut = curve.to_lut(cells);
        let bound = lut.max_abs_error(&curve);
        let pts = curve.points();
        let (x0, x1) = (pts[0].0, pts[pts.len() - 1].0);
        for _ in 0..64 {
            let x = g.f64_range(x0 - 1.0, x1 + 1.0);
            let err = (lut.eval(x) - curve.eval(x)).abs();
            // Small slop: the bound is computed at breakpoints; sampled
            // interior points can exceed it only by rounding noise.
            assert!(
                err <= bound * (1.0 + 1e-12) + 1e-12,
                "lut error {err} exceeds bound {bound} at x={x}"
            );
        }
    });
}
