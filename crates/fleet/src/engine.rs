//! The parallel fleet driver.
//!
//! Work distribution is a single atomic index over `0..devices`: each
//! `std::thread::scope` worker claims the next device, runs its full
//! simulation, and appends the outcome to a shard-local vector. Nothing is
//! shared between shards on the hot path — each shard has its own
//! [`Observer`] (metrics registry + span histograms), merged only after
//! join. Because every device outcome is a pure function of
//! `(FleetSpec, device index)` and the merge re-orders outcomes by device
//! index, the resulting [`FleetReport`] is bit-identical for any worker
//! count, including 1.

use crate::batch::{EngineKind, SoaScratch};
use crate::report::FleetReport;
use crate::sketches::FleetSketches;
use crate::spec::{FleetSpec, PolicySpec};
use sdb_core::metrics::{ccb, wear_ratios};
use sdb_core::policy::{DischargeDirective, PreservePolicy};
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{run_trace, run_trace_planned};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_observe::{DeviceEvent, MetricsRegistry, Observer, SpanName, TraceCollector};
use sdb_policy::{HistoryForecaster, Planner, PlannerConfig};
use sdb_workloads::traces::Trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Seed offset separating a planned cohort's forecast warm-up days from
/// the evaluated trace, so planners train on the device's *habit*, never
/// on the day being judged.
const PLANNER_HISTORY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How many previous days a planned cohort's forecaster folds in.
const PLANNER_HISTORY_DAYS: u64 = 7;

/// The per-device result the merge aggregates. Everything here is a pure
/// function of `(spec, device)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOutcome {
    /// Device index in `0..spec.devices`.
    pub device: u64,
    /// Index into `spec.cohorts`.
    pub cohort: usize,
    /// Effective battery life: time to first brownout, or the full span.
    pub life_s: f64,
    /// Whether the device browned out before its trace ended.
    pub browned_out: bool,
    /// Simulated span, seconds.
    pub simulated_s: f64,
    /// Energy delivered to the load, joules.
    pub supplied_j: f64,
    /// Load energy that went unserved, joules.
    pub unmet_j: f64,
    /// Circuit (power-electronics) losses, joules.
    pub circuit_loss_j: f64,
    /// Cell resistive heat, joules.
    pub cell_heat_j: f64,
    /// Cycle Count Balance of the pack at end of trace (1.0 = balanced).
    pub wear_ccb: f64,
    /// Mean final state of charge across the pack.
    pub mean_final_soc: f64,
}

/// Wall-clock facts about one fleet run. Deliberately kept out of
/// [`FleetReport`]: everything in here may differ between runs and thread
/// counts.
#[derive(Debug)]
pub struct FleetRunStats {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Device simulations completed per wall-clock second.
    pub devices_per_sec: f64,
    /// The merged per-shard registries: counter totals, gauges, and the
    /// span latency histograms (including [`SpanName::FleetDevice`]).
    pub registry: MetricsRegistry,
    /// Merged streaming quantile sketches over the per-device outcome
    /// metrics. Deterministic (commutative merge), but kept out of the
    /// report: the exact nearest-rank percentiles there are canonical and
    /// the sketch is the O(1)-memory streaming view.
    pub sketches: FleetSketches,
}

/// Builds and runs one device, recording into the shard's observer.
pub(crate) fn run_device(spec: &FleetSpec, device: u64, obs: &Observer) -> DeviceOutcome {
    let cohort_idx = spec.cohort_of(device);
    let cohort = &spec.cohorts[cohort_idx];
    let seed = spec.device_seed(device);

    // Instantiate the shared pack template. The specs live behind `Arc`
    // and the builder accepts the handle directly, so no per-device spec
    // copy is made.
    let mut builder = PackBuilder::new();
    for slot in &cohort.pack.batteries {
        builder = builder.battery_at(slot.spec.clone(), slot.initial_soc, slot.profile);
    }
    let mut micro: Microcontroller = builder.build();
    micro.set_observer(obs.clone());

    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_observer(obs.clone());
    runtime.set_update_period(cohort.update_period_s);
    // The trace is materialized before the policy because the planner
    // modes need it (the oracle plans over it, and both planners only
    // make sense relative to a concrete workload).
    let trace = cohort.workload.build(seed);
    let result = match cohort.policy {
        PolicySpec::Blend(v) => {
            runtime.set_discharge_directive(DischargeDirective::new(v));
            run_trace(&mut micro, &mut runtime, &trace, &spec.sim)
        }
        PolicySpec::Preserve {
            efficient,
            inefficient,
            threshold_w,
        } => {
            runtime.set_preserve(Some(PreservePolicy::new(
                efficient,
                inefficient,
                threshold_w,
            )));
            run_trace(&mut micro, &mut runtime, &trace, &spec.sim)
        }
        PolicySpec::Planned {
            horizon_s,
            replan_s,
        } => {
            let history: Vec<Arc<Trace>> = (1..=PLANNER_HISTORY_DAYS)
                .map(|k| {
                    cohort
                        .workload
                        .build(seed.wrapping_add(k.wrapping_mul(PLANNER_HISTORY_SALT)))
                })
                .collect();
            let forecaster = HistoryForecaster::from_history(history.iter().map(Arc::as_ref), 0.3);
            let cfg = PlannerConfig {
                horizon_s,
                replan_period_s: replan_s,
                update_period_s: cohort.update_period_s,
                ..PlannerConfig::default()
            };
            let mut planner = Planner::new(cfg, Box::new(forecaster));
            run_trace_planned(&mut micro, &mut runtime, &trace, &spec.sim, &mut planner)
        }
        PolicySpec::Oracle => {
            let cfg = PlannerConfig {
                candidates: 17,
                update_period_s: cohort.update_period_s,
                ..PlannerConfig::default()
            };
            let mut planner = Planner::oracle(cfg, Arc::clone(&trace));
            run_trace_planned(&mut micro, &mut runtime, &trace, &spec.sim, &mut planner)
        }
    };

    outcome_from(&micro, device, cohort_idx, &result)
}

/// Folds a finished device run into its [`DeviceOutcome`] (shared by the
/// scalar and SoA drivers).
pub(crate) fn outcome_from(
    micro: &Microcontroller,
    device: u64,
    cohort_idx: usize,
    result: &sdb_core::scheduler::SimResult,
) -> DeviceOutcome {
    let statuses = micro.query_battery_status();
    let cycle_counts: Vec<u32> = statuses.iter().map(|s| s.cycle_count).collect();
    let specs: Vec<&sdb_battery_model::spec::BatterySpec> =
        micro.cells().iter().map(|c| c.spec()).collect();
    let wear = wear_ratios(&cycle_counts, &specs);
    let n = result.final_soc.len().max(1) as f64;

    DeviceOutcome {
        device,
        cohort: cohort_idx,
        life_s: result.battery_life_s(),
        browned_out: result.first_brownout_s.is_some(),
        simulated_s: result.simulated_s,
        supplied_j: result.supplied_j,
        unmet_j: result.unmet_j,
        circuit_loss_j: result.circuit_loss_j,
        cell_heat_j: result.cell_heat_j,
        wear_ccb: ccb(&wear),
        mean_final_soc: result.final_soc.iter().sum::<f64>() / n,
    }
}

/// Runs the fleet across `threads` workers and merges the outcomes into a
/// deterministic [`FleetReport`] plus wall-clock [`FleetRunStats`].
///
/// # Errors
///
/// Returns the spec validation error, or a message if a worker panicked.
pub fn run_fleet(spec: &FleetSpec, threads: usize) -> Result<(FleetReport, FleetRunStats), String> {
    let (report, stats, _) = run_fleet_captured(spec, threads, false)?;
    Ok((report, stats))
}

/// [`run_fleet`] with an explicit engine choice: the tick-by-tick scalar
/// reference, or the SoA fast path ([`crate::batch`]) that fast-forwards
/// quiescent devices within a documented bound. Either engine's report is
/// bit-identical at any thread count.
///
/// # Errors
///
/// Returns the spec validation error, or a message if a worker panicked.
pub fn run_fleet_with_engine(
    spec: &FleetSpec,
    threads: usize,
    engine: EngineKind,
) -> Result<(FleetReport, FleetRunStats), String> {
    let (report, stats, _) = run_fleet_inner_with(spec, threads, false, None, engine)?;
    Ok((report, stats))
}

/// [`run_fleet_captured`] with an explicit engine choice.
///
/// # Errors
///
/// As [`run_fleet_with_engine`]; additionally, event capture requires the
/// scalar engine (fast-forwarded ticks emit no step events, so a captured
/// SoA stream would be silently incomplete).
pub fn run_fleet_captured_with_engine(
    spec: &FleetSpec,
    threads: usize,
    capture_events: bool,
    engine: EngineKind,
) -> Result<(FleetReport, FleetRunStats, Option<Vec<DeviceEvent>>), String> {
    run_fleet_inner_with(spec, threads, capture_events, None, engine)
}

/// [`run_fleet`], optionally capturing the full device-tagged event stream.
///
/// With `capture_events`, every shard observer gets a [`TraceCollector`]
/// sink; each device's events are tagged `(device, seq)` and the merged
/// stream is returned sorted by that key — so the serialized trace is
/// byte-identical for any thread count. Capture retains every event in
/// memory; budget roughly one `StepSample` per simulation step per device.
///
/// # Errors
///
/// Returns the spec validation error, or a message if a worker panicked.
pub fn run_fleet_captured(
    spec: &FleetSpec,
    threads: usize,
    capture_events: bool,
) -> Result<(FleetReport, FleetRunStats, Option<Vec<DeviceEvent>>), String> {
    run_fleet_inner(spec, threads, capture_events, None)
}

/// [`run_fleet_captured`] with a caller-supplied **live** metrics
/// registry: every shard registers into `live` directly, so counters
/// (devices completed, ratio pushes, dropped events) are visible to
/// concurrent scrapers — the `sdb serve` `/metrics` endpoint — while the
/// run progresses, instead of appearing only after the post-join merge.
///
/// Determinism: the [`FleetReport`] embeds only counter totals and those
/// are sums of atomic increments — commutative, so sharing one registry
/// across shards yields exactly the totals the per-shard merge would.
/// Span histograms likewise add commutatively. Gauges become
/// last-write-wins across shards (the merge's max-rule doesn't apply);
/// they are wall-clock-adjacent live views and stay quarantined in
/// [`FleetRunStats`], never in the report — which therefore remains
/// bit-identical at any thread count.
///
/// # Errors
///
/// Returns the spec validation error, or a message if a worker panicked.
pub fn run_fleet_live(
    spec: &FleetSpec,
    threads: usize,
    capture_events: bool,
    live: &MetricsRegistry,
) -> Result<(FleetReport, FleetRunStats, Option<Vec<DeviceEvent>>), String> {
    run_fleet_inner(spec, threads, capture_events, Some(live))
}

fn run_fleet_inner(
    spec: &FleetSpec,
    threads: usize,
    capture_events: bool,
    live: Option<&MetricsRegistry>,
) -> Result<(FleetReport, FleetRunStats, Option<Vec<DeviceEvent>>), String> {
    run_fleet_inner_with(spec, threads, capture_events, live, EngineKind::Scalar)
}

fn run_fleet_inner_with(
    spec: &FleetSpec,
    threads: usize,
    capture_events: bool,
    live: Option<&MetricsRegistry>,
    engine: EngineKind,
) -> Result<(FleetReport, FleetRunStats, Option<Vec<DeviceEvent>>), String> {
    spec.validate()?;
    if capture_events && engine == EngineKind::Soa {
        return Err(
            "event capture requires the scalar engine (--engine scalar): fast-forwarded \
             ticks emit no step events"
                .to_owned(),
        );
    }
    let threads = threads.max(1);
    let start = Instant::now();
    // Main-thread orchestration scope; worker device trees flush into the
    // same global aggregate as sibling roots (device work is parallel to
    // the orchestrator, not "inside" its wall time).
    let prof_run = sdb_prof::scope(sdb_prof::Phase::FleetRun);
    let next = AtomicUsize::new(0);

    type Shard = (
        Vec<DeviceOutcome>,
        Observer,
        FleetSketches,
        Option<Vec<DeviceEvent>>,
    );
    let shards: Vec<Shard> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                let next = &next;
                s.spawn(move || {
                    // Shard attribution is wall-clock-quarantined: the
                    // shard → device assignment depends on the thread
                    // count and scheduling.
                    sdb_prof::set_shard(shard as u16);
                    let obs = match live {
                        Some(registry) => Observer::with_registry(registry.clone()),
                        None => Observer::new(),
                    };
                    let collector = if capture_events {
                        let shared = TraceCollector::shared();
                        obs.add_sink(Box::new(shared.clone()));
                        Some(shared)
                    } else {
                        None
                    };
                    let devices_done = obs
                        .registry()
                        .expect("fresh observer has a registry")
                        .counter("sdb_fleet_devices_total", &[]);
                    let mut sketches = FleetSketches::new();
                    // SoA lane arrays are shard-local and reused across
                    // the shard's devices.
                    let mut soa_scratch =
                        (engine == EngineKind::Soa).then(|| SoaScratch::new(spec.cohorts.len()));
                    // Pre-size for the even-split case; the queue handles skew.
                    let mut outcomes = Vec::with_capacity(spec.devices / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= spec.devices {
                            break;
                        }
                        if let Some(c) = &collector {
                            c.lock().expect("collector lock").set_device(i as u64);
                        }
                        // The observer is shared across this shard's devices;
                        // reset the sim clock so a device's pre-step events
                        // (t = 0 ratio pushes) aren't stamped with the
                        // previous device's end time — which would differ by
                        // shard layout and break trace determinism.
                        obs.set_clock(0.0);
                        let span = obs.span(SpanName::FleetDevice);
                        // The device scope resets the sampling gate (hot
                        // ticks are a function of the device, not the
                        // worker) and flushes this device's phase tree on
                        // drop, tagged with shard + cohort.
                        let prof_dev = if sdb_prof::enabled() {
                            let name = &spec.cohorts[spec.cohort_of(i as u64)].name;
                            sdb_prof::device_scope(sdb_prof::cohort_id(name))
                        } else {
                            sdb_prof::device_scope(0)
                        };
                        let outcome = match soa_scratch.as_mut() {
                            Some(scratch) => {
                                crate::batch::run_device_soa(spec, i as u64, &obs, scratch)
                            }
                            None => run_device(spec, i as u64, &obs),
                        };
                        drop(prof_dev);
                        drop(span);
                        sketches.observe(&outcome);
                        outcomes.push(outcome);
                        devices_done.inc();
                    }
                    let events = collector.map(|c| c.lock().expect("collector lock").drain());
                    (outcomes, obs, sketches, events)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "fleet worker panicked".to_owned()))
            .collect::<Result<Vec<_>, String>>()
    })?;

    // Deterministic merge: shard order and shard contents depend on
    // scheduling, so re-establish device order before any aggregation.
    // Sketches merge commutatively, so shard order is irrelevant there.
    let prof_merge = sdb_prof::scope(sdb_prof::Phase::ReportMerge);
    let mut outcomes: Vec<DeviceOutcome> = Vec::with_capacity(spec.devices);
    // In live mode every shard already wrote into the shared registry, so
    // "merging" it per shard would double-count; just adopt the handle.
    let merged = live.map_or_else(MetricsRegistry::new, MetricsRegistry::clone);
    let mut sketches = FleetSketches::new();
    let mut events: Option<Vec<DeviceEvent>> = capture_events.then(Vec::new);
    for (shard_outcomes, obs, shard_sketches, shard_events) in shards {
        outcomes.extend(shard_outcomes);
        if live.is_none() {
            if let Some(reg) = obs.registry() {
                merged.merge_from(reg);
            }
        }
        sketches.merge_from(&shard_sketches);
        if let (Some(all), Some(shard)) = (events.as_mut(), shard_events) {
            all.extend(shard);
        }
    }
    outcomes.sort_unstable_by_key(|o| o.device);
    debug_assert!(outcomes
        .iter()
        .enumerate()
        .all(|(i, o)| o.device == i as u64));
    if let Some(all) = events.as_mut() {
        all.sort_by_key(|e| (e.device, e.seq));
    }

    let report = FleetReport::from_outcomes(spec, &outcomes, &merged);
    drop(prof_merge);
    drop(prof_run);
    if sdb_prof::enabled() {
        sdb_prof::flush_thread();
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = FleetRunStats {
        threads,
        wall_s,
        devices_per_sec: spec.devices as f64 / wall_s.max(1e-9),
        registry: merged,
        sketches,
    };
    Ok((report, stats, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CohortSpec, PackTemplate, WorkloadSpec};
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_core::scheduler::SimOptions;
    use sdb_emulator::profile::ProfileKind;
    use sdb_workloads::traces::Trace;
    use std::sync::Arc;

    fn tiny_spec(devices: usize) -> FleetSpec {
        FleetSpec {
            devices,
            master_seed: 77,
            cohorts: vec![CohortSpec {
                name: "tiny".to_owned(),
                weight: 1.0,
                pack: PackTemplate::new(vec![
                    (
                        BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                        1.0,
                        ProfileKind::Standard,
                    ),
                    (
                        BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                        1.0,
                        ProfileKind::Fast,
                    ),
                ]),
                workload: WorkloadSpec::Shared(Arc::new(Trace::constant(5.0, 1800.0))),
                policy: PolicySpec::Blend(0.9),
                update_period_s: 60.0,
            }],
            sim: SimOptions::default(),
        }
    }

    #[test]
    fn engine_runs_every_device_exactly_once() {
        let (report, stats) = run_fleet(&tiny_spec(17), 4).unwrap();
        assert_eq!(report.devices, 17);
        assert_eq!(stats.threads, 4);
        // The merged fleet counter saw each device once.
        let totals = stats.registry.counter_totals();
        let fleet = totals
            .iter()
            .find(|(name, _)| name == "sdb_fleet_devices_total")
            .expect("fleet counter present");
        assert_eq!(fleet.1, 17);
    }

    #[test]
    fn zero_devices_is_an_error() {
        assert!(run_fleet(&tiny_spec(0), 2).is_err());
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let spec = tiny_spec(12);
        let (r1, _) = run_fleet(&spec, 1).unwrap();
        let (r3, _) = run_fleet(&spec, 3).unwrap();
        assert_eq!(r1, r3);
        assert_eq!(r1.to_json(), r3.to_json());
    }

    #[test]
    fn planner_policies_are_thread_invariant() {
        // Planner cohorts do rollout work inside run_device; the report
        // (and the captured event stream, which now carries plan_commit
        // events) must still be bit-identical for any worker count.
        for policy in [
            PolicySpec::Planned {
                horizon_s: 1800.0,
                replan_s: 600.0,
            },
            PolicySpec::Oracle,
        ] {
            let spec = tiny_spec(8).with_policy(policy);
            let (r1, _, e1) = run_fleet_captured(&spec, 1, true).unwrap();
            let (r4, _, e4) = run_fleet_captured(&spec, 4, true).unwrap();
            assert_eq!(r1, r4);
            assert_eq!(r1.to_json(), r4.to_json());
            assert_eq!(e1, e4);
            let events = e1.unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e.event, sdb_observe::ObsEvent::PlanCommit { .. })),
                "planner cohorts must emit plan_commit events"
            );
        }
    }

    #[test]
    fn captured_events_are_device_sorted_and_thread_invariant() {
        let spec = tiny_spec(9);
        let (_, _, e1) = run_fleet_captured(&spec, 1, true).unwrap();
        let (_, _, e4) = run_fleet_captured(&spec, 4, true).unwrap();
        let e1 = e1.unwrap();
        let e4 = e4.unwrap();
        assert!(!e1.is_empty());
        assert_eq!(e1, e4);
        // Sorted by (device, seq) with seq restarting at 0 per device.
        for w in e1.windows(2) {
            assert!((w[0].device, w[0].seq) < (w[1].device, w[1].seq));
        }
        let devices: std::collections::BTreeSet<u64> = e1.iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 9);
        // Without capture, no events and no collector overhead.
        let (_, _, none) = run_fleet_captured(&spec, 2, false).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn live_registry_matches_merged_counters_and_keeps_the_report_identical() {
        let spec = tiny_spec(12);
        let (r_merged, s_merged, _) = run_fleet_captured(&spec, 3, false).unwrap();
        let live = MetricsRegistry::new();
        let (r_live, s_live, _) = run_fleet_live(&spec, 3, false, &live).unwrap();
        assert_eq!(r_merged, r_live);
        assert_eq!(r_merged.to_json(), r_live.to_json());
        // The stats registry is the caller's live registry, and its
        // counter totals equal the per-shard-merge totals exactly.
        assert_eq!(s_live.registry.counter_totals(), live.counter_totals());
        assert_eq!(s_merged.registry.counter_totals(), live.counter_totals());
        // Thread count still doesn't change the report in live mode.
        let (r1, _, _) = run_fleet_live(&spec, 1, false, &MetricsRegistry::new()).unwrap();
        assert_eq!(r1, r_live);
    }

    #[test]
    fn stats_sketches_track_the_exact_report_percentiles() {
        let spec = tiny_spec(40);
        let (report, stats, _) = run_fleet_captured(&spec, 3, false).unwrap();
        assert_eq!(stats.sketches.count(), 40);
        for d in stats.sketches.deltas(&report) {
            assert!(
                d.rel_err <= crate::sketches::FLEET_SKETCH_ALPHA,
                "{} q{}: exact {} sketch {} rel_err {}",
                d.metric,
                d.quantile,
                d.exact,
                d.sketch,
                d.rel_err
            );
        }
    }

    #[test]
    fn outcomes_match_a_direct_single_device_run() {
        // Fleet of one, shared trace: identical to calling run_trace directly.
        let spec = tiny_spec(1);
        let (report, _) = run_fleet(&spec, 2).unwrap();

        let cohort = &spec.cohorts[0];
        let mut builder = PackBuilder::new();
        for slot in &cohort.pack.batteries {
            builder = builder.battery_at(slot.spec.clone(), slot.initial_soc, slot.profile);
        }
        let mut micro = builder.build();
        let mut rt = SdbRuntime::new(2);
        rt.set_discharge_directive(DischargeDirective::new(0.9));
        rt.set_update_period(60.0);
        let trace = cohort.workload.build(spec.device_seed(0));
        let direct = run_trace(&mut micro, &mut rt, &trace, &spec.sim);

        assert_eq!(
            report.life_s.mean.to_bits(),
            direct.battery_life_s().to_bits()
        );
        assert_eq!(
            report.supplied_j_total.to_bits(),
            direct.supplied_j.to_bits()
        );
    }
}
