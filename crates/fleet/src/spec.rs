//! Declarative fleet populations.
//!
//! A fleet is a weighted mixture of cohorts. Each cohort names a pack
//! template (battery specs shared behind `Arc` so a ten-thousand-device
//! cohort builds its specs once), a workload family, and a policy. Device
//! `i` of the fleet is assigned a cohort and a private RNG stream purely
//! from `(master_seed, i)`, so the population — and therefore the whole
//! fleet report — is reproducible from one integer.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::library;
use sdb_battery_model::spec::BatterySpec;
use sdb_core::scheduler::SimOptions;
use sdb_emulator::profile::ProfileKind;
use sdb_rng::{derive_seed, DetRng};
use sdb_workloads::traces::Trace;
use sdb_workloads::Activity;
use std::sync::Arc;

/// Stream-salt so cohort assignment draws are decorrelated from the
/// device's own simulation stream.
const COHORT_SALT: u64 = 0xC0C0_57A7_5DB0_F1EE;

/// One battery slot of a pack template.
#[derive(Debug, Clone)]
pub struct BatterySlot {
    /// The (immutable, shared) electrochemical spec.
    pub spec: Arc<BatterySpec>,
    /// Initial state of charge in `[0, 1]`.
    pub initial_soc: f64,
    /// Charging profile installed in the slot.
    pub profile: ProfileKind,
}

/// A pack configuration shared by every device of a cohort. The specs are
/// behind `Arc`: building the template costs one spec construction per
/// slot no matter how many devices instantiate it.
#[derive(Debug, Clone)]
pub struct PackTemplate {
    /// The slots, in hardware order.
    pub batteries: Vec<BatterySlot>,
}

impl PackTemplate {
    /// A template from `(spec, initial_soc, profile)` triples.
    #[must_use]
    pub fn new(slots: Vec<(BatterySpec, f64, ProfileKind)>) -> Self {
        Self {
            batteries: slots
                .into_iter()
                .map(|(spec, initial_soc, profile)| BatterySlot {
                    spec: Arc::new(spec),
                    initial_soc,
                    profile,
                })
                .collect(),
        }
    }

    /// The same pack shape with each slot's chemistry substituted: slot
    /// `i` takes `chems[i % chems.len()]`, keeping its capacity, initial
    /// SoC, and charging profile. This is the chemistry axis of the
    /// campaign matrix — one scenario's pack swept across the chemistry
    /// library without disturbing the rest of the cell configuration.
    ///
    /// # Panics
    ///
    /// Panics if `chems` is empty.
    #[must_use]
    pub fn with_chemistries(&self, chems: &[Chemistry]) -> Self {
        assert!(!chems.is_empty(), "chemistry substitution needs a value");
        Self {
            batteries: self
                .batteries
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    let chem = chems[i % chems.len()];
                    BatterySlot {
                        spec: Arc::new(BatterySpec::from_chemistry(
                            &slot.spec.name,
                            chem,
                            slot.spec.capacity_ah,
                        )),
                        initial_soc: slot.initial_soc,
                        profile: slot.profile,
                    }
                })
                .collect(),
        }
    }

    /// The paper's §5.2 watch: 200 mAh Li-ion + 200 mAh bendable strap.
    #[must_use]
    pub fn watch() -> Self {
        Self::new(vec![
            (
                library::watch_li_ion().spec().clone(),
                1.0,
                ProfileKind::Standard,
            ),
            (
                library::watch_bendable().spec().clone(),
                1.0,
                ProfileKind::Gentle,
            ),
        ])
    }

    /// A phone pack: 3 Ah high-energy + 1 Ah high-power.
    #[must_use]
    pub fn phone() -> Self {
        Self::new(vec![
            (
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 3.0),
                1.0,
                ProfileKind::Standard,
            ),
            (
                BatterySpec::from_chemistry("high-power", Chemistry::Type3CoPower, 1.0),
                1.0,
                ProfileKind::Fast,
            ),
        ])
    }

    /// The §5.1 tablet hybrid: 4 Ah high-energy + 4 Ah fast-charge.
    #[must_use]
    pub fn tablet_hybrid() -> Self {
        Self::new(vec![
            (
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 4.0),
                1.0,
                ProfileKind::Standard,
            ),
            (
                BatterySpec::from_chemistry("fast-charge", Chemistry::Type3CoPower, 4.0),
                1.0,
                ProfileKind::Fast,
            ),
        ])
    }
}

/// The workload family a cohort's devices run. Seeded families draw the
/// device's private seed, so two devices of one cohort live different
/// days; [`WorkloadSpec::Shared`] replays one `Arc`'d trace on every
/// device (built once per cohort).
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Every device replays the same trace.
    Shared(Arc<Trace>),
    /// The Figure 13 watch day, seeded per device.
    WatchDay {
        /// Hour of the one-hour GPS run (`None` = no run).
        run_hour: Option<f64>,
    },
    /// The smartphone day, seeded per device.
    PhoneDay,
    /// A tablet mixed-activity session, seeded per device.
    TabletMixed {
        /// Seconds per activity segment.
        segment_s: f64,
        /// Total session length, seconds.
        total_s: f64,
    },
    /// Any workload clipped to a maximum duration (the last segment is
    /// shortened to land exactly on the boundary).
    Truncated {
        /// The workload being clipped.
        inner: Box<WorkloadSpec>,
        /// Maximum trace duration, seconds.
        max_s: f64,
    },
}

impl WorkloadSpec {
    /// Materializes the trace for one device. `seed` is the device's
    /// private stream seed.
    #[must_use]
    pub fn build(&self, seed: u64) -> Arc<Trace> {
        match self {
            WorkloadSpec::Shared(t) => Arc::clone(t),
            WorkloadSpec::WatchDay { run_hour } => {
                Arc::new(sdb_workloads::traces::watch_day(seed, *run_hour))
            }
            WorkloadSpec::PhoneDay => Arc::new(sdb_workloads::traces::phone_day(seed)),
            WorkloadSpec::TabletMixed { segment_s, total_s } => {
                Arc::new(sdb_workloads::traces::tablet_session(
                    seed,
                    &[Activity::Network, Activity::Compute, Activity::Interactive],
                    *segment_s,
                    *total_s,
                ))
            }
            WorkloadSpec::Truncated { inner, max_s } => {
                let full = inner.build(seed);
                if full.duration_s() <= *max_s {
                    return full;
                }
                let mut clipped = Trace::new();
                let mut remaining = *max_s;
                for p in full.points() {
                    if remaining <= 0.0 {
                        break;
                    }
                    let dur = p.dur_s.min(remaining);
                    clipped.push(p.load_w, p.external_w, dur);
                    remaining -= dur;
                }
                Arc::new(clipped)
            }
        }
    }
}

/// The policy a cohort's runtime applies.
#[derive(Debug, Clone, Copy)]
pub enum PolicySpec {
    /// A fixed discharge-directive blend (0 = CCB/longevity, 1 = RBL).
    Blend(f64),
    /// The workload-aware watch preserve policy.
    Preserve {
        /// Index of the efficient battery.
        efficient: usize,
        /// Index of the inefficient (strap) battery.
        inefficient: usize,
        /// Load threshold (watts) above which the efficient cell engages.
        threshold_w: f64,
    },
    /// The `sdb-policy` receding-horizon planner: a history forecaster
    /// warm-started from previous days of the cohort's own workload
    /// family steers the directive through rollout planning.
    Planned {
        /// Lookahead horizon, seconds.
        horizon_s: f64,
        /// Re-plan cadence, seconds.
        replan_s: f64,
    },
    /// The perfect-forecast oracle planner over each device's own trace —
    /// the upper bound on what any forecast-driven policy could achieve.
    Oracle,
}

/// One weighted cohort of the fleet.
#[derive(Debug, Clone)]
pub struct CohortSpec {
    /// Human-readable cohort name (appears in the report).
    pub name: String,
    /// Relative weight of the cohort in the population (need not sum to 1).
    pub weight: f64,
    /// The pack every device of the cohort carries.
    pub pack: PackTemplate,
    /// The workload family the cohort runs.
    pub workload: WorkloadSpec,
    /// The policy the cohort's runtime applies.
    pub policy: PolicySpec,
    /// Runtime policy re-evaluation period, seconds.
    pub update_period_s: f64,
}

/// A full fleet description: how many devices, which cohorts, the master
/// seed, and the simulation options shared by every device.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Master seed; every per-device stream is derived from it.
    pub master_seed: u64,
    /// The weighted cohort mixture.
    pub cohorts: Vec<CohortSpec>,
    /// Simulation options applied to every device.
    pub sim: SimOptions,
}

impl FleetSpec {
    /// A heterogeneous default population: phone commuters (50 %), watch
    /// runners under the preserve policy (30 %), and tablet hybrids on
    /// pure RBL (20 %) — one cohort per Section 5 scenario family.
    #[must_use]
    pub fn default_population(devices: usize, master_seed: u64) -> Self {
        Self {
            devices,
            master_seed,
            cohorts: vec![
                CohortSpec {
                    name: "phone-commuter".to_owned(),
                    weight: 0.5,
                    pack: PackTemplate::phone(),
                    workload: WorkloadSpec::PhoneDay,
                    policy: PolicySpec::Blend(0.5),
                    update_period_s: 60.0,
                },
                CohortSpec {
                    name: "watch-runner".to_owned(),
                    weight: 0.3,
                    pack: PackTemplate::watch(),
                    workload: WorkloadSpec::WatchDay {
                        run_hour: Some(9.0),
                    },
                    policy: PolicySpec::Preserve {
                        efficient: 0,
                        inefficient: 1,
                        threshold_w: 0.3,
                    },
                    update_period_s: 60.0,
                },
                CohortSpec {
                    name: "tablet-hybrid".to_owned(),
                    weight: 0.2,
                    pack: PackTemplate::tablet_hybrid(),
                    workload: WorkloadSpec::TabletMixed {
                        segment_s: 300.0,
                        total_s: 4.0 * 3600.0,
                    },
                    policy: PolicySpec::Blend(1.0),
                    update_period_s: 60.0,
                },
            ],
            sim: SimOptions::default(),
        }
    }

    /// Replaces every cohort's policy with `policy` — how `sdb fleet
    /// --policy planned|oracle` pits the lookahead planners against the
    /// default population's greedy mix on identical packs and workloads.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        for cohort in &mut self.cohorts {
            cohort.policy = policy;
        }
        self
    }

    /// Clips every cohort's workload to the first `hours` hours (each
    /// device still runs its own cohort-appropriate trace) — handy for
    /// benches and smoke tests where a full 24 h day per device is
    /// overkill.
    #[must_use]
    pub fn with_hours(mut self, hours: f64) -> Self {
        for cohort in &mut self.cohorts {
            let inner = std::mem::replace(
                &mut cohort.workload,
                WorkloadSpec::Shared(Arc::new(Trace::constant(0.0, 1.0))),
            );
            cohort.workload = match inner {
                // Already truncated: tighten the bound instead of nesting.
                WorkloadSpec::Truncated { inner, max_s } => WorkloadSpec::Truncated {
                    inner,
                    max_s: max_s.min(hours * 3600.0),
                },
                other => WorkloadSpec::Truncated {
                    inner: Box::new(other),
                    max_s: hours * 3600.0,
                },
            };
        }
        self
    }

    /// Validates the spec: at least one device and one cohort, positive
    /// total weight, valid per-cohort fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("fleet needs at least one device".to_owned());
        }
        if self.cohorts.is_empty() {
            return Err("fleet needs at least one cohort".to_owned());
        }
        let total: f64 = self.cohorts.iter().map(|c| c.weight).sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(format!(
                "cohort weights must sum to a positive value, got {total}"
            ));
        }
        for c in &self.cohorts {
            if !(c.weight.is_finite() && c.weight >= 0.0) {
                return Err(format!(
                    "cohort `{}` has invalid weight {}",
                    c.name, c.weight
                ));
            }
            if c.pack.batteries.is_empty() {
                return Err(format!("cohort `{}` has an empty pack", c.name));
            }
            if c.update_period_s <= 0.0 {
                return Err(format!(
                    "cohort `{}` has non-positive update period",
                    c.name
                ));
            }
        }
        Ok(())
    }

    /// The cohort index device `device` belongs to: a weighted draw from a
    /// stream derived from the master seed and the device index —
    /// deterministic, independent of execution order.
    ///
    /// # Panics
    ///
    /// Panics on an empty cohort list (callers validate first).
    #[must_use]
    pub fn cohort_of(&self, device: u64) -> usize {
        let total: f64 = self.cohorts.iter().map(|c| c.weight).sum();
        let mut rng = DetRng::seed_from_u64(derive_seed(self.master_seed ^ COHORT_SALT, device));
        let mut draw = rng.next_f64() * total;
        for (i, c) in self.cohorts.iter().enumerate() {
            draw -= c.weight;
            if draw < 0.0 {
                return i;
            }
        }
        self.cohorts.len() - 1
    }

    /// The private RNG stream seed of device `device`.
    #[must_use]
    pub fn device_seed(&self, device: u64) -> u64 {
        derive_seed(self.master_seed, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_population_validates() {
        let spec = FleetSpec::default_population(100, 7);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.cohorts.len(), 3);
    }

    #[test]
    fn cohort_assignment_is_deterministic_and_weighted() {
        let spec = FleetSpec::default_population(0, 99);
        let n = 10_000u64;
        let mut counts = [0usize; 3];
        for d in 0..n {
            let c = spec.cohort_of(d);
            assert_eq!(c, spec.cohort_of(d), "assignment must be stable");
            counts[c] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - 0.5).abs() < 0.03, "phone share {}", frac(0));
        assert!((frac(1) - 0.3).abs() < 0.03, "watch share {}", frac(1));
        assert!((frac(2) - 0.2).abs() < 0.03, "tablet share {}", frac(2));
    }

    #[test]
    fn chemistry_substitution_keeps_shape_and_cycles_values() {
        let base = PackTemplate::phone();
        let sub = base.with_chemistries(&[Chemistry::Type1LfpPower, Chemistry::OtherLto]);
        assert_eq!(sub.batteries.len(), base.batteries.len());
        assert_eq!(sub.batteries[0].spec.chemistry, Chemistry::Type1LfpPower);
        assert_eq!(sub.batteries[1].spec.chemistry, Chemistry::OtherLto);
        for (s, b) in sub.batteries.iter().zip(&base.batteries) {
            assert_eq!(s.spec.capacity_ah, b.spec.capacity_ah);
            assert_eq!(s.initial_soc, b.initial_soc);
            assert_eq!(s.profile, b.profile);
        }
        // A single chemistry fills every slot.
        let mono = base.with_chemistries(&[Chemistry::OtherNmc]);
        assert!(mono
            .batteries
            .iter()
            .all(|s| s.spec.chemistry == Chemistry::OtherNmc));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = FleetSpec::default_population(10, 1);
        spec.devices = 0;
        assert!(spec.validate().is_err());

        let mut spec = FleetSpec::default_population(10, 1);
        spec.cohorts.clear();
        assert!(spec.validate().is_err());

        let mut spec = FleetSpec::default_population(10, 1);
        for c in &mut spec.cohorts {
            c.weight = 0.0;
        }
        assert!(spec.validate().is_err());

        let mut spec = FleetSpec::default_population(10, 1);
        spec.cohorts[0].update_period_s = 0.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn shared_workload_reuses_the_trace() {
        let t = Arc::new(Trace::constant(2.0, 600.0));
        let w = WorkloadSpec::Shared(Arc::clone(&t));
        let a = w.build(1);
        let b = w.build(2);
        assert!(Arc::ptr_eq(&a, &b), "shared traces must not be rebuilt");
    }

    #[test]
    fn seeded_workloads_differ_per_device() {
        let w = WorkloadSpec::WatchDay {
            run_hour: Some(9.0),
        };
        let a = w.build(1);
        let b = w.build(2);
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn truncation_clips_to_the_hour_boundary() {
        let w = WorkloadSpec::Truncated {
            inner: Box::new(WorkloadSpec::WatchDay {
                run_hour: Some(9.0),
            }),
            max_s: 2.0 * 3600.0,
        };
        let t = w.build(5);
        assert!(
            (t.duration_s() - 7200.0).abs() < 1e-9,
            "got {}",
            t.duration_s()
        );
        // A bound longer than the day leaves the trace untouched.
        let w = WorkloadSpec::Truncated {
            inner: Box::new(WorkloadSpec::WatchDay {
                run_hour: Some(9.0),
            }),
            max_s: 100.0 * 3600.0,
        };
        assert!((w.build(5).duration_s() - 24.0 * 3600.0).abs() < 1e-6);
        // with_hours wraps every cohort and tightens on repeat.
        let spec = FleetSpec::default_population(4, 1)
            .with_hours(3.0)
            .with_hours(2.0);
        for c in &spec.cohorts {
            match &c.workload {
                WorkloadSpec::Truncated { max_s, inner } => {
                    assert!((max_s - 7200.0).abs() < 1e-9);
                    assert!(!matches!(**inner, WorkloadSpec::Truncated { .. }));
                }
                other => panic!("expected truncated workload, got {other:?}"),
            }
        }
    }

    #[test]
    fn device_seeds_are_distinct() {
        let spec = FleetSpec::default_population(10, 3);
        let mut seeds: Vec<u64> = (0..1000).map(|d| spec.device_seed(d)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }
}
