//! Streaming fleet percentiles.
//!
//! [`FleetSketches`] carries one [`QuantileSketch`] per headline fleet
//! metric. Each shard observes its own outcomes into a private instance
//! (O(1) memory in the device count), and the engine merges the shards
//! commutatively after join — so fleet percentiles are available without
//! retaining per-device vectors, and the merged result is identical for
//! any shard order or thread count.
//!
//! The exact nearest-rank percentiles in [`FleetReport`] remain the
//! canonical numbers; [`FleetSketches::deltas`] cross-checks the sketch
//! against them, reporting the relative error per (metric, quantile) so
//! the α-bound is continuously verified on real populations.

use crate::engine::DeviceOutcome;
use crate::report::FleetReport;
use sdb_observe::QuantileSketch;
use std::fmt::Write as _;

/// The sketch accuracy used for fleet metrics (1 % relative error).
pub const FLEET_SKETCH_ALPHA: f64 = 0.01;

/// Streaming quantile sketches over the per-device outcome metrics.
#[derive(Debug, Clone)]
pub struct FleetSketches {
    /// Effective battery life, seconds.
    pub life_s: QuantileSketch,
    /// Circuit (power-electronics) losses, joules.
    pub circuit_loss_j: QuantileSketch,
    /// Cell resistive heat, joules.
    pub cell_heat_j: QuantileSketch,
    /// Cycle-count balance (1.0 = balanced wear).
    pub wear_ccb: QuantileSketch,
    /// Mean final state of charge.
    pub final_soc: QuantileSketch,
}

impl Default for FleetSketches {
    fn default() -> Self {
        Self::new()
    }
}

/// One sketch-vs-exact comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchDelta {
    /// Metric name (`life_s`, `circuit_loss_j`, …).
    pub metric: &'static str,
    /// The quantile compared (0.50, 0.95, 0.99).
    pub quantile: f64,
    /// Exact nearest-rank percentile from the report.
    pub exact: f64,
    /// Sketch estimate of the same quantile.
    pub sketch: f64,
    /// `|sketch − exact| / max(|exact|, 1e-12)`.
    pub rel_err: f64,
}

impl FleetSketches {
    /// Empty sketches at [`FLEET_SKETCH_ALPHA`] accuracy.
    #[must_use]
    pub fn new() -> Self {
        let s = || QuantileSketch::with_accuracy(FLEET_SKETCH_ALPHA);
        Self {
            life_s: s(),
            circuit_loss_j: s(),
            cell_heat_j: s(),
            wear_ccb: s(),
            final_soc: s(),
        }
    }

    /// Folds one device outcome into every sketch.
    pub fn observe(&mut self, outcome: &DeviceOutcome) {
        self.life_s.insert(outcome.life_s);
        self.circuit_loss_j.insert(outcome.circuit_loss_j);
        self.cell_heat_j.insert(outcome.cell_heat_j);
        self.wear_ccb.insert(outcome.wear_ccb);
        self.final_soc.insert(outcome.mean_final_soc);
    }

    /// Merges another shard's sketches into this one. Commutative and
    /// associative: any merge order yields identical estimates.
    pub fn merge_from(&mut self, other: &Self) {
        self.life_s.merge_from(&other.life_s);
        self.circuit_loss_j.merge_from(&other.circuit_loss_j);
        self.cell_heat_j.merge_from(&other.cell_heat_j);
        self.wear_ccb.merge_from(&other.wear_ccb);
        self.final_soc.merge_from(&other.final_soc);
    }

    /// Devices observed (every sketch sees each outcome once).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.life_s.count()
    }

    /// Cross-checks sketch p50/p95/p99 against the exact nearest-rank
    /// percentiles in `report`, one delta per (metric, quantile).
    #[must_use]
    pub fn deltas(&self, report: &FleetReport) -> Vec<SketchDelta> {
        let mut out = Vec::with_capacity(15);
        let mut push = |metric: &'static str, sketch: &QuantileSketch, exact: [f64; 3]| {
            for (q, exact) in [(0.50, exact[0]), (0.95, exact[1]), (0.99, exact[2])] {
                let est = sketch.quantile(q);
                out.push(SketchDelta {
                    metric,
                    quantile: q,
                    exact,
                    sketch: est,
                    rel_err: (est - exact).abs() / exact.abs().max(1e-12),
                });
            }
        };
        let r = report;
        push(
            "life_s",
            &self.life_s,
            [r.life_s.p50, r.life_s.p95, r.life_s.p99],
        );
        push(
            "circuit_loss_j",
            &self.circuit_loss_j,
            [
                r.circuit_loss_j.p50,
                r.circuit_loss_j.p95,
                r.circuit_loss_j.p99,
            ],
        );
        push(
            "cell_heat_j",
            &self.cell_heat_j,
            [r.cell_heat_j.p50, r.cell_heat_j.p95, r.cell_heat_j.p99],
        );
        push(
            "wear_ccb",
            &self.wear_ccb,
            [r.wear_ccb.p50, r.wear_ccb.p95, r.wear_ccb.p99],
        );
        push(
            "final_soc",
            &self.final_soc,
            [r.final_soc.p50, r.final_soc.p95, r.final_soc.p99],
        );
        out
    }
}

/// Renders sketch-vs-exact deltas as an aligned text table.
#[must_use]
pub fn render_deltas_text(deltas: &[SketchDelta]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>5} {:>14} {:>14} {:>10}",
        "metric", "q", "exact", "sketch", "rel_err"
    );
    for d in deltas {
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>14.6} {:>14.6} {:>10.2e}",
            d.metric, d.quantile, d.exact, d.sketch, d.rel_err
        );
    }
    out
}

/// Renders sketch-vs-exact deltas as deterministic JSON.
#[must_use]
pub fn render_deltas_json(deltas: &[SketchDelta]) -> String {
    let mut out = String::from("[");
    for (i, d) in deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"metric\":\"{}\",\"quantile\":{:?},\"exact\":{:?},\"sketch\":{:?},\"rel_err\":{:?}}}",
            d.metric, d.quantile, d.exact, d.sketch, d.rel_err
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(device: u64, life_s: f64) -> DeviceOutcome {
        DeviceOutcome {
            device,
            cohort: 0,
            life_s,
            browned_out: false,
            simulated_s: life_s,
            supplied_j: 10.0 * life_s,
            unmet_j: 0.0,
            circuit_loss_j: 0.02 * life_s,
            cell_heat_j: 0.01 * life_s,
            wear_ccb: 1.0 + 1e-4 * device as f64,
            mean_final_soc: 0.5,
        }
    }

    #[test]
    fn observes_and_counts() {
        let mut s = FleetSketches::new();
        for d in 0..10 {
            s.observe(&outcome(d, 3600.0 + 60.0 * d as f64));
        }
        assert_eq!(s.count(), 10);
        let p50 = s.life_s.quantile(0.50);
        assert!(
            (p50 - 3840.0).abs() / 3840.0 < 2.0 * FLEET_SKETCH_ALPHA,
            "{p50}"
        );
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let mut a = FleetSketches::new();
        let mut b = FleetSketches::new();
        let mut c = FleetSketches::new();
        for d in 0..30u64 {
            let o = outcome(d, 1000.0 + 37.0 * d as f64);
            match d % 3 {
                0 => a.observe(&o),
                1 => b.observe(&o),
                _ => c.observe(&o),
            }
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        ab.merge_from(&c);
        let mut cb = c.clone();
        cb.merge_from(&b);
        cb.merge_from(&a);
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            assert_eq!(
                ab.life_s.quantile(q).to_bits(),
                cb.life_s.quantile(q).to_bits()
            );
            assert_eq!(
                ab.wear_ccb.quantile(q).to_bits(),
                cb.wear_ccb.quantile(q).to_bits()
            );
        }
    }

    #[test]
    fn delta_rendering_is_deterministic() {
        let deltas = vec![SketchDelta {
            metric: "life_s",
            quantile: 0.95,
            exact: 3600.0,
            sketch: 3610.0,
            rel_err: 10.0 / 3600.0,
        }];
        let text = render_deltas_text(&deltas);
        assert!(text.contains("life_s"));
        let json = render_deltas_json(&deltas);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json, render_deltas_json(&deltas));
    }
}
