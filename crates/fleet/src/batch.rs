//! The SoA fleet engine: hybrid scalar / fast-forward device driver.
//!
//! The scalar engine ([`crate::engine`]) steps every device tick by tick.
//! Fleet populations spend most of those ticks on devices that are doing
//! nothing — a phone idling through the night at a fraction of a watt.
//! This module drives such stretches through [`SoaCohort`]: after a real
//! scalar tick establishes a sync point, the quiescence classifier parks
//! the device's state in the cohort's structure-of-arrays lanes and the
//! closed-form kernel fast-forwards whole runs of identical trace points
//! in one call, re-syncing exactly at every boundary (load change,
//! external power, drift budget, gauge recalibration crossing, SoC floor).
//!
//! Determinism contract: like the scalar engine, every device outcome is
//! a pure function of `(FleetSpec, device index)` — the SoA report is
//! bit-identical at any thread count. Across *engines* the outcomes agree
//! within the documented fast-forward bound (DESIGN.md §14), not bit-for-
//! bit; the cross-engine property tests pin the bound.
//!
//! Planner cohorts ([`PolicySpec::Planned`] / [`PolicySpec::Oracle`])
//! commit plans at times the classifier cannot see ahead of, so their
//! devices transparently fall back to the scalar driver, as do packs
//! with thermal simulation enabled.

use crate::engine::DeviceOutcome;
use crate::spec::{CohortSpec, FleetSpec, PolicySpec};
use sdb_core::policy::{DischargeDirective, PolicyInput, PreservePolicy};
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{SimOptions, SimResult};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::{QuiescenceConfig, SoaCohort};
use sdb_observe::{Observer, SpanName};
use sdb_workloads::traces::Trace;

/// Which per-device driver the fleet engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Tick-by-tick emulation of every device (the reference engine).
    #[default]
    Scalar,
    /// Structure-of-arrays fast path: quiescent devices park in SoA
    /// lanes and fast-forward idle stretches with the closed-form
    /// kernel. Within the documented bound of the scalar engine.
    Soa,
}

impl EngineKind {
    /// Parses `scalar` / `soa`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(Self::Scalar),
            "soa" => Ok(Self::Soa),
            other => Err(format!("unknown engine `{other}` (expected scalar|soa)")),
        }
    }

    /// The CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Soa => "soa",
        }
    }
}

/// Minimum run of identical upcoming trace points worth the
/// snapshot-in/snapshot-out cost of parking a lane.
const MIN_STRETCH_POINTS: usize = 4;

/// One shard's lazily-built SoA lanes, one slot per cohort. Lanes are
/// reused across the shard's devices, so array and snapshot buffers are
/// allocated once per (shard, cohort), not per device.
pub(crate) struct SoaScratch {
    slots: Vec<SlotState>,
}

enum SlotState {
    Unbuilt,
    /// Planner policy or thermal pack: this cohort runs the scalar driver.
    Ineligible,
    Ready(Box<SoaCohort>),
}

impl SoaScratch {
    pub(crate) fn new(cohorts: usize) -> Self {
        Self {
            slots: (0..cohorts).map(|_| SlotState::Unbuilt).collect(),
        }
    }

    /// The cohort's SoA lane, built on first use; `None` when the cohort
    /// must run the scalar driver.
    fn lane(&mut self, idx: usize, cohort: &CohortSpec) -> Option<&mut SoaCohort> {
        if matches!(self.slots[idx], SlotState::Unbuilt) {
            self.slots[idx] = build_slot(cohort);
        }
        match &mut self.slots[idx] {
            SlotState::Ready(soa) => Some(soa),
            _ => None,
        }
    }
}

fn build_slot(cohort: &CohortSpec) -> SlotState {
    if !matches!(
        cohort.policy,
        PolicySpec::Blend(_) | PolicySpec::Preserve { .. }
    ) {
        return SlotState::Ineligible;
    }
    let template = build_pack(cohort);
    if template.cells().iter().any(|c| c.temperature_c().is_some()) {
        return SlotState::Ineligible;
    }
    SlotState::Ready(Box::new(SoaCohort::new(
        &template,
        1,
        QuiescenceConfig::default(),
    )))
}

fn build_pack(cohort: &CohortSpec) -> Microcontroller {
    let mut builder = PackBuilder::new();
    for slot in &cohort.pack.batteries {
        builder = builder.battery_at(slot.spec.clone(), slot.initial_soc, slot.profile);
    }
    builder.build()
}

/// [`crate::engine::run_device`] on the SoA fast path. Cohorts without a
/// lane (planner policies, thermal packs) take the scalar driver.
pub(crate) fn run_device_soa(
    spec: &FleetSpec,
    device: u64,
    obs: &Observer,
    scratch: &mut SoaScratch,
) -> DeviceOutcome {
    let cohort_idx = spec.cohort_of(device);
    let cohort = &spec.cohorts[cohort_idx];
    if scratch.lane(cohort_idx, cohort).is_none() {
        return crate::engine::run_device(spec, device, obs);
    }
    let seed = spec.device_seed(device);
    let mut micro = build_pack(cohort);
    micro.set_observer(obs.clone());
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_observer(obs.clone());
    runtime.set_update_period(cohort.update_period_s);
    let trace = cohort.workload.build(seed);
    let soa = scratch
        .lane(cohort_idx, cohort)
        .expect("slot was just Ready");
    let (result, ff_ticks) = match cohort.policy {
        PolicySpec::Blend(v) => {
            runtime.set_discharge_directive(DischargeDirective::new(v));
            run_trace_soa(&mut micro, &mut runtime, &trace, &spec.sim, soa)
        }
        PolicySpec::Preserve {
            efficient,
            inefficient,
            threshold_w,
        } => {
            runtime.set_preserve(Some(PreservePolicy::new(
                efficient,
                inefficient,
                threshold_w,
            )));
            run_trace_soa(&mut micro, &mut runtime, &trace, &spec.sim, soa)
        }
        PolicySpec::Planned { .. } | PolicySpec::Oracle => {
            unreachable!("planner cohorts have no SoA lane")
        }
    };
    if ff_ticks > 0 {
        if let Some(reg) = obs.registry() {
            reg.counter("sdb_fleet_ff_ticks_total", &[]).add(ff_ticks);
        }
    }
    crate::engine::outcome_from(&micro, device, cohort_idx, &result)
}

/// The hybrid trace driver: scalar sync ticks interleaved with SoA
/// fast-forward over runs of identical quiescent trace points. Returns
/// the run result and the number of fast-forwarded ticks.
///
/// The scalar ticks execute the exact `tick → step` instruction sequence
/// of [`sdb_core::scheduler::run_trace`]; only the fast-forwarded
/// stretches deviate, within the documented kernel bound. Skipped work
/// stays accounted: the pack's step counter and the runtime's policy-eval
/// clock are credited for every fast-forwarded tick
/// ([`Microcontroller::credit_skipped_steps`] /
/// [`SdbRuntime::note_fast_forward`]).
///
/// # Panics
///
/// Panics if the emulated hardware rejects a runtime push (fatal in
/// simulation, as in `run_trace`).
pub fn run_trace_soa(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
    soa: &mut SoaCohort,
) -> (SimResult, u64) {
    let n = micro.battery_count();
    let start = micro.time_s();
    let (d0, cl0, ch0, u0, e0) = micro.energy_totals_j();
    let obs = runtime.observer().clone();

    let mut first_brownout = None;
    let mut battery_empty: Vec<Option<f64>> = vec![None; n];
    let mut hourly_loss = Vec::new();
    let mut hourly_load = Vec::new();
    let mut elapsed = 0.0f64;
    let mut ff_ticks = 0u64;

    let resampled = trace.resampled(opts.max_dt_s);
    let points = resampled.points();
    let mut i = 0usize;
    'outer: while i < points.len() {
        let p = &points[i];
        // Scalar sync tick: the same instruction sequence as `run_trace`.
        let report = {
            let _span = obs.span(SpanName::TraceStep);
            let _prof = sdb_prof::step(sdb_prof::Phase::SoaStep);
            let input = PolicyInput::from_micro(micro)
                .with_load(p.load_w)
                .with_external(p.external_w);
            {
                let _prof = sdb_prof::sub(sdb_prof::Phase::RuntimeTick);
                runtime
                    .tick(micro, &input, p.dur_s)
                    .expect("runtime push rejected by emulated hardware");
            }
            micro.step(p.load_w, p.external_w, p.dur_s)
        };
        bucket(
            &mut hourly_loss,
            &mut hourly_load,
            elapsed,
            p.dur_s,
            report.circuit_loss_w + report.cell_heat_w,
            report.load_w,
        );
        elapsed += p.dur_s;
        for (ci, cell) in micro.cells().iter().enumerate() {
            if battery_empty[ci].is_none() && cell.is_empty() {
                battery_empty[ci] = Some(elapsed);
            }
        }
        if report.unmet_w > 1e-9 && first_brownout.is_none() {
            first_brownout = Some(elapsed);
            if opts.stop_on_brownout {
                break 'outer;
            }
        }
        i += 1;

        // Fast-forward: how many upcoming points replay this one exactly?
        if p.external_w != 0.0 {
            continue;
        }
        let run = points[i..]
            .iter()
            .take_while(|q| {
                q.load_w.to_bits() == p.load_w.to_bits()
                    && q.external_w == 0.0
                    && q.dur_s.to_bits() == p.dur_s.to_bits()
            })
            .count();
        if run < MIN_STRETCH_POINTS || !soa.try_enter(0, micro, &report, p.load_w, p.dur_s) {
            continue;
        }
        let mut remaining = u32::try_from(run).unwrap_or(u32::MAX);
        let mut skipped = 0u64;
        while remaining > 0 {
            let k = soa.max_ticks(0, p.load_w, p.dur_s).min(remaining);
            if k == 0 {
                break;
            }
            let totals = {
                let _prof = sdb_prof::step(sdb_prof::Phase::FastForward);
                soa.advance(0, p.load_w, p.dur_s, k)
            };
            let span_s = f64::from(k) * p.dur_s;
            bucket(
                &mut hourly_loss,
                &mut hourly_load,
                elapsed,
                span_s,
                (totals.circuit_loss_j + totals.cell_heat_j) / span_s,
                p.load_w,
            );
            elapsed += span_s;
            runtime.note_fast_forward(p.dur_s, u64::from(k));
            skipped += u64::from(k);
            remaining -= k;
            i += k as usize;
        }
        soa.exit(0, micro);
        if skipped > 0 {
            micro.credit_skipped_steps(skipped);
            ff_ticks += skipped;
        }
    }

    let (d1, cl1, ch1, u1, e1) = micro.energy_totals_j();
    let result = SimResult {
        simulated_s: micro.time_s() - start,
        supplied_j: d1 - d0,
        unmet_j: u1 - u0,
        circuit_loss_j: cl1 - cl0,
        cell_heat_j: ch1 - ch0,
        external_j: e1 - e0,
        first_brownout_s: first_brownout,
        battery_empty_s: battery_empty,
        hourly_loss_j: hourly_loss,
        hourly_load_j: hourly_load,
        final_soc: micro.cells().iter().map(|c| c.soc()).collect(),
    };
    (result, ff_ticks)
}

/// Apportions a constant-rate span across the hour buckets it straddles
/// (identical arithmetic to the scalar driver's inline loop).
fn bucket(
    hourly_loss: &mut Vec<f64>,
    hourly_load: &mut Vec<f64>,
    start_s: f64,
    dur_s: f64,
    loss_w: f64,
    load_w: f64,
) {
    let mut t = start_s;
    let mut remaining = dur_s;
    while remaining > 1e-9 {
        let hour = (t / 3600.0) as usize;
        let take = remaining.min((hour + 1) as f64 * 3600.0 - t);
        if hourly_loss.len() <= hour {
            hourly_loss.resize(hour + 1, 0.0);
            hourly_load.resize(hour + 1, 0.0);
        }
        hourly_loss[hour] += loss_w * take;
        hourly_load[hour] += load_w * take;
        t += take;
        remaining -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fleet, run_fleet_with_engine};
    use crate::spec::{CohortSpec, PackTemplate, WorkloadSpec};
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_core::scheduler::run_trace;
    use sdb_emulator::profile::ProfileKind;
    use std::sync::Arc;

    fn idle_spec(devices: usize) -> FleetSpec {
        FleetSpec {
            devices,
            master_seed: 11,
            cohorts: vec![CohortSpec {
                name: "idle".to_owned(),
                weight: 1.0,
                pack: PackTemplate::new(vec![
                    (
                        BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                        0.9,
                        ProfileKind::Standard,
                    ),
                    (
                        BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                        0.8,
                        ProfileKind::Fast,
                    ),
                ]),
                workload: WorkloadSpec::Shared(Arc::new(Trace::constant(0.05, 4.0 * 3600.0))),
                policy: PolicySpec::Blend(0.5),
                update_period_s: 60.0,
            }],
            sim: SimOptions::default(),
        }
    }

    #[test]
    fn engine_kind_parses() {
        assert_eq!(EngineKind::parse("soa").unwrap(), EngineKind::Soa);
        assert_eq!(EngineKind::parse("scalar").unwrap(), EngineKind::Scalar);
        assert!(EngineKind::parse("warp").is_err());
        assert_eq!(EngineKind::Soa.name(), "soa");
    }

    #[test]
    fn soa_report_is_thread_invariant() {
        let spec = FleetSpec::default_population(16, 42).with_hours(3.0);
        let (r1, _) = run_fleet_with_engine(&spec, 1, EngineKind::Soa).unwrap();
        let (r4, _) = run_fleet_with_engine(&spec, 4, EngineKind::Soa).unwrap();
        assert_eq!(r1, r4);
        assert_eq!(r1.to_json(), r4.to_json());
    }

    #[test]
    fn soa_fast_forwards_idle_fleets() {
        let (_, stats) = run_fleet_with_engine(&idle_spec(6), 2, EngineKind::Soa).unwrap();
        let totals = stats.registry.counter_totals();
        let ff = totals
            .iter()
            .find(|(name, _)| name == "sdb_fleet_ff_ticks_total")
            .map_or(0, |(_, v)| *v);
        // 6 devices × 4 h × 60 s ticks = 1440 ticks; the bulk must have
        // been fast-forwarded for the engine to be worth anything.
        assert!(ff > 700, "fast-forwarded only {ff} of ~1440 ticks");
    }

    #[test]
    fn soa_matches_scalar_within_bounds() {
        let spec = idle_spec(5);
        let (scalar, _) = run_fleet(&spec, 2).unwrap();
        let (soa, _) = run_fleet_with_engine(&spec, 2, EngineKind::Soa).unwrap();
        assert_eq!(scalar.devices, soa.devices);
        assert_eq!(scalar.brownout_rate, soa.brownout_rate);
        // No brownout on an idle fleet: life equals the full span exactly.
        assert_eq!(scalar.life_s.mean.to_bits(), soa.life_s.mean.to_bits());
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-9);
        assert!(
            rel(scalar.supplied_j_total, soa.supplied_j_total) < 1e-2,
            "supplied {} vs {}",
            scalar.supplied_j_total,
            soa.supplied_j_total
        );
        assert!(
            (scalar.final_soc.mean - soa.final_soc.mean).abs() < 1e-3,
            "final soc {} vs {}",
            scalar.final_soc.mean,
            soa.final_soc.mean
        );
    }

    #[test]
    fn planner_cohorts_fall_back_to_scalar_bit_exactly() {
        let spec = FleetSpec {
            cohorts: vec![CohortSpec {
                policy: PolicySpec::Oracle,
                ..idle_spec(4).cohorts.remove(0)
            }],
            ..idle_spec(4)
        };
        let (scalar, _) = run_fleet(&spec, 2).unwrap();
        let (soa, _) = run_fleet_with_engine(&spec, 2, EngineKind::Soa).unwrap();
        // Fallback means the engines are the same code path: bit-identical.
        assert_eq!(scalar, soa);
        assert_eq!(scalar.to_json(), soa.to_json());
    }

    #[test]
    fn hybrid_driver_matches_run_trace_on_busy_traces() {
        // A trace that never qualifies for quiescence (heavy load) takes
        // the scalar tick path on every point: bit-identical results.
        let cohort = &idle_spec(1).cohorts[0];
        let trace = Trace::constant(8.0, 2.0 * 3600.0);
        let opts = SimOptions::default();

        let mut m1 = build_pack(cohort);
        let mut rt1 = SdbRuntime::new(2);
        rt1.set_discharge_directive(DischargeDirective::new(0.5));
        rt1.set_update_period(60.0);
        let full = run_trace(&mut m1, &mut rt1, &trace, &opts);

        let mut m2 = build_pack(cohort);
        let mut rt2 = SdbRuntime::new(2);
        rt2.set_discharge_directive(DischargeDirective::new(0.5));
        rt2.set_update_period(60.0);
        let mut soa = SoaCohort::new(&m2, 1, QuiescenceConfig::default());
        let (hybrid, ff) = run_trace_soa(&mut m2, &mut rt2, &trace, &opts, &mut soa);
        assert_eq!(ff, 0, "an 8 W load must never fast-forward");
        assert_eq!(full, hybrid);
    }
}
