//! `sdb-fleet`: the sharded, deterministic multi-device fleet simulation
//! engine.
//!
//! The paper evaluates SDB one device at a time; a production battery
//! runtime has to answer population questions — *what does this policy do
//! to the p95 depletion time across ten thousand heterogeneous handsets?*
//! This crate turns the single-device simulator into a fleet instrument:
//!
//! * [`spec`] — declarative fleet populations: weighted [`CohortSpec`]s
//!   (pack template × workload × policy) sampled deterministically per
//!   device from a master seed via SplitMix64 stream derivation.
//! * [`engine`] — the parallel driver: device indices are handed out from
//!   an atomic work queue to `std::thread::scope` workers, each running
//!   the full `run_trace` simulation independently with a per-shard
//!   metrics registry (no cross-thread contention on the hot path).
//! * [`report`] — the deterministic merge: outcomes are re-ordered by
//!   device index and aggregated into a [`FleetReport`] (depletion-time
//!   percentiles, brownout rate, loss and wear distributions, per-cohort
//!   breakdowns, merged counter totals) that is **bit-identical for any
//!   thread count**.
//! * [`sketches`] — streaming log-bucket quantile sketches carried per
//!   shard and merged commutatively after join: O(1)-memory fleet
//!   percentiles, cross-checked against the exact nearest-rank numbers in
//!   the report. The engine can also capture the full device-tagged event
//!   stream ([`engine::run_fleet_captured`]) for serialization by
//!   `sdb-trace`.
//!
//! Determinism contract: `FleetReport` (and its JSON rendering) is a pure
//! function of `(FleetSpec, master seed)`. Wall-clock facts — thread
//! count, devices/sec, span latency histograms — live in
//! [`engine::FleetRunStats`], never in the report.
//!
//! # Example
//!
//! ```
//! use sdb_fleet::{engine::run_fleet, spec::FleetSpec};
//!
//! let spec = FleetSpec::default_population(64, 42).with_hours(2.0);
//! let (report, stats) = run_fleet(&spec, 2).unwrap();
//! assert_eq!(report.devices, 64);
//! assert!(stats.wall_s >= 0.0);
//! // Same spec, different shard count: bit-identical report.
//! let (again, _) = run_fleet(&spec, 1).unwrap();
//! assert_eq!(report.to_json(), again.to_json());
//! ```

pub mod batch;
pub mod engine;
pub mod report;
pub mod sketches;
pub mod spec;

pub use batch::{run_trace_soa, EngineKind};
pub use engine::{
    run_fleet, run_fleet_captured, run_fleet_captured_with_engine, run_fleet_live,
    run_fleet_with_engine, DeviceOutcome, FleetRunStats,
};
pub use report::{CohortReport, DistSummary, FleetReport};
pub use sketches::{
    render_deltas_json, render_deltas_text, FleetSketches, SketchDelta, FLEET_SKETCH_ALPHA,
};
pub use spec::{BatterySlot, CohortSpec, FleetSpec, PackTemplate, PolicySpec, WorkloadSpec};
