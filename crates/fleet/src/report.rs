//! Deterministic fleet aggregation.
//!
//! The report is the canonical artifact of a fleet run: a pure function of
//! the spec and the device outcomes (which are themselves pure functions
//! of the spec), rendered to JSON with shortest-round-trip float
//! formatting. Anything wall-clock lives in
//! [`crate::engine::FleetRunStats`] instead. Aggregation is careful about
//! floating-point ordering: sums and means run in device-index order,
//! percentiles over a `total_cmp`-sorted copy — so the same outcomes
//! always produce the same bits.

use crate::engine::DeviceOutcome;
use crate::spec::FleetSpec;
use sdb_observe::MetricsRegistry;
use std::fmt::Write as _;

/// Summary statistics of one per-device quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSummary {
    /// Arithmetic mean (accumulated in device-index order).
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl DistSummary {
    /// Summarizes `values` (one per device, in device order). Returns an
    /// all-NaN-free zero summary for an empty slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let rank = |p: f64| -> f64 {
            // Nearest-rank percentile: ceil(p · n) clamped to [1, n].
            let n = sorted.len();
            let k = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        Self {
            mean,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            fmt(self.mean),
            fmt(self.min),
            fmt(self.max),
            fmt(self.p50),
            fmt(self.p95),
            fmt(self.p99)
        )
    }
}

/// Per-cohort slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Cohort name from the spec.
    pub name: String,
    /// Devices assigned to the cohort.
    pub devices: usize,
    /// Fraction of the cohort's devices that browned out.
    pub brownout_rate: f64,
    /// Battery-life distribution, seconds.
    pub life_s: DistSummary,
    /// Circuit-loss distribution, joules.
    pub circuit_loss_j: DistSummary,
    /// Cycle-count-balance distribution (1.0 = perfectly balanced wear).
    pub wear_ccb: DistSummary,
}

/// The canonical fleet artifact: bit-identical for a given spec no matter
/// how many threads produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Devices simulated.
    pub devices: usize,
    /// The master seed the population was sampled from.
    pub master_seed: u64,
    /// Fraction of all devices that browned out.
    pub brownout_rate: f64,
    /// Battery-life distribution, seconds.
    pub life_s: DistSummary,
    /// Circuit-loss distribution, joules.
    pub circuit_loss_j: DistSummary,
    /// Cell-heat distribution, joules.
    pub cell_heat_j: DistSummary,
    /// Cycle-count-balance distribution.
    pub wear_ccb: DistSummary,
    /// Mean-final-SoC distribution.
    pub final_soc: DistSummary,
    /// Total energy delivered across the fleet, joules.
    pub supplied_j_total: f64,
    /// Total unserved energy across the fleet, joules.
    pub unmet_j_total: f64,
    /// Per-cohort breakdowns, in spec order.
    pub cohorts: Vec<CohortReport>,
    /// Merged counter totals from every shard registry (name → summed
    /// value, sorted by name). Counters are sums of per-device integers,
    /// so they are order- and thread-independent.
    pub counters: Vec<(String, u64)>,
}

impl FleetReport {
    /// Aggregates sorted per-device outcomes. `outcomes` must be in
    /// device-index order (the engine guarantees this).
    #[must_use]
    pub fn from_outcomes(
        spec: &FleetSpec,
        outcomes: &[DeviceOutcome],
        merged: &MetricsRegistry,
    ) -> Self {
        let collect =
            |f: &dyn Fn(&DeviceOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
        let brownouts = outcomes.iter().filter(|o| o.browned_out).count();
        let cohorts = spec
            .cohorts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let members: Vec<&DeviceOutcome> =
                    outcomes.iter().filter(|o| o.cohort == i).collect();
                let pick = |f: &dyn Fn(&DeviceOutcome) -> f64| -> Vec<f64> {
                    members.iter().map(|o| f(o)).collect()
                };
                let browned = members.iter().filter(|o| o.browned_out).count();
                CohortReport {
                    name: c.name.clone(),
                    devices: members.len(),
                    brownout_rate: if members.is_empty() {
                        0.0
                    } else {
                        browned as f64 / members.len() as f64
                    },
                    life_s: DistSummary::of(&pick(&|o| o.life_s)),
                    circuit_loss_j: DistSummary::of(&pick(&|o| o.circuit_loss_j)),
                    wear_ccb: DistSummary::of(&pick(&|o| o.wear_ccb)),
                }
            })
            .collect();
        Self {
            devices: outcomes.len(),
            master_seed: spec.master_seed,
            brownout_rate: if outcomes.is_empty() {
                0.0
            } else {
                brownouts as f64 / outcomes.len() as f64
            },
            life_s: DistSummary::of(&collect(&|o| o.life_s)),
            circuit_loss_j: DistSummary::of(&collect(&|o| o.circuit_loss_j)),
            cell_heat_j: DistSummary::of(&collect(&|o| o.cell_heat_j)),
            wear_ccb: DistSummary::of(&collect(&|o| o.wear_ccb)),
            final_soc: DistSummary::of(&collect(&|o| o.mean_final_soc)),
            supplied_j_total: outcomes.iter().map(|o| o.supplied_j).sum(),
            unmet_j_total: outcomes.iter().map(|o| o.unmet_j).sum(),
            cohorts,
            counters: merged.counter_totals(),
        }
    }

    /// Renders the report as deterministic JSON. Equal reports render to
    /// byte-equal strings; this is the artifact the determinism tests and
    /// the CI smoke test compare.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"devices\":{},\"master_seed\":{},\"brownout_rate\":{}",
            self.devices,
            self.master_seed,
            fmt(self.brownout_rate)
        );
        let _ = write!(out, ",\"life_s\":{}", self.life_s.to_json());
        let _ = write!(out, ",\"circuit_loss_j\":{}", self.circuit_loss_j.to_json());
        let _ = write!(out, ",\"cell_heat_j\":{}", self.cell_heat_j.to_json());
        let _ = write!(out, ",\"wear_ccb\":{}", self.wear_ccb.to_json());
        let _ = write!(out, ",\"final_soc\":{}", self.final_soc.to_json());
        let _ = write!(
            out,
            ",\"supplied_j_total\":{},\"unmet_j_total\":{}",
            fmt(self.supplied_j_total),
            fmt(self.unmet_j_total)
        );
        out.push_str(",\"cohorts\":[");
        for (i, c) in self.cohorts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"devices\":{},\"brownout_rate\":{},\"life_s\":{},\"circuit_loss_j\":{},\"wear_ccb\":{}}}",
                c.name.replace('\\', "\\\\").replace('"', "\\\""),
                c.devices,
                fmt(c.brownout_rate),
                c.life_s.to_json(),
                c.circuit_loss_j.to_json(),
                c.wear_ccb.to_json()
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a human-readable summary table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} devices, master seed {}",
            self.devices, self.master_seed
        );
        let _ = writeln!(
            out,
            "brownout rate: {:.2}%  |  delivered {:.1} MJ, unserved {:.1} kJ",
            self.brownout_rate * 100.0,
            self.supplied_j_total / 1e6,
            self.unmet_j_total / 1e3
        );
        let _ = writeln!(
            out,
            "battery life (h): p50 {:.2}  p95 {:.2}  p99 {:.2}  (mean {:.2})",
            self.life_s.p50 / 3600.0,
            self.life_s.p95 / 3600.0,
            self.life_s.p99 / 3600.0,
            self.life_s.mean / 3600.0
        );
        let _ = writeln!(
            out,
            "circuit loss (J): p50 {:.1}  p95 {:.1}  p99 {:.1}",
            self.circuit_loss_j.p50, self.circuit_loss_j.p95, self.circuit_loss_j.p99
        );
        let _ = writeln!(
            out,
            "wear CCB: p50 {:.3}  p95 {:.3}  max {:.3}",
            self.wear_ccb.p50, self.wear_ccb.p95, self.wear_ccb.max
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:>12} {:>12}",
            "cohort", "devices", "brownout%", "life p50 (h)", "life p95 (h)"
        );
        for c in &self.cohorts {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>10.2} {:>12.2} {:>12.2}",
                c.name,
                c.devices,
                c.brownout_rate * 100.0,
                c.life_s.p50 / 3600.0,
                c.life_s.p95 / 3600.0
            );
        }
        out
    }
}

/// Shortest-round-trip float formatting: deterministic, parses back to the
/// identical bits (matches `sdb-observe`'s JSON exporter convention).
fn fmt(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "\"+Inf\"" } else { "\"-Inf\"" }.to_owned()
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_summary_of_known_values() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = DistSummary::of(&values);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p95, 95.0);
        assert_eq!(d.p99, 99.0);
        assert!((d.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn dist_summary_handles_small_and_empty() {
        let empty = DistSummary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.p99, 0.0);
        let one = DistSummary::of(&[4.25]);
        assert_eq!(one.p50, 4.25);
        assert_eq!(one.p99, 4.25);
        assert_eq!(one.min, 4.25);
        assert_eq!(one.max, 4.25);
    }

    #[test]
    fn dist_summary_is_order_sensitive_only_in_documented_ways() {
        // Percentiles and min/max ignore input order; mean accumulates in
        // the order given (device order, which the engine fixes).
        let a = DistSummary::of(&[3.0, 1.0, 2.0]);
        let b = DistSummary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1, 1.0 / 3.0, 12345.678, 1e-300, 0.0] {
            let s = fmt(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt(f64::NAN), "\"NaN\"");
        assert_eq!(fmt(f64::INFINITY), "\"+Inf\"");
    }
}
