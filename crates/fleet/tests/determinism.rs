//! The fleet engine's determinism contract, end to end: the merged
//! `FleetReport` — including its canonical JSON rendering — is a pure
//! function of the `FleetSpec`, no matter how many worker threads produced
//! it, and a fleet of one is indistinguishable from calling the
//! single-device simulator directly.

use sdb_core::policy::DischargeDirective;
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::run_trace;
use sdb_emulator::pack::PackBuilder;
use sdb_fleet::run_fleet;
use sdb_fleet::spec::{FleetSpec, PolicySpec};

/// A real heterogeneous population (all three cohorts, seeded per-device
/// traces), big enough that every thread count actually interleaves work.
fn population() -> FleetSpec {
    FleetSpec::default_population(48, 0xDE7E_12A1).with_hours(1.0)
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let spec = population();
    let (baseline, stats1) = run_fleet(&spec, 1).unwrap();
    assert_eq!(stats1.threads, 1);
    let json = baseline.to_json();
    for threads in [2usize, 3, 8] {
        let (report, stats) = run_fleet(&spec, threads).unwrap();
        assert_eq!(stats.threads, threads);
        // Structural equality covers every f64 via PartialEq…
        assert_eq!(baseline, report, "report diverged at {threads} threads");
        // …and byte equality of the canonical JSON covers formatting.
        assert_eq!(json, report.to_json(), "JSON diverged at {threads} threads");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let spec = population();
    let (a, _) = run_fleet(&spec, 4).unwrap();
    let (b, _) = run_fleet(&spec, 4).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn different_master_seeds_give_different_fleets() {
    let (a, _) = run_fleet(&FleetSpec::default_population(32, 1).with_hours(0.5), 2).unwrap();
    let (b, _) = run_fleet(&FleetSpec::default_population(32, 2).with_hours(0.5), 2).unwrap();
    assert_ne!(a.to_json(), b.to_json());
}

#[test]
fn fleet_of_one_matches_a_direct_run_trace() {
    // Single-cohort spec so the one device's cohort is forced.
    let mut spec = population();
    spec.devices = 1;
    spec.cohorts.truncate(1);
    let cohort_policy = match spec.cohorts[0].policy {
        PolicySpec::Blend(v) => v,
        _ => unreachable!("cohort 0 is the blend phone cohort"),
    };
    let (report, _) = run_fleet(&spec, 2).unwrap();

    let cohort = &spec.cohorts[0];
    let mut builder = PackBuilder::new();
    for slot in &cohort.pack.batteries {
        builder = builder.battery_at((*slot.spec).clone(), slot.initial_soc, slot.profile);
    }
    let mut micro = builder.build();
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_update_period(cohort.update_period_s);
    runtime.set_discharge_directive(DischargeDirective::new(cohort_policy));
    let trace = cohort.workload.build(spec.device_seed(0));
    let direct = run_trace(&mut micro, &mut runtime, &trace, &spec.sim);

    assert_eq!(
        report.life_s.mean.to_bits(),
        direct.battery_life_s().to_bits()
    );
    assert_eq!(
        report.supplied_j_total.to_bits(),
        direct.supplied_j.to_bits()
    );
    assert_eq!(report.unmet_j_total.to_bits(), direct.unmet_j.to_bits());
    assert_eq!(
        report.circuit_loss_j.mean.to_bits(),
        direct.circuit_loss_j.to_bits()
    );
}

#[test]
fn wall_clock_facts_stay_out_of_the_report() {
    // The JSON must not mention threads or wall-clock time: those live in
    // FleetRunStats only.
    let (report, stats) = run_fleet(&population(), 2).unwrap();
    let json = report.to_json();
    assert!(!json.contains("threads"));
    assert!(!json.contains("wall"));
    assert!(stats.wall_s > 0.0);
    assert!(stats.devices_per_sec > 0.0);
}
