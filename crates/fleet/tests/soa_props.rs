//! Property tests for the SoA fleet engine (sdb-testkit seeded-case
//! harness): over random standby populations, the hybrid fast-forward
//! engine must stay thread-count deterministic and inside its documented
//! cross-engine error bound against the scalar engine.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_core::scheduler::SimOptions;
use sdb_emulator::profile::ProfileKind;
use sdb_fleet::spec::{CohortSpec, FleetSpec, PackTemplate, PolicySpec, WorkloadSpec};
use sdb_fleet::{run_fleet_with_engine, EngineKind};
use sdb_testkit::{check, Gen};
use sdb_workloads::Trace;
use std::sync::Arc;

/// A random standby cohort: constant shared load low enough that packs
/// never deplete within the horizon, on a random two-cell hybrid pack.
fn arb_standby_spec(g: &mut Gen) -> FleetSpec {
    let chems = [
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ];
    let hours = g.f64_range(1.0, 4.0);
    let load_w = g.f64_range(0.0, 0.4);
    FleetSpec {
        devices: g.usize_range(4, 17),
        master_seed: u64::from(g.u32_range(0, u32::MAX)),
        cohorts: vec![CohortSpec {
            name: "standby".to_owned(),
            weight: 1.0,
            pack: PackTemplate::new(vec![
                (
                    BatterySpec::from_chemistry("a", g.pick(&chems), g.f64_range(1.5, 3.0)),
                    g.f64_range(0.6, 1.0),
                    ProfileKind::Standard,
                ),
                (
                    BatterySpec::from_chemistry("b", g.pick(&chems), g.f64_range(1.5, 3.0)),
                    g.f64_range(0.6, 1.0),
                    ProfileKind::Fast,
                ),
            ]),
            workload: WorkloadSpec::Shared(Arc::new(Trace::constant(load_w, hours * 3600.0))),
            policy: if g.chance(0.5) {
                PolicySpec::Blend(g.f64_range(0.0, 1.0))
            } else {
                PolicySpec::Preserve {
                    efficient: 0,
                    inefficient: 1,
                    threshold_w: g.f64_range(0.1, 0.5),
                }
            },
            update_period_s: 60.0,
        }],
        sim: SimOptions::default(),
    }
}

/// **Thread invariance**: the SoA engine's report is a pure function of
/// `(spec, seed)` — any worker count yields identical bytes.
#[test]
fn soa_reports_are_thread_invariant_on_random_specs() {
    check(12, 0x50A_0001, |g| {
        let spec = arb_standby_spec(g);
        let threads = g.pick(&[2usize, 3, 4]);
        let (r1, _) = run_fleet_with_engine(&spec, 1, EngineKind::Soa).expect("1-thread run");
        let (rn, _) = run_fleet_with_engine(&spec, threads, EngineKind::Soa).expect("n-thread run");
        assert_eq!(r1.to_json(), rn.to_json(), "report depends on thread count");
    });
}

/// **Cross-engine bound**: on populations that never deplete, the SoA
/// engine agrees with scalar bit-exactly on battery life and brownouts,
/// and within the documented bounds on energy (1% relative) and final
/// SoC (1e-3 absolute mean).
#[test]
fn soa_engine_stays_within_error_bound_of_scalar() {
    check(12, 0x50A_0002, |g| {
        let spec = arb_standby_spec(g);
        let (scalar, _) = run_fleet_with_engine(&spec, 2, EngineKind::Scalar).expect("scalar run");
        let (soa, _) = run_fleet_with_engine(&spec, 2, EngineKind::Soa).expect("soa run");
        assert_eq!(
            scalar.brownout_rate, soa.brownout_rate,
            "brownouts diverged"
        );
        assert_eq!(
            scalar.life_s.mean.to_bits(),
            soa.life_s.mean.to_bits(),
            "non-depleting standby lives must be bit-equal"
        );
        if scalar.supplied_j_total > 1.0 {
            let rel =
                ((soa.supplied_j_total - scalar.supplied_j_total) / scalar.supplied_j_total).abs();
            assert!(rel <= 1e-2, "supplied energy drift {rel}");
        }
        assert!(
            (soa.final_soc.mean - scalar.final_soc.mean).abs() <= 1e-3,
            "final SoC mean drift {}",
            (soa.final_soc.mean - scalar.final_soc.mean).abs()
        );
    });
}
