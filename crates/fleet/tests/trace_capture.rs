//! End-to-end contract between the fleet engine and `sdb-trace`: the
//! serialized trace of a captured fleet run is byte-identical across
//! thread counts, replaying the JSONL reproduces the analysis exactly,
//! and the health-rule engine surfaces brownout and imbalance findings on
//! a population that is actually failing.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_core::scheduler::SimOptions;
use sdb_emulator::profile::ProfileKind;
use sdb_fleet::spec::{CohortSpec, FleetSpec, PackTemplate, PolicySpec, WorkloadSpec};
use sdb_fleet::{run_fleet_captured, FLEET_SKETCH_ALPHA};
use sdb_trace::{analyze, analyze_jsonl, default_rules, to_chrome, to_jsonl};
use sdb_workloads::traces::Trace;
use std::sync::Arc;

fn population(devices: usize) -> FleetSpec {
    FleetSpec::default_population(devices, 0xBEEF_CAFE).with_hours(1.0)
}

/// A population designed to fail: tiny packs under a sustained load far
/// beyond their capacity, so every device depletes and browns out inside
/// the simulated span.
fn overloaded_spec(devices: usize) -> FleetSpec {
    FleetSpec {
        devices,
        master_seed: 99,
        cohorts: vec![CohortSpec {
            name: "overloaded".to_owned(),
            weight: 1.0,
            pack: PackTemplate::new(vec![
                (
                    BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 0.4),
                    0.9,
                    ProfileKind::Standard,
                ),
                (
                    BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 0.4),
                    0.35,
                    ProfileKind::Fast,
                ),
            ]),
            workload: WorkloadSpec::Shared(Arc::new(Trace::constant(6.0, 3.0 * 3600.0))),
            policy: PolicySpec::Blend(0.8),
            update_period_s: 60.0,
        }],
        sim: SimOptions::default(),
    }
}

#[test]
fn serialized_trace_is_byte_identical_across_thread_counts() {
    let spec = population(24);
    let (_, _, events1) = run_fleet_captured(&spec, 1, true).unwrap();
    let events1 = events1.unwrap();
    let jsonl = to_jsonl(&events1);
    let chrome = to_chrome(&events1);
    assert!(!jsonl.is_empty());
    for threads in [2usize, 5] {
        let (_, _, events) = run_fleet_captured(&spec, threads, true).unwrap();
        let events = events.unwrap();
        assert_eq!(
            jsonl,
            to_jsonl(&events),
            "JSONL diverged at {threads} threads"
        );
        assert_eq!(
            chrome,
            to_chrome(&events),
            "Chrome export diverged at {threads} threads"
        );
    }
}

#[test]
fn replayed_trace_reproduces_the_analysis() {
    let spec = overloaded_spec(6);
    let (_, _, events) = run_fleet_captured(&spec, 3, true).unwrap();
    let events = events.unwrap();
    let direct = analyze(&events, default_rules());
    let replayed = analyze_jsonl(&to_jsonl(&events), default_rules()).unwrap();
    assert_eq!(direct.to_json(), replayed.to_json());
    assert_eq!(direct.summary.devices, 6);
}

#[test]
fn rule_engine_flags_a_failing_population() {
    let spec = overloaded_spec(8);
    let (report, _, events) = run_fleet_captured(&spec, 2, true).unwrap();
    assert!(
        report.brownout_rate > 0.0,
        "spec should brown out; rate {}",
        report.brownout_rate
    );
    let analysis = analyze(&events.unwrap(), default_rules());
    let has = |rule: &str| analysis.rules.findings.iter().any(|f| f.rule == rule);
    assert!(has("brownout"), "findings: {:?}", analysis.rules.findings);
    assert!(
        has("ccb-imbalance") || has("soc-sag"),
        "expected an imbalance or sag precursor, findings: {:?}",
        analysis.rules.findings
    );
    // All five default rules saw signal traffic worth evaluating.
    assert!(analysis.rules.rules_evaluated() >= 3);
}

#[test]
fn sketch_percentiles_match_exact_report_percentiles() {
    let spec = population(64);
    let (report, stats, _) = run_fleet_captured(&spec, 4, false).unwrap();
    assert_eq!(stats.sketches.count(), 64);
    for d in stats.sketches.deltas(&report) {
        assert!(
            d.rel_err <= FLEET_SKETCH_ALPHA,
            "{} q{} out of bound: exact {} sketch {} rel_err {}",
            d.metric,
            d.quantile,
            d.exact,
            d.sketch,
            d.rel_err
        );
    }
}
