//! A counting global allocator for allocation-freedom tests.
//!
//! Wraps [`std::alloc::System`] and counts every allocation on
//! **thread-local** counters, so parallel `#[test]` threads never pollute
//! each other's measurements. Install it once per test binary:
//!
//! ```ignore
//! use sdb_testkit::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! #[test]
//! fn hot_path_is_allocation_free() {
//!     warm_up();
//!     let before = sdb_testkit::alloc_counter::allocs();
//!     hot_path();
//!     assert_eq!(sdb_testkit::alloc_counter::allocs() - before, 0);
//! }
//! ```
//!
//! Only `alloc`, `alloc_zeroed`, and `realloc` are counted — `dealloc` is
//! free in the sense that a steady-state loop that never allocates also
//! never frees, so the allocation count alone proves the property.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations made by the current thread since it started.
#[must_use]
pub fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Heap bytes requested by the current thread since it started.
#[must_use]
pub fn bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// A [`GlobalAlloc`] that delegates to the system allocator while counting
/// each allocation and its size on thread-local counters.
#[derive(Debug, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new counting allocator (stateless; all state is thread-local).
    #[must_use]
    pub const fn new() -> Self {
        Self
    }
}

fn count(size: usize) {
    ALLOCS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + size as u64));
}

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counters only touch thread-local `Cell`s.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
