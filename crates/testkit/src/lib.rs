//! A tiny property-test harness: seeded random cases, no shrinking, no
//! external dependencies.
//!
//! This replaces `proptest` for the workspace's property suites so the
//! whole repository builds and tests with zero registry access. The
//! trade-off is deliberate: we lose shrinking, but every case is derived
//! deterministically from `(suite seed, case index)` via
//! [`sdb_rng::derive_seed`], so a failure report names the exact case seed
//! and `check_case` replays it under a debugger.
//!
//! # Example
//!
//! ```
//! use sdb_testkit::{check, Gen};
//!
//! check(64, 0xC0FFEE, |g: &mut Gen| {
//!     let xs = g.vec_f64(0.0, 10.0, 1..20);
//!     let sum: f64 = xs.iter().sum();
//!     assert!(sum >= 0.0);
//! });
//! ```

pub mod alloc_counter;

pub use alloc_counter::CountingAllocator;

use sdb_rng::{derive_seed, DetRng};

/// Per-case value generator: a deterministic RNG plus sampling helpers
/// shaped like the strategies the old proptest suites used.
#[derive(Debug)]
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// A generator for one case, seeded directly.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_range(lo, hi)
    }

    /// A uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// A uniform `usize` in `[lo, hi)` (like a `lo..hi` range strategy).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.index(hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u32_range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.below(u64::from(hi - lo)) as u32
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A uniformly chosen element of `items` (like `sample::select`).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Clone>(&mut self, items: &[T]) -> T {
        self.rng.pick(items).clone()
    }

    /// A vector of uniform `f64`s in `[lo, hi)` with a length drawn from
    /// `len` (like `collection::vec(lo..hi, len)`).
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: std::ops::Range<usize>) -> Vec<f64> {
        let n = self.usize_range(len.start, len.end);
        (0..n).map(|_| self.f64_range(lo, hi)).collect()
    }

    /// A vector of values built by `f`, with a length drawn from `len`.
    pub fn vec_with<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let n = self.usize_range(len.start, len.end);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `prop` against `cases` random cases derived from `seed`. Panics
/// (propagating the property's own assertion) after printing which case
/// failed and the seed that replays it.
pub fn check(cases: u64, seed: u64, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let case_seed = derive_seed(seed, case);
        let mut g = Gen::from_seed(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "property failed on case {case}/{cases} (replay with \
                 sdb_testkit::check_case({case_seed:#x}, ..))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replays a single case by its seed (printed by [`check`] on failure).
pub fn check_case(case_seed: u64, mut prop: impl FnMut(&mut Gen)) {
    let mut g = Gen::from_seed(case_seed);
    prop(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check(32, 7, |_| n += 1);
        assert_eq!(n, 32);
    }

    #[test]
    fn cases_differ_but_replay_identically() {
        let mut firsts = Vec::new();
        check(8, 9, |g| firsts.push(g.below(1_000_000)));
        let mut again = Vec::new();
        check(8, 9, |g| again.push(g.below(1_000_000)));
        assert_eq!(firsts, again);
        // Not all cases draw the same value.
        assert!(firsts.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        check(4, 11, |_| panic!("deliberate"));
    }

    #[test]
    fn generators_stay_in_bounds() {
        check(64, 13, |g| {
            assert!((0.5..2.5).contains(&g.f64_range(0.5, 2.5)));
            assert!((3..9).contains(&g.usize_range(3, 9)));
            assert!((1..5).contains(&g.u32_range(1, 5)));
            let v = g.vec_f64(-1.0, 1.0, 2..6);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let picked = g.pick(&[1, 2, 3]);
            assert!([1, 2, 3].contains(&picked));
        });
    }
}
