//! `sdb-trace`: causal trace capture and analysis for the SDB stack.
//!
//! Turns the live [`sdb_observe`] event stream into an analyzable
//! artifact:
//!
//! - [`writer`] — serializes device-tagged [`sdb_observe::DeviceEvent`]s
//!   to compact JSONL (one event per line, replayable) and to the Chrome
//!   `trace_event` format loadable in Perfetto / `chrome://tracing`, with
//!   one track per device. Output is deterministic: a `(device, seq)`
//!   sorted stream serializes byte-identically regardless of how many
//!   threads produced it.
//! - [`json`] — a minimal zero-dependency JSON reader used for trace
//!   replay (and for validating our own output in tests).
//! - [`rules`] — a declarative anomaly/health-rule engine: [`RuleSpec`]s
//!   select a signal, window, threshold, and severity; the [`RuleEngine`]
//!   evaluates them incrementally and emits latched [`HealthFinding`]s
//!   for brownout precursors, wear-imbalance drift, thermal-derate
//!   oscillation, and charge-directive thrash.
//! - [`analyze`] — one-pass trace analysis (stream summary + rule
//!   evaluation) backing the `sdb analyze` subcommand.
//!
//! The crate depends only on `sdb-observe`; the fleet engine and CLI wire
//! it to live simulations.

pub mod analyze;
pub mod json;
pub mod rules;
pub mod writer;

pub use analyze::{analyze, analyze_jsonl, AnalysisReport, TraceSummary};
pub use rules::{
    default_rules, Cmp, HealthFinding, RuleEngine, RuleReport, RuleSpec, RuleStats, Severity,
    Signal,
};
pub use writer::{event_kind, from_jsonl, from_jsonl_line, to_chrome, to_jsonl, to_jsonl_line};
