//! The declarative anomaly/health-rule engine.
//!
//! A [`RuleSpec`] names a [`Signal`] extracted from the event stream, an
//! evaluation window, a threshold, and a severity. The [`RuleEngine`]
//! evaluates every rule incrementally as events arrive — O(window) state
//! per `(device, rule)` pair, nothing buffered beyond the window — and
//! emits a [`HealthFinding`] on each rising edge of a violation (the
//! finding latches until the signal recovers, so a sustained anomaly is
//! one finding, not one per step).
//!
//! The default rule set covers the paper's §6-style longitudinal health
//! checks: brownout precursors (sag-rate of pack SoC), realized brownouts,
//! wear-imbalance drift (SoC spread across the pack, the live precursor of
//! CCB divergence), thermal-derate oscillation, and charge-directive
//! thrash.

use sdb_observe::ObsEvent;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look in aggregate.
    Info,
    /// Degraded behavior; the device is on a bad trajectory.
    Warning,
    /// User-visible failure (brownout, hard fault).
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// The signal a rule watches, extracted incrementally from events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Decline rate of the pack's mean SoC over the window, in SoC
    /// fraction per hour (positive = draining). From step samples.
    SocSagRatePerHour,
    /// Instantaneous SoC spread across the pack (`max − min`). The live
    /// precursor of CCB wear imbalance. From step samples.
    SocSpread,
    /// Unserved load power, watts (`load − supplied`). From step samples.
    UnmetPowerW,
    /// Thermal-throttle transitions (engage or release) within the window.
    ThermalTransitionsInWindow,
    /// Ratio pushes accepted by the hardware within the window (policy
    /// evaluations with `pushed = true`).
    DirectivePushesInWindow,
    /// Watchdog engagements (link declared dark) within the window.
    WatchdogEngagementsInWindow,
    /// Lookahead-planner plan commits (re-plans) within the window.
    ReplansInWindow,
}

impl Signal {
    fn name(self) -> &'static str {
        match self {
            Signal::SocSagRatePerHour => "soc_sag_rate_per_hour",
            Signal::SocSpread => "soc_spread",
            Signal::UnmetPowerW => "unmet_power_w",
            Signal::ThermalTransitionsInWindow => "thermal_transitions_in_window",
            Signal::DirectivePushesInWindow => "directive_pushes_in_window",
            Signal::WatchdogEngagementsInWindow => "watchdog_engagements_in_window",
            Signal::ReplansInWindow => "replans_in_window",
        }
    }
}

/// Comparison direction for the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Violation when the signal exceeds the threshold.
    Above,
    /// Violation when the signal falls below the threshold.
    Below,
}

/// One declarative health rule.
#[derive(Debug, Clone)]
pub struct RuleSpec {
    /// Stable identifier (appears in findings and reports).
    pub id: String,
    /// Human-readable description of what a violation means.
    pub description: String,
    /// The watched signal.
    pub signal: Signal,
    /// Window for windowed signals (rates and counts), seconds.
    /// Instantaneous signals ignore it.
    pub window_s: f64,
    /// The threshold the signal is compared against.
    pub threshold: f64,
    /// Violation direction.
    pub cmp: Cmp,
    /// Severity of findings this rule emits.
    pub severity: Severity,
}

impl RuleSpec {
    fn violated(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Above => value > self.threshold,
            Cmp::Below => value < self.threshold,
        }
    }
}

/// The default fleet health-rule set.
#[must_use]
pub fn default_rules() -> Vec<RuleSpec> {
    vec![
        RuleSpec {
            id: "brownout".to_owned(),
            description: "load went unserved (realized brownout)".to_owned(),
            signal: Signal::UnmetPowerW,
            window_s: 0.0,
            threshold: 1e-6,
            cmp: Cmp::Above,
            severity: Severity::Critical,
        },
        RuleSpec {
            id: "soc-sag".to_owned(),
            description: "pack draining faster than 40 %/h over 15 min (brownout precursor)"
                .to_owned(),
            signal: Signal::SocSagRatePerHour,
            window_s: 900.0,
            threshold: 0.40,
            cmp: Cmp::Above,
            severity: Severity::Warning,
        },
        RuleSpec {
            id: "ccb-imbalance".to_owned(),
            description: "SoC spread across the pack beyond 35 % (wear-imbalance drift)".to_owned(),
            signal: Signal::SocSpread,
            window_s: 0.0,
            threshold: 0.35,
            cmp: Cmp::Above,
            severity: Severity::Warning,
        },
        RuleSpec {
            id: "thermal-oscillation".to_owned(),
            description: "more than 4 thermal-throttle transitions in 30 min (derate flapping)"
                .to_owned(),
            signal: Signal::ThermalTransitionsInWindow,
            window_s: 1800.0,
            threshold: 4.0,
            cmp: Cmp::Above,
            severity: Severity::Warning,
        },
        RuleSpec {
            id: "directive-thrash".to_owned(),
            description: "more than 8 accepted ratio pushes in 10 min (policy thrash)".to_owned(),
            signal: Signal::DirectivePushesInWindow,
            window_s: 600.0,
            threshold: 8.0,
            cmp: Cmp::Above,
            severity: Severity::Info,
        },
        RuleSpec {
            id: "replan-thrash".to_owned(),
            description: "more than 4 planner re-plans in 30 min (plan instability)".to_owned(),
            signal: Signal::ReplansInWindow,
            window_s: 1800.0,
            threshold: 4.0,
            cmp: Cmp::Above,
            severity: Severity::Info,
        },
        RuleSpec {
            id: "watchdog-flapping".to_owned(),
            description: "more than 2 watchdog engagements in 30 min (link repeatedly going dark)"
                .to_owned(),
            signal: Signal::WatchdogEngagementsInWindow,
            window_s: 1800.0,
            threshold: 2.0,
            cmp: Cmp::Above,
            severity: Severity::Warning,
        },
    ]
}

/// One rule violation on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthFinding {
    /// The violated rule's id.
    pub rule: String,
    /// Device the violation occurred on.
    pub device: u64,
    /// Simulation time of the rising edge, seconds.
    pub t_s: f64,
    /// The signal value that crossed the threshold.
    pub value: f64,
    /// Severity inherited from the rule.
    pub severity: Severity,
}

/// Windowed per-`(device, rule)` evaluation state.
#[derive(Debug, Default)]
struct RuleState {
    /// `(t_s, value)` samples inside the window (value is 1.0 for count
    /// signals).
    window: VecDeque<(f64, f64)>,
    /// Whether the rule is currently latched in violation.
    active: bool,
}

/// Per-rule evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleStats {
    /// Times the rule's signal was evaluated against its threshold.
    pub evaluations: u64,
    /// Findings emitted (rising edges).
    pub findings: u64,
    /// Devices with at least one finding.
    pub devices_affected: u64,
}

/// Evaluates a rule set incrementally over a (device-tagged) event stream.
#[derive(Debug)]
pub struct RuleEngine {
    rules: Vec<RuleSpec>,
    states: BTreeMap<(u64, usize), RuleState>,
    affected: BTreeMap<usize, Vec<u64>>,
    stats: Vec<RuleStats>,
    findings: Vec<HealthFinding>,
}

impl RuleEngine {
    /// An engine evaluating `rules`.
    #[must_use]
    pub fn new(rules: Vec<RuleSpec>) -> Self {
        let stats = vec![RuleStats::default(); rules.len()];
        Self {
            rules,
            states: BTreeMap::new(),
            affected: BTreeMap::new(),
            stats,
            findings: Vec::new(),
        }
    }

    /// An engine with the [`default_rules`] set.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(default_rules())
    }

    /// The rules being evaluated.
    #[must_use]
    pub fn rules(&self) -> &[RuleSpec] {
        &self.rules
    }

    /// Feeds one event. Events must arrive in non-decreasing `t_s` order
    /// *per device*; interleaving across devices is fine (state is keyed
    /// per device).
    pub fn process(&mut self, device: u64, t_s: f64, event: &ObsEvent) {
        for idx in 0..self.rules.len() {
            let rule = &self.rules[idx];
            // Extract this rule's signal sample from the event, if any.
            let sample: Option<f64> = match (rule.signal, event) {
                (Signal::SocSagRatePerHour, ObsEvent::StepSample { soc, .. }) => {
                    let n = soc.len().max(1) as f64;
                    Some(soc.iter().sum::<f64>() / n)
                }
                (Signal::SocSpread, ObsEvent::StepSample { soc, .. }) => {
                    let max = soc.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let min = soc.iter().copied().fold(f64::INFINITY, f64::min);
                    Some(if soc.is_empty() { 0.0 } else { max - min })
                }
                (
                    Signal::UnmetPowerW,
                    ObsEvent::StepSample {
                        load_w, supplied_w, ..
                    },
                ) => Some((load_w - supplied_w).max(0.0)),
                (Signal::ThermalTransitionsInWindow, ObsEvent::ThermalThrottle { .. }) => Some(1.0),
                (
                    Signal::DirectivePushesInWindow,
                    ObsEvent::PolicyEvaluation { pushed: true, .. },
                ) => Some(1.0),
                (
                    Signal::WatchdogEngagementsInWindow,
                    ObsEvent::WatchdogTransition { engaged: true, .. },
                ) => Some(1.0),
                (Signal::ReplansInWindow, ObsEvent::PlanCommit { .. }) => Some(1.0),
                _ => None,
            };
            let Some(sample) = sample else { continue };

            let state = self.states.entry((device, idx)).or_default();
            // Maintain the window, then reduce it to the signal value.
            let value = match rule.signal {
                Signal::SocSpread | Signal::UnmetPowerW => sample,
                Signal::SocSagRatePerHour => {
                    state.window.push_back((t_s, sample));
                    while let Some(&(t0, _)) = state.window.front() {
                        if t_s - t0 > rule.window_s && state.window.len() > 2 {
                            state.window.pop_front();
                        } else {
                            break;
                        }
                    }
                    let (t0, v0) = *state.window.front().expect("window nonempty");
                    let span_s = t_s - t0;
                    // Need at least half a window of history for a stable
                    // rate estimate.
                    if span_s < rule.window_s * 0.5 {
                        continue;
                    }
                    (v0 - sample) / (span_s / 3600.0)
                }
                Signal::ThermalTransitionsInWindow
                | Signal::DirectivePushesInWindow
                | Signal::WatchdogEngagementsInWindow
                | Signal::ReplansInWindow => {
                    state.window.push_back((t_s, sample));
                    while let Some(&(t0, _)) = state.window.front() {
                        if t_s - t0 > rule.window_s {
                            state.window.pop_front();
                        } else {
                            break;
                        }
                    }
                    state.window.len() as f64
                }
            };

            self.stats[idx].evaluations += 1;
            let violated = rule.violated(value);
            if violated && !state.active {
                state.active = true;
                self.stats[idx].findings += 1;
                let devices = self.affected.entry(idx).or_default();
                if devices.last() != Some(&device) && !devices.contains(&device) {
                    devices.push(device);
                    self.stats[idx].devices_affected += 1;
                }
                self.findings.push(HealthFinding {
                    rule: rule.id.clone(),
                    device,
                    t_s,
                    value,
                    severity: rule.severity,
                });
            } else if !violated {
                state.active = false;
            }
        }
    }

    /// Finishes evaluation, returning the report.
    #[must_use]
    pub fn finish(self) -> RuleReport {
        RuleReport {
            rules: self.rules,
            stats: self.stats,
            findings: self.findings,
        }
    }
}

/// The outcome of a rule evaluation pass.
#[derive(Debug, Clone)]
pub struct RuleReport {
    /// The evaluated rules.
    pub rules: Vec<RuleSpec>,
    /// Per-rule statistics, parallel to `rules`.
    pub stats: Vec<RuleStats>,
    /// Every finding, in processing order (device order for a sorted
    /// trace).
    pub findings: Vec<HealthFinding>,
}

impl RuleReport {
    /// Number of rules that evaluated their signal at least once.
    #[must_use]
    pub fn rules_evaluated(&self) -> usize {
        self.stats.iter().filter(|s| s.evaluations > 0).count()
    }

    /// Accepted directive pushes per planner re-plan, or `None` when the
    /// stream carries no plan commits (greedy runs). Each windowed-count
    /// evaluation corresponds to exactly one matching event, so the
    /// evaluation counters are the stream-wide event totals. A planner
    /// whose plans stick should keep this near the pushes a single plan
    /// needs; a climbing ratio means directives churn between re-plans.
    #[must_use]
    pub fn thrash_per_replan(&self) -> Option<f64> {
        let count = |signal: Signal| {
            self.rules
                .iter()
                .zip(&self.stats)
                .filter(|(r, _)| r.signal == signal)
                .map(|(_, s)| s.evaluations)
                .max()
                .unwrap_or(0)
        };
        let replans = count(Signal::ReplansInWindow);
        if replans == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(count(Signal::DirectivePushesInWindow) as f64 / replans as f64)
    }

    /// Findings at or above `severity`.
    #[must_use]
    pub fn findings_at_least(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= severity)
            .count()
    }

    /// Renders the per-rule summary and the worst findings as text.
    #[must_use]
    pub fn render_text(&self, max_findings: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rules evaluated: {} / {}  |  findings: {}",
            self.rules_evaluated(),
            self.rules.len(),
            self.findings.len()
        );
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>10} {:>9}",
            "rule", "severity", "evaluations", "findings", "devices"
        );
        for (rule, stats) in self.rules.iter().zip(&self.stats) {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12} {:>10} {:>9}",
                rule.id,
                rule.severity.to_string(),
                stats.evaluations,
                stats.findings,
                stats.devices_affected
            );
        }
        if let Some(ratio) = self.thrash_per_replan() {
            let _ = writeln!(out, "directive thrash per re-plan: {ratio:.2}");
        }
        if !self.findings.is_empty() {
            let mut worst: Vec<&HealthFinding> = self.findings.iter().collect();
            worst.sort_by(|a, b| {
                b.severity
                    .cmp(&a.severity)
                    .then(a.device.cmp(&b.device))
                    .then(a.t_s.total_cmp(&b.t_s))
            });
            let shown = worst.len().min(max_findings);
            let _ = writeln!(out, "top findings ({shown} of {}):", worst.len());
            for f in &worst[..shown] {
                let _ = writeln!(
                    out,
                    "  [{:>8}] device {:>5} t={:>9.1}s {} = {:.4}",
                    f.severity.to_string(),
                    f.device,
                    f.t_s,
                    f.rule,
                    f.value
                );
            }
        }
        out
    }

    /// Renders the report as deterministic JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rules\":[");
        for (i, (rule, stats)) in self.rules.iter().zip(&self.stats).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"signal\":\"{}\",\"severity\":\"{}\",\"window_s\":{:?},\"threshold\":{:?},\"evaluations\":{},\"findings\":{},\"devices_affected\":{}}}",
                rule.id,
                rule.signal.name(),
                rule.severity,
                rule.window_s,
                rule.threshold,
                stats.evaluations,
                stats.findings,
                stats.devices_affected
            );
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"device\":{},\"t_s\":{:?},\"value\":{:?},\"severity\":\"{}\"}}",
                f.rule, f.device, f.t_s, f.value, f.severity
            );
        }
        out.push_str("],\"thrash_per_replan\":");
        match self.thrash_per_replan() {
            Some(v) if v.is_finite() => {
                let _ = write!(out, "{v:?}");
            }
            _ => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(soc: Vec<f64>, load_w: f64, supplied_w: f64) -> ObsEvent {
        let n = soc.len();
        ObsEvent::StepSample {
            load_w,
            supplied_w,
            loss_w: 0.0,
            soc,
            current_a: vec![0.0; n],
        }
    }

    #[test]
    fn brownout_fires_once_per_episode() {
        let mut eng = RuleEngine::with_defaults();
        // Served, unserved, unserved (latched), served, unserved again.
        for (t, sup) in [
            (60.0, 5.0),
            (120.0, 3.0),
            (180.0, 3.0),
            (240.0, 5.0),
            (300.0, 2.0),
        ] {
            eng.process(0, t, &step(vec![0.5, 0.5], 5.0, sup));
        }
        let report = eng.finish();
        let brownouts: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "brownout")
            .collect();
        assert_eq!(brownouts.len(), 2, "{:?}", report.findings);
        assert_eq!(brownouts[0].t_s, 120.0);
        assert_eq!(brownouts[1].t_s, 300.0);
        assert_eq!(brownouts[0].severity, Severity::Critical);
    }

    #[test]
    fn sag_rate_needs_window_history() {
        let mut eng = RuleEngine::with_defaults();
        // 60 s steps, mean SoC falling 1 %/min = 60 %/h — over threshold,
        // but only after ≥450 s of history.
        for i in 0..20u64 {
            let t = 60.0 * (i + 1) as f64;
            let soc = 1.0 - 0.01 * (i + 1) as f64;
            eng.process(7, t, &step(vec![soc, soc], 1.0, 1.0));
        }
        let report = eng.finish();
        let sag: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "soc-sag")
            .collect();
        assert_eq!(sag.len(), 1, "sustained sag latches to one finding");
        assert!(sag[0].t_s >= 480.0, "fired too early at {}", sag[0].t_s);
        assert!((sag[0].value - 0.6).abs() < 0.05, "rate {}", sag[0].value);
    }

    #[test]
    fn soc_spread_flags_imbalance() {
        let mut eng = RuleEngine::with_defaults();
        eng.process(2, 60.0, &step(vec![0.9, 0.8], 1.0, 1.0));
        eng.process(2, 120.0, &step(vec![0.9, 0.4], 1.0, 1.0));
        let report = eng.finish();
        let imb: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "ccb-imbalance")
            .collect();
        assert_eq!(imb.len(), 1);
        assert!((imb[0].value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thermal_oscillation_counts_in_window() {
        let mut eng = RuleEngine::with_defaults();
        let throttle = |engaged| ObsEvent::ThermalThrottle {
            battery: 0,
            engaged,
            temperature_c: 45.0,
        };
        // 5 transitions within 30 min → count exceeds 4 on the fifth.
        for i in 0..5u64 {
            eng.process(1, 120.0 * (i + 1) as f64, &throttle(i % 2 == 0));
        }
        let report = eng.finish();
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.rule == "thermal-oscillation")
                .count(),
            1
        );
        // Spread far apart (outside the window) the same count is fine.
        let mut eng = RuleEngine::with_defaults();
        for i in 0..5u64 {
            eng.process(1, 2000.0 * (i + 1) as f64, &throttle(i % 2 == 0));
        }
        assert_eq!(eng.finish().findings.len(), 0);
    }

    #[test]
    fn directive_thrash_counts_only_pushed_evaluations() {
        let mut eng = RuleEngine::with_defaults();
        let eval = |pushed| ObsEvent::PolicyEvaluation {
            pushed,
            charge_directive: 0.5,
            discharge_directive: 0.5,
        };
        for i in 0..20u64 {
            eng.process(0, 30.0 * (i + 1) as f64, &eval(i % 2 == 0));
        }
        // 10 pushes in 600 s window: the window holds ≤10 pushed samples →
        // crosses the >8 threshold.
        let report = eng.finish();
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.rule == "directive-thrash")
                .count(),
            1
        );
    }

    #[test]
    fn replan_thrash_counts_plan_commits() {
        let commit = ObsEvent::PlanCommit {
            discharge_directive: 0.4,
            horizon_s: 3600.0,
            forecast_mae_w: 0.1,
        };
        let eval = ObsEvent::PolicyEvaluation {
            pushed: true,
            charge_directive: 0.5,
            discharge_directive: 0.5,
        };
        // 5 commits within 30 min cross the >4 threshold on the fifth.
        let mut eng = RuleEngine::with_defaults();
        for i in 0..5u64 {
            eng.process(3, 300.0 * (i + 1) as f64, &commit);
            eng.process(3, 300.0 * (i + 1) as f64 + 1.0, &eval);
            eng.process(3, 300.0 * (i + 1) as f64 + 2.0, &eval);
        }
        let report = eng.finish();
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.rule == "replan-thrash")
                .count(),
            1
        );
        // 10 pushes over 5 re-plans.
        assert_eq!(report.thrash_per_replan(), Some(2.0));
        // Spread out past the window, the same commits stay quiet.
        let mut eng = RuleEngine::with_defaults();
        for i in 0..5u64 {
            eng.process(3, 2000.0 * (i + 1) as f64, &commit);
        }
        let report = eng.finish();
        assert_eq!(report.findings.len(), 0);
        assert_eq!(report.thrash_per_replan(), Some(0.0));
        // A greedy stream (no commits) reports no ratio at all.
        let mut eng = RuleEngine::with_defaults();
        eng.process(3, 60.0, &eval);
        assert_eq!(eng.finish().thrash_per_replan(), None);
    }

    #[test]
    fn devices_are_tracked_independently() {
        let mut eng = RuleEngine::with_defaults();
        eng.process(0, 60.0, &step(vec![0.9, 0.3], 1.0, 1.0));
        eng.process(1, 60.0, &step(vec![0.9, 0.3], 1.0, 1.0));
        let report = eng.finish();
        let imb: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "ccb-imbalance")
            .collect();
        assert_eq!(imb.len(), 2);
        let idx = report
            .rules
            .iter()
            .position(|r| r.id == "ccb-imbalance")
            .unwrap();
        assert_eq!(report.stats[idx].devices_affected, 2);
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut eng = RuleEngine::with_defaults();
        eng.process(0, 60.0, &step(vec![0.9, 0.3], 5.0, 4.0));
        let report = eng.finish();
        assert!(report.rules_evaluated() >= 2);
        assert!(report.findings_at_least(Severity::Critical) >= 1);
        let text = report.render_text(10);
        assert!(text.contains("rules evaluated:"));
        assert!(text.contains("brownout"));
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"brownout\""));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(json, report.to_json());
    }
}
