//! Whole-trace analysis: stream summary + rule evaluation in one pass.
//!
//! [`analyze`] walks a device-tagged event stream once, building a
//! [`TraceSummary`] (event counts per kind, device/time extent) and
//! feeding every event through a [`RuleEngine`]. The result renders as
//! human-readable text or deterministic JSON — the backing store for the
//! `sdb analyze` subcommand.

use crate::rules::{RuleEngine, RuleReport, RuleSpec};
use crate::writer::{event_kind, from_jsonl};
use sdb_observe::DeviceEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Shape of the analyzed event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total events analyzed.
    pub events: usize,
    /// Distinct devices present in the stream.
    pub devices: usize,
    /// Earliest event timestamp, seconds (0 when empty).
    pub t_min_s: f64,
    /// Latest event timestamp, seconds (0 when empty).
    pub t_max_s: f64,
    /// Event counts per kind, sorted by kind name.
    pub by_kind: BTreeMap<&'static str, u64>,
}

/// The outcome of one analysis pass.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Stream shape.
    pub summary: TraceSummary,
    /// Rule evaluation outcome.
    pub rules: RuleReport,
}

/// Analyzes a device-tagged event stream against `rules`.
///
/// Events are processed in the order given; pass a `(device, seq)`-sorted
/// stream (what [`from_jsonl`] and the fleet engine produce) for
/// deterministic finding order.
#[must_use]
pub fn analyze(events: &[DeviceEvent], rules: Vec<RuleSpec>) -> AnalysisReport {
    let mut summary = TraceSummary::default();
    let mut engine = RuleEngine::new(rules);
    let mut devices: Vec<u64> = Vec::new();
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for e in events {
        summary.events += 1;
        *summary.by_kind.entry(event_kind(&e.event)).or_insert(0) += 1;
        if devices.binary_search(&e.device).is_err() {
            let pos = devices.partition_point(|&d| d < e.device);
            devices.insert(pos, e.device);
        }
        t_min = t_min.min(e.t_s);
        t_max = t_max.max(e.t_s);
        engine.process(e.device, e.t_s, &e.event);
    }
    summary.devices = devices.len();
    if summary.events > 0 {
        summary.t_min_s = t_min;
        summary.t_max_s = t_max;
    }
    AnalysisReport {
        summary,
        rules: engine.finish(),
    }
}

/// Parses a JSONL trace and analyzes it against `rules`.
///
/// # Errors
///
/// Returns the parse error (with line number) for a malformed trace file.
pub fn analyze_jsonl(text: &str, rules: Vec<RuleSpec>) -> Result<AnalysisReport, String> {
    let events = from_jsonl(text)?;
    Ok(analyze(&events, rules))
}

impl AnalysisReport {
    /// Renders the report as human-readable text.
    #[must_use]
    pub fn render_text(&self, max_findings: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} devices, t = [{:.1} s, {:.1} s]",
            self.summary.events, self.summary.devices, self.summary.t_min_s, self.summary.t_max_s
        );
        for (kind, n) in &self.summary.by_kind {
            let _ = writeln!(out, "  {kind:<22} {n:>10}");
        }
        out.push_str(&self.rules.render_text(max_findings));
        out
    }

    /// Renders the report as deterministic JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"summary\":{");
        let _ = write!(
            out,
            "\"events\":{},\"devices\":{},\"t_min_s\":{:?},\"t_max_s\":{:?},\"by_kind\":{{",
            self.summary.events, self.summary.devices, self.summary.t_min_s, self.summary.t_max_s
        );
        for (i, (kind, n)) in self.summary.by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{n}");
        }
        out.push_str("}},\"analysis\":");
        out.push_str(&self.rules.to_json());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;
    use crate::writer::to_jsonl;
    use sdb_observe::ObsEvent;

    fn sample_events() -> Vec<DeviceEvent> {
        let step = |soc: Vec<f64>, load: f64, sup: f64| ObsEvent::StepSample {
            load_w: load,
            supplied_w: sup,
            loss_w: 0.01,
            current_a: vec![0.0; soc.len()],
            soc,
        };
        vec![
            DeviceEvent {
                device: 0,
                seq: 0,
                t_s: 60.0,
                event: step(vec![0.9, 0.88], 2.0, 2.0),
            },
            DeviceEvent {
                device: 0,
                seq: 1,
                t_s: 120.0,
                event: step(vec![0.8, 0.3], 5.0, 4.0),
            },
            DeviceEvent {
                device: 1,
                seq: 0,
                t_s: 60.0,
                event: ObsEvent::ThermalThrottle {
                    battery: 0,
                    engaged: true,
                    temperature_c: 44.0,
                },
            },
        ]
    }

    #[test]
    fn analyzes_counts_and_findings() {
        let report = analyze(&sample_events(), default_rules());
        assert_eq!(report.summary.events, 3);
        assert_eq!(report.summary.devices, 2);
        assert_eq!(report.summary.t_min_s, 60.0);
        assert_eq!(report.summary.t_max_s, 120.0);
        assert_eq!(report.summary.by_kind["step_sample"], 2);
        assert_eq!(report.summary.by_kind["thermal_throttle"], 1);
        // Device 0's second step both browns out and shows imbalance.
        assert!(report
            .rules
            .findings
            .iter()
            .any(|f| f.rule == "brownout" && f.device == 0));
        assert!(report
            .rules
            .findings
            .iter()
            .any(|f| f.rule == "ccb-imbalance" && f.device == 0));
        assert!(report.rules.rules_evaluated() >= 3);
    }

    #[test]
    fn jsonl_round_trip_matches_direct_analysis() {
        let events = sample_events();
        let direct = analyze(&events, default_rules());
        let replayed = analyze_jsonl(&to_jsonl(&events), default_rules()).unwrap();
        assert_eq!(direct.to_json(), replayed.to_json());
    }

    #[test]
    fn renders_text_and_json() {
        let report = analyze(&sample_events(), default_rules());
        let text = report.render_text(5);
        assert!(text.contains("trace: 3 events, 2 devices"));
        assert!(text.contains("rules evaluated:"));
        let json = report.to_json();
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"analysis\""));
        // Valid per our own parser, and deterministic.
        crate::json::parse(&json).unwrap();
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn empty_stream_is_harmless() {
        let report = analyze(&[], default_rules());
        assert_eq!(report.summary.events, 0);
        assert_eq!(report.summary.devices, 0);
        assert_eq!(report.rules.findings.len(), 0);
        assert_eq!(report.rules.rules_evaluated(), 0);
    }

    #[test]
    fn bad_jsonl_reports_error() {
        assert!(analyze_jsonl("not json\n", default_rules()).is_err());
    }
}
