//! A minimal zero-dependency JSON reader for trace replay.
//!
//! The trace writer emits a known, machine-generated subset of JSON (no
//! exotic numbers, UTF-8 throughout); this parser accepts all of standard
//! JSON anyway so hand-edited or foreign trace files still load. Numbers
//! are parsed as `f64` — every value the writer produces round-trips
//! exactly (shortest-round-trip formatting on the way out).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (keys are unique in every
    /// document the writer emits).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` on anything else.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map (keys sorted), if an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with a byte offset) of the first
/// syntax error, including trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                    // input came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_owned())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_subset() {
        let v = parse(
            r#"{"device":3,"t_s":60.5,"kind":"ratio_push","ratios":[0.25,0.75],"pushed":true,"x":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("device").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("t_s").unwrap().as_f64(), Some(60.5));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("ratio_push"));
        let arr = v.get("ratios").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_f64(), Some(0.75));
        assert_eq!(v.get("pushed").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn round_trips_shortest_floats() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, -12345.6789] {
            let v = parse(&format!("{x:?}")).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"[{"a":[1,2,{"b":false}]},[],{}]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        let inner = arr[0].get("a").unwrap().as_arr().unwrap();
        assert_eq!(inner[2].get("b").unwrap().as_bool(), Some(false));
    }
}
