//! Trace serialization: JSONL capture files and Chrome `trace_event`
//! exports.
//!
//! The JSONL format is the canonical record: one event per line,
//! `{"device":…,"seq":…,"t_s":…,"kind":…,…}`, sorted by `(device, seq)`.
//! Floats use shortest-round-trip formatting, so a trace written from a
//! fleet run is byte-identical for any worker-thread count and parses back
//! to bit-identical events. The Chrome export is a derived view of the
//! same events — a `chrome://tracing` / Perfetto-loadable JSON object with
//! one process track per device (SoC/load counters plus instant events).

use crate::json::{self, Value};
use sdb_observe::{DeviceEvent, Flow, ObsEvent};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Canonical `kind` strings, one per [`ObsEvent`] variant.
pub const EVENT_KINDS: &[&str] = &[
    "ratio_push",
    "profile_transition",
    "thermal_throttle",
    "gauge_recalibration",
    "policy_evaluation",
    "fault_injection",
    "safety_clamp",
    "step_sample",
    "battery_presence",
    "command_retry",
    "watchdog_transition",
    "gauge_degraded",
    "plan_commit",
];

/// The `kind` string of one event.
#[must_use]
pub fn event_kind(event: &ObsEvent) -> &'static str {
    match event {
        ObsEvent::RatioPush { .. } => "ratio_push",
        ObsEvent::ProfileTransition { .. } => "profile_transition",
        ObsEvent::ThermalThrottle { .. } => "thermal_throttle",
        ObsEvent::GaugeRecalibration { .. } => "gauge_recalibration",
        ObsEvent::PolicyEvaluation { .. } => "policy_evaluation",
        ObsEvent::FaultInjection { .. } => "fault_injection",
        ObsEvent::SafetyClamp { .. } => "safety_clamp",
        ObsEvent::StepSample { .. } => "step_sample",
        ObsEvent::BatteryPresence { .. } => "battery_presence",
        ObsEvent::CommandRetry { .. } => "command_retry",
        ObsEvent::WatchdogTransition { .. } => "watchdog_transition",
        ObsEvent::GaugeDegraded { .. } => "gauge_degraded",
        ObsEvent::PlanCommit { .. } => "plan_commit",
    }
}

/// Shortest-round-trip float formatting (deterministic; never produces
/// `NaN`/`inf` for the values the stack emits, but guard anyway).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "null".to_owned()
    } else if v > 0.0 {
        "1e999".to_owned() // parses back to +inf
    } else {
        "-1e999".to_owned()
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn f64_list(out: &mut String, key: &str, values: &[f64]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*v));
    }
    out.push(']');
}

/// Serializes one event as a single JSONL line (no trailing newline).
#[must_use]
pub fn to_jsonl_line(e: &DeviceEvent) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"device\":{},\"seq\":{},\"t_s\":{},\"kind\":\"{}\"",
        e.device,
        e.seq,
        fmt_f64(e.t_s),
        event_kind(&e.event)
    );
    match &e.event {
        ObsEvent::RatioPush { flow, ratios } => {
            let _ = write!(out, ",\"flow\":\"{flow}\"");
            f64_list(&mut out, "ratios", ratios);
        }
        ObsEvent::ProfileTransition { battery, from, to } => {
            let _ = write!(
                out,
                ",\"battery\":{battery},\"from\":\"{}\",\"to\":\"{}\"",
                esc(from),
                esc(to)
            );
        }
        ObsEvent::ThermalThrottle {
            battery,
            engaged,
            temperature_c,
        } => {
            let _ = write!(
                out,
                ",\"battery\":{battery},\"engaged\":{engaged},\"temperature_c\":{}",
                fmt_f64(*temperature_c)
            );
        }
        ObsEvent::GaugeRecalibration {
            battery,
            soc_before,
            soc_after,
        } => {
            let _ = write!(
                out,
                ",\"battery\":{battery},\"soc_before\":{},\"soc_after\":{}",
                fmt_f64(*soc_before),
                fmt_f64(*soc_after)
            );
        }
        ObsEvent::PolicyEvaluation {
            pushed,
            charge_directive,
            discharge_directive,
        } => {
            let _ = write!(
                out,
                ",\"pushed\":{pushed},\"charge_directive\":{},\"discharge_directive\":{}",
                fmt_f64(*charge_directive),
                fmt_f64(*discharge_directive)
            );
        }
        ObsEvent::FaultInjection { description } => {
            let _ = write!(out, ",\"description\":\"{}\"", esc(description));
        }
        ObsEvent::SafetyClamp {
            battery,
            flow,
            requested_a,
            applied_a,
        } => {
            let _ = write!(
                out,
                ",\"battery\":{battery},\"flow\":\"{flow}\",\"requested_a\":{},\"applied_a\":{}",
                fmt_f64(*requested_a),
                fmt_f64(*applied_a)
            );
        }
        ObsEvent::StepSample {
            load_w,
            supplied_w,
            loss_w,
            soc,
            current_a,
        } => {
            let _ = write!(
                out,
                ",\"load_w\":{},\"supplied_w\":{},\"loss_w\":{}",
                fmt_f64(*load_w),
                fmt_f64(*supplied_w),
                fmt_f64(*loss_w)
            );
            f64_list(&mut out, "soc", soc);
            f64_list(&mut out, "current_a", current_a);
        }
        ObsEvent::BatteryPresence { battery, present } => {
            let _ = write!(out, ",\"battery\":{battery},\"present\":{present}");
        }
        ObsEvent::CommandRetry { attempt, backoff_s } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"backoff_s\":{}",
                fmt_f64(*backoff_s)
            );
        }
        ObsEvent::WatchdogTransition { engaged, silent_s } => {
            let _ = write!(
                out,
                ",\"engaged\":{engaged},\"silent_s\":{}",
                fmt_f64(*silent_s)
            );
        }
        ObsEvent::GaugeDegraded {
            battery,
            degraded,
            reason,
        } => {
            let _ = write!(
                out,
                ",\"battery\":{battery},\"degraded\":{degraded},\"reason\":\"{}\"",
                esc(reason)
            );
        }
        ObsEvent::PlanCommit {
            discharge_directive,
            horizon_s,
            forecast_mae_w,
        } => {
            let _ = write!(
                out,
                ",\"discharge_directive\":{},\"horizon_s\":{},\"forecast_mae_w\":{}",
                fmt_f64(*discharge_directive),
                fmt_f64(*horizon_s),
                fmt_f64(*forecast_mae_w)
            );
        }
    }
    out.push('}');
    out
}

/// Renders a full trace as JSONL (one event per line, trailing newline).
/// The caller is expected to pass events already sorted by
/// `(device, seq)` — the fleet engine's capture order.
#[must_use]
pub fn to_jsonl(events: &[DeviceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&to_jsonl_line(e));
        out.push('\n');
    }
    out
}

/// Profile names recorded in traces are interned back to `&'static str`
/// on replay (the event vocabulary uses static names). The set of
/// distinct profile names is tiny, so the leak per distinct name is
/// bounded and harmless in the analysis CLI.
fn intern(s: &str) -> &'static str {
    static KNOWN: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut known = KNOWN.lock().expect("intern table poisoned");
    if let Some(k) = known.iter().find(|k| **k == s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    known.push(leaked);
    leaked
}

fn parse_flow(v: &Value) -> Result<Flow, String> {
    match v.as_str() {
        Some("charge") => Ok(Flow::Charge),
        Some("discharge") => Ok(Flow::Discharge),
        other => Err(format!("bad flow value {other:?}")),
    }
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn need_usize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(need_u64(v, key)?).map_err(|e| e.to_string())
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing boolean field `{key}`"))
}

fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn need_f64_list(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric `{key}`")))
        .collect()
}

/// Parses one JSONL line back into a [`DeviceEvent`].
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn from_jsonl_line(line: &str) -> Result<DeviceEvent, String> {
    let v = json::parse(line)?;
    let event = match need_str(&v, "kind")? {
        "ratio_push" => ObsEvent::RatioPush {
            flow: parse_flow(v.get("flow").ok_or("missing `flow`")?)?,
            ratios: need_f64_list(&v, "ratios")?,
        },
        "profile_transition" => ObsEvent::ProfileTransition {
            battery: need_usize(&v, "battery")?,
            from: intern(need_str(&v, "from")?),
            to: intern(need_str(&v, "to")?),
        },
        "thermal_throttle" => ObsEvent::ThermalThrottle {
            battery: need_usize(&v, "battery")?,
            engaged: need_bool(&v, "engaged")?,
            temperature_c: need_f64(&v, "temperature_c")?,
        },
        "gauge_recalibration" => ObsEvent::GaugeRecalibration {
            battery: need_usize(&v, "battery")?,
            soc_before: need_f64(&v, "soc_before")?,
            soc_after: need_f64(&v, "soc_after")?,
        },
        "policy_evaluation" => ObsEvent::PolicyEvaluation {
            pushed: need_bool(&v, "pushed")?,
            charge_directive: need_f64(&v, "charge_directive")?,
            discharge_directive: need_f64(&v, "discharge_directive")?,
        },
        "fault_injection" => ObsEvent::FaultInjection {
            description: need_str(&v, "description")?.to_owned(),
        },
        "safety_clamp" => ObsEvent::SafetyClamp {
            battery: need_usize(&v, "battery")?,
            flow: parse_flow(v.get("flow").ok_or("missing `flow`")?)?,
            requested_a: need_f64(&v, "requested_a")?,
            applied_a: need_f64(&v, "applied_a")?,
        },
        "step_sample" => ObsEvent::StepSample {
            load_w: need_f64(&v, "load_w")?,
            supplied_w: need_f64(&v, "supplied_w")?,
            loss_w: need_f64(&v, "loss_w")?,
            soc: need_f64_list(&v, "soc")?,
            current_a: need_f64_list(&v, "current_a")?,
        },
        "battery_presence" => ObsEvent::BatteryPresence {
            battery: need_usize(&v, "battery")?,
            present: need_bool(&v, "present")?,
        },
        "command_retry" => ObsEvent::CommandRetry {
            attempt: u32::try_from(need_u64(&v, "attempt")?).map_err(|e| e.to_string())?,
            backoff_s: need_f64(&v, "backoff_s")?,
        },
        "watchdog_transition" => ObsEvent::WatchdogTransition {
            engaged: need_bool(&v, "engaged")?,
            silent_s: need_f64(&v, "silent_s")?,
        },
        "gauge_degraded" => ObsEvent::GaugeDegraded {
            battery: need_usize(&v, "battery")?,
            degraded: need_bool(&v, "degraded")?,
            reason: intern(need_str(&v, "reason")?),
        },
        "plan_commit" => ObsEvent::PlanCommit {
            discharge_directive: need_f64(&v, "discharge_directive")?,
            horizon_s: need_f64(&v, "horizon_s")?,
            forecast_mae_w: need_f64(&v, "forecast_mae_w")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(DeviceEvent {
        device: need_u64(&v, "device")?,
        seq: need_u64(&v, "seq")?,
        t_s: need_f64(&v, "t_s")?,
        event,
    })
}

/// Parses a whole JSONL trace (blank lines skipped), re-sorting by
/// `(device, seq)` so hand-concatenated files still analyze correctly.
///
/// # Errors
///
/// Returns the first malformed line with its 1-based line number.
pub fn from_jsonl(text: &str) -> Result<Vec<DeviceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(from_jsonl_line(line).map_err(|e| format!("trace line {}: {e}", i + 1))?);
    }
    events.sort_by_key(|e| (e.device, e.seq));
    Ok(events)
}

/// Renders a Chrome `trace_event` JSON document from a trace: one process
/// track per device (named via metadata events), SoC/power counter tracks
/// from step samples, and instant events for everything else. Load the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
/// simulation time in microseconds.
#[must_use]
pub fn to_chrome(events: &[DeviceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };

    let mut last_device: Option<u64> = None;
    for e in events {
        let pid = e.device;
        if last_device != Some(pid) {
            last_device = Some(pid);
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"device-{pid}\"}}}}"
                ),
                &mut out,
            );
        }
        let ts = fmt_f64(e.t_s * 1e6);
        match &e.event {
            ObsEvent::StepSample {
                load_w,
                supplied_w,
                soc,
                ..
            } => {
                // Counter tracks: per-battery SoC and load vs supplied power.
                let mut soc_args = String::new();
                for (i, s) in soc.iter().enumerate() {
                    if i > 0 {
                        soc_args.push(',');
                    }
                    let _ = write!(soc_args, "\"b{i}\":{}", fmt_f64(*s));
                }
                emit(
                    format!(
                        "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\"name\":\"soc\",\"args\":{{{soc_args}}}}}"
                    ),
                    &mut out,
                );
                emit(
                    format!(
                        "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\"name\":\"power_w\",\"args\":{{\"load\":{},\"supplied\":{}}}}}",
                        fmt_f64(*load_w),
                        fmt_f64(*supplied_w)
                    ),
                    &mut out,
                );
            }
            other => {
                emit(
                    format!(
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"s\":\"p\",\"name\":\"{}\",\"args\":{{\"detail\":\"{}\"}}}}",
                        event_kind(other),
                        esc(&other.to_string())
                    ),
                    &mut out,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<DeviceEvent> {
        vec![
            DeviceEvent {
                device: 0,
                seq: 0,
                t_s: 60.0,
                event: ObsEvent::RatioPush {
                    flow: Flow::Discharge,
                    ratios: vec![0.25, 0.75],
                },
            },
            DeviceEvent {
                device: 0,
                seq: 1,
                t_s: 60.0,
                event: ObsEvent::StepSample {
                    load_w: 5.0,
                    supplied_w: 4.5,
                    loss_w: 0.125,
                    soc: vec![0.9, 0.8],
                    current_a: vec![0.4, 1.2],
                },
            },
            DeviceEvent {
                device: 1,
                seq: 0,
                t_s: 120.5,
                event: ObsEvent::ProfileTransition {
                    battery: 1,
                    from: "standard",
                    to: "fast",
                },
            },
            DeviceEvent {
                device: 1,
                seq: 1,
                t_s: 130.0,
                event: ObsEvent::FaultInjection {
                    description: "dropped \"cmd\"\nline".to_owned(),
                },
            },
            DeviceEvent {
                device: 1,
                seq: 2,
                t_s: 131.0,
                event: ObsEvent::ThermalThrottle {
                    battery: 0,
                    engaged: true,
                    temperature_c: 45.25,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 3,
                t_s: 140.0,
                event: ObsEvent::PolicyEvaluation {
                    pushed: true,
                    charge_directive: 0.5,
                    discharge_directive: 1.0 / 3.0,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 4,
                t_s: 141.0,
                event: ObsEvent::SafetyClamp {
                    battery: 0,
                    flow: Flow::Charge,
                    requested_a: 3.5,
                    applied_a: 2.0,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 5,
                t_s: 142.0,
                event: ObsEvent::GaugeRecalibration {
                    battery: 1,
                    soc_before: 0.52,
                    soc_after: 0.49,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 6,
                t_s: 143.0,
                event: ObsEvent::BatteryPresence {
                    battery: 1,
                    present: false,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 7,
                t_s: 150.0,
                event: ObsEvent::CommandRetry {
                    attempt: 2,
                    backoff_s: 7.5,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 8,
                t_s: 155.0,
                event: ObsEvent::WatchdogTransition {
                    engaged: true,
                    silent_s: 30.0,
                },
            },
            DeviceEvent {
                device: 1,
                seq: 9,
                t_s: 156.0,
                event: ObsEvent::GaugeDegraded {
                    battery: 0,
                    degraded: true,
                    reason: "stuck-soc",
                },
            },
            DeviceEvent {
                device: 1,
                seq: 10,
                t_s: 157.0,
                event: ObsEvent::PlanCommit {
                    discharge_directive: 0.625,
                    horizon_s: 3600.0,
                    forecast_mae_w: 0.0625,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_floats_round_trip_bit_exactly() {
        let events = sample_events();
        let back = from_jsonl(&to_jsonl(&events)).unwrap();
        for (a, b) in events.iter().zip(&back) {
            assert_eq!(a.t_s.to_bits(), b.t_s.to_bits());
        }
        // 1/3 survives the trip through text.
        match &back[5].event {
            ObsEvent::PolicyEvaluation {
                discharge_directive,
                ..
            } => assert_eq!(discharge_directive.to_bits(), (1.0f64 / 3.0).to_bits()),
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn from_jsonl_reorders_and_skips_blanks() {
        let events = sample_events();
        let mut lines: Vec<String> = events.iter().map(to_jsonl_line).collect();
        lines.reverse();
        let text = format!("\n{}\n\n", lines.join("\n\n"));
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn bad_lines_report_their_line_number() {
        let err = from_jsonl("{\"device\":0}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let good = to_jsonl_line(&sample_events()[0]);
        let err = from_jsonl(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn chrome_export_is_structurally_sound() {
        let events = sample_events();
        let chrome = to_chrome(&events);
        // It must itself be valid JSON (our parser accepts full JSON).
        let v = json::parse(&chrome).unwrap();
        let arr = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 2 counters (one step sample) + 12 instants.
        assert_eq!(arr.len(), 16);
        assert!(chrome.contains("\"name\":\"device-0\""));
        assert!(chrome.contains("\"name\":\"device-1\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        // Timestamps are microseconds.
        assert!(chrome.contains("\"ts\":120500000.0"));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err =
            from_jsonl_line(r#"{"device":0,"seq":0,"t_s":1.0,"kind":"mystery"}"#).unwrap_err();
        assert!(err.contains("mystery"));
    }
}
