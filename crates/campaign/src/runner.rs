//! The sharded, resumable campaign runner.
//!
//! Work distribution follows the sdb-fleet engine: one atomic index over
//! the pending `(cell, device)` unit list, scoped worker threads, shard-
//! local accumulation, and a post-join sort by `(cell, device)` — so the
//! outcome matrix is byte-identical for any thread count.
//!
//! Resume: with a checkpoint path, completed units are appended to the
//! log as they finish (each line round-trips the device's end-state
//! [`sdb_emulator::PackSnapshot`] and outcome metrics bit-exactly). A
//! new run under the same spec parses the log, skips completed units,
//! and merges old and new records before folding — producing the same
//! report a straight-through run would.

use crate::checkpoint;
use crate::report::{CampaignReport, DeviceRecord};
use crate::spec::{self, CampaignSpec, Cell, CellPolicy};
use sdb_chaos::{FaultPlan, InvariantChecker, PlanExecutor};
use sdb_core::policy::DischargeDirective;
use sdb_core::runtime::{ResilienceConfig, SdbRuntime};
use sdb_core::scheduler::{
    run_trace_linked_planned_with, run_trace_linked_with, run_trace_observed, run_trace_planned,
    LinkedSimOptions, SimOptions, SimResult,
};
use sdb_emulator::link::Link;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::{QuiescenceConfig, SoaCohort};
use sdb_fleet::run_trace_soa;
use sdb_fleet::spec::WorkloadSpec;
use sdb_fleet::EngineKind;
use sdb_policy::{HistoryForecaster, Planner, PlannerConfig};
use sdb_rng::derive_seed;
use sdb_workloads::traces::Trace;
use std::collections::HashSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The greedy policy's fixed discharge-directive blend.
pub const GREEDY_BLEND: f64 = 0.5;

/// Planned policy: lookahead horizon, seconds.
pub const PLANNER_HORIZON_S: f64 = 1800.0;

/// Planned policy: re-plan cadence, seconds.
pub const PLANNER_REPLAN_S: f64 = 600.0;

/// Status heartbeat period on the linked (faulted) driver, seconds.
pub const STATUS_PERIOD_S: f64 = 30.0;

/// Seed offset separating planner history days from the evaluated trace
/// (same salt as the fleet engine, so campaign planner cells and fleet
/// planner cohorts train the same way).
const PLANNER_HISTORY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// History days the planned policy's forecaster folds in.
const PLANNER_HISTORY_DAYS: u64 = 7;

/// Runner knobs that do not affect the outcome matrix.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (0/1 both mean single-threaded).
    pub threads: usize,
    /// Checkpoint log to append to (and resume from, if it exists).
    pub checkpoint: Option<PathBuf>,
    /// Stop claiming new units after this many *newly completed* device
    /// simulations — the deterministic kill switch the resume property
    /// test interrupts at every boundary.
    pub stop_after: Option<usize>,
}

/// Outcome of [`run_campaign`].
#[derive(Debug)]
pub enum CampaignRun {
    /// Every unit ran (or was resumed); the folded report.
    Complete(Box<CampaignReport>),
    /// The stop budget expired before the matrix finished.
    Interrupted {
        /// Units completed across this run and any resumed checkpoint.
        completed: usize,
        /// Total units in the matrix.
        total: usize,
    },
}

/// Runs (or resumes) a campaign.
///
/// # Errors
///
/// Returns the spec validation error, checkpoint I/O or corruption
/// errors, or a message if a worker panicked.
pub fn run_campaign(spec: &CampaignSpec, opts: &CampaignOptions) -> Result<CampaignRun, String> {
    let cells = spec.cells()?;
    let total = cells.len() * spec.devices_per_cell;
    let config = spec.config_digest();
    let prof_run = sdb_prof::scope(sdb_prof::Phase::CampaignRun);

    // Resume: parse any existing checkpoint under this exact config.
    let mut done: Vec<DeviceRecord> = Vec::new();
    if let Some(path) = &opts.checkpoint {
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read checkpoint {}: {e}", path.display()))?;
            if !text.is_empty() {
                done = checkpoint::parse(&text, config)?;
            }
        }
    }
    // Deduplicate (a kill between append and claim bookkeeping can in
    // principle log a unit twice; last write wins) and index.
    done.sort_by_key(|r| (r.cell, r.device));
    done.dedup_by_key(|r| (r.cell, r.device));
    let done_set: HashSet<(usize, u64)> = done.iter().map(|r| (r.cell, r.device)).collect();

    // The pending unit list, in deterministic (cell, device) order. The
    // stop budget cuts a prefix of *this* list, so which units a partial
    // run completes is independent of thread scheduling.
    let pending: Vec<(usize, u64)> = cells
        .iter()
        .flat_map(|c| (0..spec.devices_per_cell as u64).map(move |d| (c.index, d)))
        .filter(|unit| !done_set.contains(unit))
        .collect();

    let writer: Option<Mutex<std::fs::File>> = match &opts.checkpoint {
        Some(path) => {
            let fresh = !path.exists()
                || std::fs::metadata(path)
                    .map(|m| m.len() == 0)
                    .unwrap_or(true);
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("open checkpoint {}: {e}", path.display()))?;
            if fresh {
                file.write_all(checkpoint::header(config).as_bytes())
                    .map_err(|e| format!("write checkpoint header: {e}"))?;
            }
            Some(Mutex::new(file))
        }
        None => None,
    };

    let claim_budget = opts.stop_after.unwrap_or(usize::MAX);
    let threads = opts.threads.max(1);
    let next = AtomicUsize::new(0);
    let writer = writer.as_ref();
    let cells_ref = &cells;
    let pending_ref = &pending;

    let shards: Vec<Vec<DeviceRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                let next = &next;
                s.spawn(move || -> Result<Vec<DeviceRecord>, String> {
                    sdb_prof::set_shard(shard as u16);
                    let mut out = Vec::with_capacity(pending_ref.len() / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pending_ref.len().min(claim_budget) {
                            break;
                        }
                        let (cell_idx, device) = pending_ref[i];
                        let cell = &cells_ref[cell_idx];
                        let prof_dev = if sdb_prof::enabled() {
                            sdb_prof::device_scope(sdb_prof::cohort_id(&cell.seed_key()))
                        } else {
                            sdb_prof::device_scope(0)
                        };
                        let rec = run_cell_device(spec, cell, device)?;
                        drop(prof_dev);
                        if let Some(w) = writer {
                            let line = checkpoint::record_line(&rec);
                            let mut f = w.lock().expect("checkpoint writer lock");
                            f.write_all(line.as_bytes())
                                .and_then(|()| f.flush())
                                .map_err(|e| format!("append checkpoint: {e}"))?;
                        }
                        out.push(rec);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "campaign worker panicked".to_owned())?
            })
            .collect::<Result<Vec<_>, String>>()
    })?;

    let fresh: usize = shards.iter().map(Vec::len).sum();
    if claim_budget < pending.len() {
        drop(prof_run);
        if sdb_prof::enabled() {
            sdb_prof::flush_thread();
        }
        return Ok(CampaignRun::Interrupted {
            completed: done.len() + fresh,
            total,
        });
    }

    // Deterministic merge: resumed + fresh records, re-sorted by unit.
    let mut records = done;
    records.extend(shards.into_iter().flatten());
    records.sort_by_key(|r| (r.cell, r.device));
    debug_assert_eq!(records.len(), total);
    let report = CampaignReport::from_records(spec, &cells, records);
    drop(prof_run);
    if sdb_prof::enabled() {
        sdb_prof::flush_thread();
    }
    Ok(CampaignRun::Complete(Box::new(report)))
}

/// The per-cell policy driver.
enum PolicyDriver {
    Greedy,
    Planner(Box<Planner>),
}

fn make_policy(
    cell: &Cell,
    scenario: &spec::Scenario,
    workload: &WorkloadSpec,
    seed: u64,
    trace: &std::sync::Arc<Trace>,
) -> PolicyDriver {
    match cell.policy {
        CellPolicy::Greedy => PolicyDriver::Greedy,
        CellPolicy::Planned => {
            let history: Vec<std::sync::Arc<Trace>> = (1..=PLANNER_HISTORY_DAYS)
                .map(|k| workload.build(seed.wrapping_add(k.wrapping_mul(PLANNER_HISTORY_SALT))))
                .collect();
            let forecaster =
                HistoryForecaster::from_history(history.iter().map(std::sync::Arc::as_ref), 0.3);
            let cfg = PlannerConfig {
                horizon_s: PLANNER_HORIZON_S,
                replan_period_s: PLANNER_REPLAN_S,
                update_period_s: scenario.update_period_s,
                ..PlannerConfig::default()
            };
            PolicyDriver::Planner(Box::new(Planner::new(cfg, Box::new(forecaster))))
        }
        CellPolicy::Oracle => {
            let cfg = PlannerConfig {
                candidates: 17,
                update_period_s: scenario.update_period_s,
                ..PlannerConfig::default()
            };
            PolicyDriver::Planner(Box::new(Planner::oracle(cfg, std::sync::Arc::clone(trace))))
        }
    }
}

fn build_pack(template: &sdb_fleet::PackTemplate) -> Microcontroller {
    let mut builder = PackBuilder::new();
    for slot in &template.batteries {
        builder = builder.battery_at(slot.spec.clone(), slot.initial_soc, slot.profile);
    }
    builder.build()
}

/// Whether the pack qualifies for the SoA fast path (no thermal cells —
/// mirrors the fleet engine's eligibility rule).
fn soa_eligible(micro: &Microcontroller) -> bool {
    !micro.cells().iter().any(|c| c.temperature_c().is_some())
}

#[allow(clippy::too_many_arguments)]
fn record_from(
    cell: &Cell,
    device: u64,
    result: &SimResult,
    micro: &Microcontroller,
    violations: u64,
    first_violation: Option<String>,
    faults_injected: u64,
    ff_ticks: u64,
) -> DeviceRecord {
    let n = result.final_soc.len().max(1) as f64;
    DeviceRecord {
        cell: cell.index,
        device,
        life_s: result.battery_life_s(),
        supplied_j: result.supplied_j,
        unmet_j: result.unmet_j,
        loss_j: result.total_loss_j(),
        mean_final_soc: result.final_soc.iter().sum::<f64>() / n,
        browned_out: result.first_brownout_s.is_some(),
        violations,
        faults_injected,
        ff_ticks,
        first_violation,
        snapshot: micro.snapshot().to_bytes(),
    }
}

/// Runs one matrix cell's device simulation — a pure function of
/// `(spec, cell, device)`, independent of which other cells the matrix
/// holds. Public so the minimizer (and repro tooling) can re-run exactly
/// one unit.
///
/// Driver dispatch:
///
/// * **Faulted cells** (`fault != none`) run the linked chaos driver —
///   fault plan, plan executor, per-step invariant checks, resilience
///   enabled — for *both* engines: active faults disqualify SoA
///   fast-forward by construction, so the engines are digest-identical
///   here and the matrix records that fact instead of pretending the
///   axis doesn't exist.
/// * **Fault-free greedy SoA cells** on a non-thermal pack take the
///   hybrid [`run_trace_soa`] fast path (end-state invariant check; the
///   fast-forward stretches have no step hook).
/// * **Everything else** runs the scalar driver with per-step invariant
///   checks; planner policies fall back to scalar under the SoA engine
///   exactly as the fleet engine does, so those engine pairs are also
///   digest-identical.
///
/// # Errors
///
/// Returns an axis-resolution error (impossible after spec validation).
pub fn run_cell_device(
    spec_: &CampaignSpec,
    cell: &Cell,
    device: u64,
) -> Result<DeviceRecord, String> {
    let _prof = sdb_prof::scope(sdb_prof::Phase::CampaignCell);
    let scenario = spec::scenario(&cell.scenario)?;
    let chems = spec::chemistry_pair(&cell.chemistry)?;
    let intensity = spec::fault_intensity(&cell.fault)?;
    let template = scenario.pack.with_chemistries(&chems);
    let seed = spec_.device_seed(cell, device);
    let workload = WorkloadSpec::Truncated {
        inner: Box::new(scenario.workload.clone()),
        max_s: spec_.hours * 3600.0,
    };
    let trace = workload.build(seed);
    let sim = SimOptions::default();

    let micro = build_pack(&template);
    let n = micro.battery_count();
    let mut runtime = SdbRuntime::new(n);
    runtime.set_update_period(scenario.update_period_s);
    let mut policy = make_policy(cell, &scenario, &workload, seed, &trace);

    if intensity > 0.0 {
        // Linked chaos driver (both engines; see dispatch docs above).
        let mut link = Link::ideal(micro);
        link.seed_faults(derive_seed(seed, 1));
        runtime.enable_resilience(ResilienceConfig::default());
        let plan = FaultPlan::generate(derive_seed(seed, 2), trace.duration_s(), intensity, n);
        let mut exec = PlanExecutor::new(plan);
        let mut checker = InvariantChecker::for_micro(link.micro());
        let opts = LinkedSimOptions {
            sim,
            status_period_s: STATUS_PERIOD_S,
        };
        let result = match &mut policy {
            PolicyDriver::Greedy => {
                runtime.set_discharge_directive(DischargeDirective::new(GREEDY_BLEND));
                run_trace_linked_with(
                    &mut link,
                    &mut runtime,
                    &trace,
                    &opts,
                    |t, l| exec.apply(t, l),
                    |t, l, r| {
                        checker.check_step(t, r);
                        checker.check_micro(t, l.micro());
                    },
                )
            }
            PolicyDriver::Planner(planner) => run_trace_linked_planned_with(
                &mut link,
                &mut runtime,
                &trace,
                &opts,
                planner.as_mut(),
                |t, l| exec.apply(t, l),
                |t, l, r| {
                    checker.check_step(t, r);
                    checker.check_micro(t, l.micro());
                },
            ),
        };
        let tally = checker.finish();
        return Ok(record_from(
            cell,
            device,
            &result,
            link.micro(),
            tally.violation_count,
            tally.violations.first().map(ToString::to_string),
            exec.injected(),
            0,
        ));
    }

    let mut micro = micro;
    let (result, violations, first_violation, ff_ticks) = match &mut policy {
        PolicyDriver::Greedy if cell.engine == EngineKind::Soa && soa_eligible(&micro) => {
            runtime.set_discharge_directive(DischargeDirective::new(GREEDY_BLEND));
            let mut soa = SoaCohort::new(&micro, 1, QuiescenceConfig::default());
            let (result, ff) = run_trace_soa(&mut micro, &mut runtime, &trace, &sim, &mut soa);
            // Fast-forwarded stretches have no step hook; the invariant
            // surface here is the end state.
            let mut checker = InvariantChecker::for_micro(&micro);
            checker.check_micro(result.simulated_s, &micro);
            let tally = checker.finish();
            (
                result,
                tally.violation_count,
                tally.violations.first().map(ToString::to_string),
                ff,
            )
        }
        PolicyDriver::Greedy => {
            runtime.set_discharge_directive(DischargeDirective::new(GREEDY_BLEND));
            let mut checker = InvariantChecker::for_micro(&micro);
            let result = run_trace_observed(&mut micro, &mut runtime, &trace, &sim, |t, r| {
                checker.check_step(t, r);
            });
            checker.check_micro(result.simulated_s, &micro);
            let tally = checker.finish();
            (
                result,
                tally.violation_count,
                tally.violations.first().map(ToString::to_string),
                0,
            )
        }
        PolicyDriver::Planner(planner) => {
            // Planner cells run the scalar driver under either engine
            // (the SoA fast path serves greedy policies only, as in the
            // fleet engine) — their engine pairs are digest-identical.
            let mut checker = InvariantChecker::for_micro(&micro);
            let result =
                run_trace_planned(&mut micro, &mut runtime, &trace, &sim, planner.as_mut());
            checker.check_micro(result.simulated_s, &micro);
            let tally = checker.finish();
            (
                result,
                tally.violation_count,
                tally.violations.first().map(ToString::to_string),
                0,
            )
        }
    };
    Ok(record_from(
        cell,
        device,
        &result,
        &micro,
        violations,
        first_violation,
        0,
        ff_ticks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            scenarios: vec!["standby".to_owned()],
            chemistries: vec!["co".to_owned()],
            faults: vec!["none".to_owned(), "moderate".to_owned()],
            policies: vec!["greedy".to_owned()],
            engines: vec!["scalar".to_owned()],
            master_seed: 11,
            hours: 0.5,
            devices_per_cell: 2,
        }
    }

    fn report_of(run: CampaignRun) -> CampaignReport {
        match run {
            CampaignRun::Complete(r) => *r,
            CampaignRun::Interrupted { completed, total } => {
                panic!("unexpected interrupt at {completed}/{total}")
            }
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let spec = tiny_spec();
        let r1 = report_of(run_campaign(&spec, &CampaignOptions::default()).unwrap());
        let r3 = report_of(
            run_campaign(
                &spec,
                &CampaignOptions {
                    threads: 3,
                    ..CampaignOptions::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(r1, r3);
        assert_eq!(r1.render_text(), r3.render_text());
        assert_eq!(r1.to_json(), r3.to_json());
        assert_eq!(r1.matrix_digest, r3.matrix_digest);
    }

    #[test]
    fn cell_outcomes_are_matrix_composition_independent() {
        // The same cell in a pruned 1-cell matrix digests identically —
        // the property the minimizer's repro command relies on.
        let full = tiny_spec();
        let r_full = report_of(run_campaign(&full, &CampaignOptions::default()).unwrap());
        let pruned = CampaignSpec {
            faults: vec!["moderate".to_owned()],
            ..tiny_spec()
        };
        let r_pruned = report_of(run_campaign(&pruned, &CampaignOptions::default()).unwrap());
        let key = "standby/co/moderate/greedy/scalar";
        assert_eq!(
            r_full.cell(key).unwrap().digest,
            r_pruned.cell(key).unwrap().digest
        );
    }

    #[test]
    fn faulted_cells_inject_and_stay_clean() {
        let spec = tiny_spec();
        let report = report_of(run_campaign(&spec, &CampaignOptions::default()).unwrap());
        assert!(report.total_faults() > 0, "moderate cells must inject");
        assert_eq!(
            report.total_violations(),
            0,
            "invariants must hold:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn stop_after_zero_interrupts_immediately() {
        let spec = tiny_spec();
        let run = run_campaign(
            &spec,
            &CampaignOptions {
                stop_after: Some(0),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        match run {
            CampaignRun::Interrupted { completed, total } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 4);
            }
            CampaignRun::Complete(_) => panic!("expected interrupt"),
        }
    }
}
