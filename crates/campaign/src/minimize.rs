//! Culprit minimization: from "the matrix diverged" to one reproducible
//! `(cell, device)` unit and a ready-to-run command.
//!
//! The minimizer works over the *recorded* outcome matrix (delta-debug on
//! the axis sets costs set lookups, not re-simulation), isolates the
//! first divergent device via the baseline's per-device digests, then
//! re-runs that single unit fresh to confirm the observed digest
//! reproduces — only a confirmed culprit earns a repro command. Because
//! cell outcomes are matrix-composition independent (seeds derive from
//! the cell *key*, not its position), the emitted pruned single-cell
//! command recomputes the identical digest and fails against the same
//! baseline file.
//!
//! For failures that are invariant violations (not just baseline drift),
//! [`minimize_fault_plan`] delta-debugs the cell's fault-event list down
//! to a 1-minimal set that still triggers the failure.

use crate::baseline::Divergence;
use crate::report::CampaignReport;
use crate::runner::run_cell_device;
use crate::spec::{CampaignSpec, Cell};
use sdb_chaos::FaultPlan;
use std::fmt::Write as _;

/// The minimized, re-run-confirmed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Culprit {
    /// Matrix index of the culprit cell.
    pub cell_index: usize,
    /// Culprit cell key.
    pub key: String,
    /// First divergent device within the cell.
    pub device: u64,
    /// Golden device digest.
    pub expected: u64,
    /// Device digest observed by the campaign run.
    pub observed: u64,
    /// Device digest from the fresh confirmation re-run.
    pub rerun: u64,
    /// Whether the re-run reproduced the observed digest (and still
    /// differs from golden) — a deterministic, actionable divergence.
    pub reproduced: bool,
    /// The minimization narrative, one step per line.
    pub steps: Vec<String>,
    /// A self-contained `sdb campaign` invocation that re-runs only the
    /// culprit cell and exits non-zero against the same baseline.
    pub repro_command: String,
}

impl Culprit {
    /// Fixed-format text rendering for the CLI.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "culprit minimization:");
        for step in &self.steps {
            let _ = writeln!(s, "  {step}");
        }
        let _ = writeln!(
            s,
            "culprit: cell {} device {} (expected {:016x}, observed {:016x}, re-run {:016x})",
            self.key, self.device, self.expected, self.observed, self.rerun
        );
        let _ = writeln!(
            s,
            "re-run {} the observed digest",
            if self.reproduced {
                "REPRODUCED"
            } else {
                "DID NOT reproduce"
            }
        );
        let _ = writeln!(s, "repro: {}", self.repro_command);
        s
    }
}

fn axis_of(key: &str, axis: usize) -> &str {
    key.split('/').nth(axis).unwrap_or("")
}

/// Minimizes a set of baseline divergences down to one confirmed culprit
/// unit. Returns `None` only when `divergences` is empty.
///
/// Axis reduction is delta-debugging over the recorded matrix: each axis
/// in turn is pinned to its first value that still leaves a divergent
/// cell, shrinking the candidate set without re-running anything. The
/// surviving cell's first mismatching device is then re-run fresh to
/// confirm determinism.
#[must_use]
pub fn minimize(
    spec: &CampaignSpec,
    report: &CampaignReport,
    divergences: &[Divergence],
    baseline_path: &str,
) -> Option<Culprit> {
    if divergences.is_empty() {
        return None;
    }
    let mut steps = Vec::new();
    steps.push(format!(
        "{} of {} cells diverged from baseline",
        divergences.len(),
        report.cells.len()
    ));

    // Delta-debug each axis against the recorded divergence set.
    let axes: [(&str, &[String]); 5] = [
        ("scenario", &spec.scenarios),
        ("chemistry", &spec.chemistries),
        ("fault", &spec.faults),
        ("policy", &spec.policies),
        ("engine", &spec.engines),
    ];
    let mut alive: Vec<&Divergence> = divergences.iter().collect();
    for (i, (axis_name, values)) in axes.iter().enumerate() {
        for v in values.iter() {
            let narrowed: Vec<&Divergence> = alive
                .iter()
                .copied()
                .filter(|d| axis_of(&d.key, i) == v)
                .collect();
            if !narrowed.is_empty() {
                if values.len() > 1 {
                    steps.push(format!(
                        "pin {axis_name} = {v} ({} divergent cell{} remain)",
                        narrowed.len(),
                        if narrowed.len() == 1 { "" } else { "s" }
                    ));
                }
                alive = narrowed;
                break;
            }
        }
    }
    let culprit = alive.first()?;

    // Device isolation via the baseline's per-device digests.
    let (device, expected, observed) =
        culprit
            .devices
            .first()
            .copied()
            .unwrap_or((0, culprit.expected, culprit.actual));
    steps.push(format!(
        "first divergent device in {}: device {device}",
        culprit.key
    ));

    // Confirmation re-run: the unit fresh, outside the matrix.
    let cells = spec.cells().ok()?;
    let cell = cells.iter().find(|c| c.index == culprit.cell_index)?;
    let rerun = run_cell_device(spec, cell, device)
        .map(|r| r.digest())
        .unwrap_or(0);
    let reproduced = rerun == observed && rerun != expected;
    steps.push(format!(
        "fresh re-run of ({}, device {device}) digests {rerun:016x}",
        culprit.key
    ));

    Some(Culprit {
        cell_index: culprit.cell_index,
        key: culprit.key.clone(),
        device,
        expected,
        observed,
        rerun,
        reproduced,
        steps,
        repro_command: repro_command(spec, cell, baseline_path),
    })
}

/// The pruned single-cell `sdb campaign` invocation reproducing a
/// divergence against `baseline_path`.
#[must_use]
pub fn repro_command(spec: &CampaignSpec, cell: &Cell, baseline_path: &str) -> String {
    format!(
        "sdb campaign --scenarios {} --chemistries {} --faults {} --policies {} --engines {} \
         --seed {} --hours {} --devices-per-cell {} --baseline {}",
        cell.scenario,
        cell.chemistry,
        cell.fault,
        cell.policy.name(),
        cell.engine.name(),
        spec.master_seed,
        spec.hours,
        spec.devices_per_cell,
        baseline_path
    )
}

/// Delta-debugs a fault plan to a 1-minimal event subset that still makes
/// `fails` true: repeatedly drops any single event whose removal keeps
/// the failure alive, until no single removal does.
///
/// `fails(&plan)` must be deterministic; for campaign triage it is "does
/// re-running the culprit unit under this plan still violate an
/// invariant", making each probe one device simulation.
pub fn minimize_fault_plan(
    plan: &FaultPlan,
    mut fails: impl FnMut(&FaultPlan) -> bool,
) -> FaultPlan {
    let n = plan.len();
    let mut keep = vec![true; n];
    let mut current = plan.clone();
    if n == 0 || !fails(&current) {
        return current;
    }
    loop {
        let mut shrunk = false;
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            keep[i] = false;
            let candidate = plan.subset(&keep);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            } else {
                keep[i] = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_chaos::FaultKind;

    #[test]
    fn fault_plan_ddmin_finds_the_minimal_pair() {
        // 6 events; the failure needs the Detach AND the StaleStatus at
        // t=200 together. ddmin must keep exactly those two.
        let mk = |start: f64, kind: FaultKind| sdb_chaos::FaultEvent {
            start_s: start,
            end_s: start + 60.0,
            kind,
        };
        let plan = FaultPlan::from_events(vec![
            mk(0.0, FaultKind::StaleStatus),
            mk(100.0, FaultKind::Detach { battery: 0 }),
            mk(200.0, FaultKind::StaleStatus),
            mk(300.0, FaultKind::GaugeStuck { battery: 1 }),
            mk(400.0, FaultKind::StaleStatus),
            mk(500.0, FaultKind::GaugeStuck { battery: 0 }),
        ]);
        let fails = |p: &FaultPlan| {
            let has_detach = p
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Detach { .. }));
            let has_second_stale = p
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::StaleStatus) && e.start_s == 200.0);
            has_detach && has_second_stale
        };
        let minimal = minimize_fault_plan(&plan, fails);
        assert_eq!(minimal.len(), 2);
        assert!(fails(&minimal));
        // Order preserved.
        assert!(minimal.events()[0].start_s < minimal.events()[1].start_s);
    }

    #[test]
    fn ddmin_on_a_passing_plan_is_identity() {
        let plan = FaultPlan::generate(3, 3600.0, 1.0, 2);
        let out = minimize_fault_plan(&plan, |_| false);
        assert_eq!(out.len(), plan.len());
    }
}
