//! `sdb-campaign`: the resumable scenario × chemistry × fault × policy ×
//! engine matrix orchestrator.
//!
//! The repo's subsystems each test themselves in isolation — fleet
//! determinism, chaos invariants, policy head-to-heads, SoA bounds. This
//! crate composes them into one differential instrument: a declarative
//! [`CampaignSpec`] expands into a cell matrix, every cell runs as a pure
//! function of `(spec, cell key, device)` on a sharded deterministic
//! runner, and the folded [`CampaignReport`] is **byte-identical at any
//! thread count** — so a single digest line is enough for CI to assert
//! that nothing anywhere in the stack drifted.
//!
//! * [`spec`] — the five axes and their named presets; cell seeds derive
//!   from the engine-free cell *key*, so engine-paired cells share
//!   workloads/fault plans and a pruned re-run reproduces full-matrix
//!   digests.
//! * [`runner`] — the sharded runner with [`PackSnapshot`]-based
//!   checkpointing: a killed campaign resumes mid-matrix and produces the
//!   identical final report ([`runner::CampaignOptions::stop_after`]
//!   makes the interruption point deterministic for the property test).
//! * [`report`] — device → cell → matrix digest folding plus text/JSON/
//!   HTML renders.
//! * [`baseline`] — committed golden digests and the differential
//!   comparison ([`baseline::compare`]).
//! * [`minimize`] — on divergence, delta-debugs the axis space over the
//!   recorded matrix, isolates the first divergent device, re-runs it to
//!   confirm, and emits a ready-to-run single-cell repro command; plus
//!   fault-plan ddmin for invariant-violation triage.
//!
//! [`PackSnapshot`]: sdb_emulator::PackSnapshot
//!
//! # Quickstart
//!
//! ```
//! use sdb_campaign::{run_campaign, CampaignOptions, CampaignRun, CampaignSpec};
//!
//! let spec = CampaignSpec {
//!     scenarios: vec!["standby".into()],
//!     chemistries: vec!["co".into()],
//!     faults: vec!["none".into()],
//!     policies: vec!["greedy".into()],
//!     engines: vec!["scalar".into(), "soa".into()],
//!     hours: 0.25,
//!     devices_per_cell: 1,
//!     ..CampaignSpec::default()
//! };
//! let run = run_campaign(&spec, &CampaignOptions::default()).unwrap();
//! let CampaignRun::Complete(report) = run else { panic!("no stop budget set") };
//! assert_eq!(report.cells.len(), 2);
//! ```

pub mod baseline;
pub mod checkpoint;
pub mod minimize;
pub mod report;
pub mod runner;
pub mod spec;

pub use baseline::{compare, Baseline, BaselineCell, Comparison, Divergence};
pub use minimize::{minimize, minimize_fault_plan, repro_command, Culprit};
pub use report::{CampaignReport, CellOutcome, DeviceRecord};
pub use runner::{run_campaign, run_cell_device, CampaignOptions, CampaignRun};
pub use spec::{CampaignSpec, Cell, CellPolicy};
