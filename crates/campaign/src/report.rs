//! The deterministic campaign outcome matrix and its renderings.
//!
//! A [`DeviceRecord`] is a pure function of `(CampaignSpec, cell,
//! device)`; a [`CellOutcome`] folds a cell's device records (sorted by
//! device index) under a digest; the [`CampaignReport`] folds the cells
//! (sorted by matrix index) under the matrix digest printed in the report
//! header — the single value CI compares across thread counts.

use crate::spec::{CampaignSpec, Cell};
use sdb_emulator::fnv1a_64;
use std::fmt::Write as _;

/// One device simulation's outcome: the end-state pack snapshot plus the
/// scalar outcome metrics the report aggregates. The digest covers all of
/// it, so two records are digest-equal only if the simulation ended in a
/// bit-identical place.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Cell index in the expanded matrix.
    pub cell: usize,
    /// Device index in `0..devices_per_cell`.
    pub device: u64,
    /// Effective battery life, seconds.
    pub life_s: f64,
    /// Energy delivered to the load, joules.
    pub supplied_j: f64,
    /// Load energy that went unserved, joules.
    pub unmet_j: f64,
    /// Circuit losses + cell heat, joules.
    pub loss_j: f64,
    /// Mean final state of charge across the pack.
    pub mean_final_soc: f64,
    /// Whether the device browned out.
    pub browned_out: bool,
    /// Invariant violations observed.
    pub violations: u64,
    /// Fault activations injected.
    pub faults_injected: u64,
    /// SoA fast-forwarded ticks (0 on the scalar and linked drivers).
    pub ff_ticks: u64,
    /// First invariant violation, if any (for triage without re-running).
    pub first_violation: Option<String>,
    /// Serialized end-state [`sdb_emulator::PackSnapshot`] — the
    /// checkpoint medium and the bulk of the digest.
    pub snapshot: Vec<u8>,
}

impl DeviceRecord {
    /// FNV-1a digest over the end-state snapshot bytes, the outcome
    /// metric bit patterns, and the counters.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.snapshot.len() + 96);
        buf.extend_from_slice(&self.snapshot);
        for v in [
            self.life_s,
            self.supplied_j,
            self.unmet_j,
            self.loss_j,
            self.mean_final_soc,
        ] {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        buf.push(u8::from(self.browned_out));
        for v in [self.violations, self.faults_injected, self.ff_ticks] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(fv) = &self.first_violation {
            buf.extend_from_slice(fv.as_bytes());
        }
        fnv1a_64(&buf)
    }
}

/// One matrix cell's folded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Cell index in the expanded matrix.
    pub index: usize,
    /// Cell key (`scenario/chemistry/fault/policy/engine`).
    pub key: String,
    /// Per-device records, sorted by device index.
    pub devices: Vec<DeviceRecord>,
    /// FNV-1a over the key and each device's `(index, digest)` pair.
    pub digest: u64,
}

impl CellOutcome {
    /// Folds a cell's device records (already sorted by device index).
    #[must_use]
    pub fn from_devices(index: usize, key: String, devices: Vec<DeviceRecord>) -> Self {
        let mut buf = Vec::with_capacity(key.len() + 1 + devices.len() * 16);
        buf.extend_from_slice(key.as_bytes());
        buf.push(0xff);
        for d in &devices {
            buf.extend_from_slice(&d.device.to_le_bytes());
            buf.extend_from_slice(&d.digest().to_le_bytes());
        }
        let digest = fnv1a_64(&buf);
        Self {
            index,
            key,
            devices,
            digest,
        }
    }

    /// Total invariant violations across the cell's devices.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.devices.iter().map(|d| d.violations).sum()
    }

    /// Total fault activations across the cell's devices.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.devices.iter().map(|d| d.faults_injected).sum()
    }

    /// Devices that browned out.
    #[must_use]
    pub fn brownouts(&self) -> u64 {
        self.devices.iter().map(|d| u64::from(d.browned_out)).sum()
    }

    /// Total fast-forwarded ticks.
    #[must_use]
    pub fn ff_ticks(&self) -> u64 {
        self.devices.iter().map(|d| d.ff_ticks).sum()
    }

    /// Mean effective battery life, hours.
    #[must_use]
    pub fn mean_life_h(&self) -> f64 {
        let n = self.devices.len().max(1) as f64;
        self.devices.iter().map(|d| d.life_s).sum::<f64>() / n / 3600.0
    }

    /// Total unserved load energy, joules.
    #[must_use]
    pub fn total_unmet_j(&self) -> f64 {
        self.devices.iter().map(|d| d.unmet_j).sum()
    }

    /// Total supplied energy, joules.
    #[must_use]
    pub fn total_supplied_j(&self) -> f64 {
        self.devices.iter().map(|d| d.supplied_j).sum()
    }

    /// Mean final state of charge across devices.
    #[must_use]
    pub fn mean_final_soc(&self) -> f64 {
        let n = self.devices.len().max(1) as f64;
        self.devices.iter().map(|d| d.mean_final_soc).sum::<f64>() / n
    }
}

/// The full campaign outcome: every cell, folded under one matrix digest.
/// A pure function of the [`CampaignSpec`] — byte-identical at any thread
/// count, and identical whether the run was interrupted and resumed or
/// ran straight through.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Per-device horizon, hours.
    pub hours: f64,
    /// Devices per cell.
    pub devices_per_cell: usize,
    /// Matrix dimensions `[scenarios, chemistries, faults, policies,
    /// engines]`.
    pub dims: [usize; 5],
    /// Full config digest (matrix-shape bound; checkpoints carry it).
    pub config_digest: u64,
    /// Cell-independent config digest (baselines carry it).
    pub baseline_config_digest: u64,
    /// Per-cell outcomes, sorted by matrix index.
    pub cells: Vec<CellOutcome>,
    /// FNV-1a over the cell digests in matrix order.
    pub matrix_digest: u64,
}

impl CampaignReport {
    /// Folds sorted device records into the report. `records` must hold
    /// exactly `cells.len() * spec.devices_per_cell` entries sorted by
    /// `(cell, device)`.
    ///
    /// # Panics
    ///
    /// Panics if the record set is incomplete or misordered (the runner
    /// guarantees completeness before folding).
    #[must_use]
    pub fn from_records(spec: &CampaignSpec, cells: &[Cell], records: Vec<DeviceRecord>) -> Self {
        assert_eq!(
            records.len(),
            cells.len() * spec.devices_per_cell,
            "record set incomplete"
        );
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut it = records.into_iter();
        for cell in cells {
            let devices: Vec<DeviceRecord> = it.by_ref().take(spec.devices_per_cell).collect();
            for (i, d) in devices.iter().enumerate() {
                assert_eq!(d.cell, cell.index, "record order broken");
                assert_eq!(d.device, i as u64, "record order broken");
            }
            outcomes.push(CellOutcome::from_devices(cell.index, cell.key(), devices));
        }
        let mut buf = Vec::with_capacity(outcomes.len() * 8);
        for c in &outcomes {
            buf.extend_from_slice(&c.digest.to_le_bytes());
        }
        Self {
            master_seed: spec.master_seed,
            hours: spec.hours,
            devices_per_cell: spec.devices_per_cell,
            dims: spec.dims(),
            config_digest: spec.config_digest(),
            baseline_config_digest: spec.baseline_config_digest(),
            matrix_digest: fnv1a_64(&buf),
            cells: outcomes,
        }
    }

    /// Total invariant violations across the matrix.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.cells.iter().map(CellOutcome::violations).sum()
    }

    /// Total fault activations across the matrix.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.cells.iter().map(CellOutcome::faults_injected).sum()
    }

    /// Total brownouts across the matrix.
    #[must_use]
    pub fn total_brownouts(&self) -> u64 {
        self.cells.iter().map(CellOutcome::brownouts).sum()
    }

    /// Finds a cell outcome by key.
    #[must_use]
    pub fn cell(&self, key: &str) -> Option<&CellOutcome> {
        self.cells.iter().find(|c| c.key == key)
    }

    /// Fixed-format text rendering (byte-identical across thread counts).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let [ns, nc, nf, np, ne] = self.dims;
        let _ = writeln!(
            s,
            "sdb campaign: {} cells ({ns} scenarios x {nc} chemistries x {nf} faults x {np} policies x {ne} engines), {} devices/cell",
            self.cells.len(),
            self.devices_per_cell
        );
        let _ = writeln!(
            s,
            "seed {:#x}, horizon {:.2} h, matrix digest {:016x}",
            self.master_seed, self.hours, self.matrix_digest
        );
        let _ = writeln!(
            s,
            "violations: {}   brownouts: {}   faults injected: {}",
            self.total_violations(),
            self.total_brownouts(),
            self.total_faults()
        );
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{:<44} {:>16} {:>8} {:>10} {:>6} {:>5} {:>7} {:>9}",
            "cell", "digest", "life-h", "unmet-J", "soc", "viol", "faults", "ff-ticks"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:<44} {:>16} {:>8.3} {:>10.1} {:>6.3} {:>5} {:>7} {:>9}",
                c.key,
                format!("{:016x}", c.digest),
                c.mean_life_h(),
                c.total_unmet_j(),
                c.mean_final_soc(),
                c.violations(),
                c.faults_injected(),
                c.ff_ticks()
            );
        }
        if self.total_violations() > 0 {
            let _ = writeln!(s);
            let _ = writeln!(s, "first violations:");
            for c in self.cells.iter().filter(|c| c.violations() > 0).take(10) {
                for d in c.devices.iter().filter(|d| d.violations > 0).take(1) {
                    if let Some(v) = &d.first_violation {
                        let _ = writeln!(s, "  {} device {}: {}", c.key, d.device, v);
                    }
                }
            }
        }
        s
    }

    /// Deterministic JSON rendering (summary plus per-cell rows with
    /// per-device digests; snapshots are omitted).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cells\":{},\"dims\":[{},{},{},{},{}],\"devices_per_cell\":{},\
             \"master_seed\":{},\"hours\":{},\"matrix_digest\":\"{:016x}\",\
             \"config_digest\":\"{:016x}\",\"violations\":{},\"brownouts\":{},\
             \"faults_injected\":{},\"cell_rows\":[",
            self.cells.len(),
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.dims[3],
            self.dims[4],
            self.devices_per_cell,
            self.master_seed,
            self.hours,
            self.matrix_digest,
            self.config_digest,
            self.total_violations(),
            self.total_brownouts(),
            self.total_faults()
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"key\":\"{}\",\"digest\":\"{:016x}\",\"mean_life_h\":{:.6},\
                 \"unmet_j\":{:.3},\"mean_final_soc\":{:.6},\"violations\":{},\
                 \"faults\":{},\"ff_ticks\":{},\"devices\":[",
                c.key,
                c.digest,
                c.mean_life_h(),
                c.total_unmet_j(),
                c.mean_final_soc(),
                c.violations(),
                c.faults_injected(),
                c.ff_ticks()
            );
            for (j, d) in c.devices.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"device\":{},\"digest\":\"{:016x}\",\"life_s\":{:.3},\
                     \"browned_out\":{},\"violations\":{},\"faults\":{}}}",
                    d.device,
                    d.digest(),
                    d.life_s,
                    d.browned_out,
                    d.violations,
                    d.faults_injected
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Self-contained HTML rendering: the summary header and the cell
    /// table, styled inline (no external assets).
    #[must_use]
    pub fn render_html(&self) -> String {
        let [ns, nc, nf, np, ne] = self.dims;
        let mut s = String::new();
        s.push_str(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>sdb campaign</title><style>\
             body{font-family:monospace;margin:2em}\
             table{border-collapse:collapse}\
             td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}\
             td:first-child,th:first-child{text-align:left}\
             tr.bad{background:#fdd}\
             </style></head><body>\n",
        );
        let _ = writeln!(
            s,
            "<h1>sdb campaign</h1>\n<p>{} cells ({ns}&times;{nc}&times;{nf}&times;{np}&times;{ne}), \
             {} devices/cell, seed {:#x}, horizon {:.2} h</p>\n\
             <p>matrix digest <code>{:016x}</code> &mdash; violations {}, brownouts {}, faults {}</p>",
            self.cells.len(),
            self.devices_per_cell,
            self.master_seed,
            self.hours,
            self.matrix_digest,
            self.total_violations(),
            self.total_brownouts(),
            self.total_faults()
        );
        s.push_str(
            "<table><tr><th>cell</th><th>digest</th><th>life-h</th><th>unmet-J</th>\
             <th>soc</th><th>viol</th><th>faults</th><th>ff-ticks</th></tr>\n",
        );
        for c in &self.cells {
            let cls = if c.violations() > 0 {
                " class=\"bad\""
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "<tr{cls}><td>{}</td><td><code>{:016x}</code></td><td>{:.3}</td>\
                 <td>{:.1}</td><td>{:.3}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                c.key,
                c.digest,
                c.mean_life_h(),
                c.total_unmet_j(),
                c.mean_final_soc(),
                c.violations(),
                c.faults_injected(),
                c.ff_ticks()
            );
        }
        s.push_str("</table>\n</body></html>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fake_record(cell: usize, device: u64, salt: u8) -> DeviceRecord {
        DeviceRecord {
            cell,
            device,
            life_s: 3600.0 + f64::from(salt),
            supplied_j: 100.0,
            unmet_j: 0.0,
            loss_j: 2.0,
            mean_final_soc: 0.8,
            browned_out: false,
            violations: 0,
            faults_injected: 0,
            ff_ticks: 0,
            first_violation: None,
            snapshot: vec![salt; 16],
        }
    }

    #[test]
    fn device_digest_flags_every_field() {
        let base = fake_record(0, 0, 1);
        let d0 = base.digest();
        let mut r = base.clone();
        r.life_s += 1e-9;
        assert_ne!(r.digest(), d0);
        let mut r = base.clone();
        r.snapshot[3] ^= 1;
        assert_ne!(r.digest(), d0);
        let mut r = base.clone();
        r.violations = 1;
        assert_ne!(r.digest(), d0);
        let mut r = base.clone();
        r.first_violation = Some("t=1 energy".to_owned());
        assert_ne!(r.digest(), d0);
        assert_eq!(base.clone().digest(), d0);
    }

    #[test]
    fn cell_digest_depends_on_key_and_device_order() {
        let devs = vec![fake_record(0, 0, 1), fake_record(0, 1, 2)];
        let a = CellOutcome::from_devices(0, "k1".to_owned(), devs.clone());
        let b = CellOutcome::from_devices(0, "k2".to_owned(), devs);
        assert_ne!(a.digest, b.digest);
    }
}
