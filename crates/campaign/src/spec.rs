//! Declarative campaign specs: the five matrix axes and their presets.
//!
//! A campaign is the cross product of named axis values — scenario ×
//! chemistry × fault plan × policy × engine — plus the scalar knobs
//! (master seed, horizon, devices per cell). Every axis value is a
//! *name* resolved to a preset here, so a cell is fully described by its
//! key string and the spec's scalars; that is what makes the repro
//! command emitted by the minimizer self-contained.

use sdb_battery_model::chemistry::Chemistry;
use sdb_emulator::fnv1a_64;
use sdb_fleet::spec::{PackTemplate, WorkloadSpec};
use sdb_fleet::EngineKind;
use sdb_rng::derive_seed;
use sdb_workloads::traces::Trace;
use std::sync::Arc;

/// Every known scenario axis value (corpus order).
pub const SCENARIOS: &[&str] = &["standby", "phone-day", "watch-day", "tablet-mixed"];

/// Every known chemistry-pair axis value.
pub const CHEMISTRIES: &[&str] = &["co", "lfp", "nmc-lto", "bendable"];

/// Every known fault-plan axis value.
pub const FAULTS: &[&str] = &["none", "light", "moderate", "heavy"];

/// Every known policy axis value.
pub const POLICIES: &[&str] = &["greedy", "planned", "oracle"];

/// Every known engine axis value.
pub const ENGINES: &[&str] = &["scalar", "soa"];

/// A resolved scenario preset: pack shape + workload family.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The pack template before chemistry substitution.
    pub pack: PackTemplate,
    /// The workload family (seeded per device).
    pub workload: WorkloadSpec,
    /// Runtime policy re-evaluation period, seconds.
    pub update_period_s: f64,
}

/// Resolves a scenario name.
///
/// # Errors
///
/// Returns a message naming the valid values on an unknown name.
pub fn scenario(name: &str) -> Result<Scenario, String> {
    let (pack, workload) = match name {
        // A quiescent day: constant trickle load on the phone pack. The
        // SoA engine's best case, and the cheapest cell in the matrix.
        "standby" => (
            PackTemplate::phone(),
            WorkloadSpec::Shared(Arc::new(Trace::constant(0.05, 24.0 * 3600.0))),
        ),
        "phone-day" => (PackTemplate::phone(), WorkloadSpec::PhoneDay),
        "watch-day" => (
            PackTemplate::watch(),
            WorkloadSpec::WatchDay {
                run_hour: Some(9.0),
            },
        ),
        "tablet-mixed" => (
            PackTemplate::tablet_hybrid(),
            WorkloadSpec::TabletMixed {
                segment_s: 300.0,
                total_s: 4.0 * 3600.0,
            },
        ),
        other => {
            return Err(format!(
                "unknown scenario `{other}` (expected one of {})",
                SCENARIOS.join("|")
            ))
        }
    };
    Ok(Scenario {
        pack,
        workload,
        update_period_s: 60.0,
    })
}

/// Resolves a chemistry-pair name to the slot-substitution list fed to
/// [`PackTemplate::with_chemistries`] (slot `i` takes entry `i % len`).
///
/// # Errors
///
/// Returns a message naming the valid values on an unknown name.
pub fn chemistry_pair(name: &str) -> Result<Vec<Chemistry>, String> {
    match name {
        "co" => Ok(vec![Chemistry::Type2CoStandard, Chemistry::Type3CoPower]),
        "lfp" => Ok(vec![Chemistry::Type1LfpPower, Chemistry::Type3CoPower]),
        "nmc-lto" => Ok(vec![Chemistry::OtherNmc, Chemistry::OtherLto]),
        "bendable" => Ok(vec![Chemistry::Type2CoStandard, Chemistry::Type4Bendable]),
        other => Err(format!(
            "unknown chemistry pair `{other}` (expected one of {})",
            CHEMISTRIES.join("|")
        )),
    }
}

/// Resolves a fault-plan name to a [`sdb_chaos::FaultPlan::generate`]
/// intensity. `none` (0.0) selects the fault-free scalar/SoA drivers;
/// anything positive selects the linked chaos driver.
///
/// # Errors
///
/// Returns a message naming the valid values on an unknown name.
pub fn fault_intensity(name: &str) -> Result<f64, String> {
    match name {
        "none" => Ok(0.0),
        "light" => Ok(0.35),
        "moderate" => Ok(0.7),
        "heavy" => Ok(1.0),
        other => Err(format!(
            "unknown fault plan `{other}` (expected one of {})",
            FAULTS.join("|")
        )),
    }
}

/// The policy axis of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPolicy {
    /// Fixed 0.5 discharge-directive blend (no lookahead).
    Greedy,
    /// Receding-horizon planner warm-started from 7 history days.
    Planned,
    /// Perfect-forecast oracle planner over the device's own trace.
    Oracle,
}

impl CellPolicy {
    /// Parses a CLI/axis value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid values on an unknown name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(Self::Greedy),
            "planned" => Ok(Self::Planned),
            "oracle" => Ok(Self::Oracle),
            other => Err(format!(
                "unknown policy `{other}` (expected one of {})",
                POLICIES.join("|")
            )),
        }
    }

    /// The axis/key name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::Planned => "planned",
            Self::Oracle => "oracle",
        }
    }
}

/// One cell of the expanded matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the expanded matrix (row-major in axis declaration
    /// order: scenario, chemistry, fault, policy, engine).
    pub index: usize,
    /// Scenario axis value.
    pub scenario: String,
    /// Chemistry-pair axis value.
    pub chemistry: String,
    /// Fault-plan axis value.
    pub fault: String,
    /// Policy axis value.
    pub policy: CellPolicy,
    /// Engine axis value.
    pub engine: EngineKind,
}

impl Cell {
    /// The cell's full identity: `scenario/chemistry/fault/policy/engine`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.scenario,
            self.chemistry,
            self.fault,
            self.policy.name(),
            self.engine.name()
        )
    }

    /// The seed-deriving identity: the key *without* the engine axis.
    /// Engine-paired cells share workloads and fault plans, which is what
    /// makes the cross-engine differential comparison meaningful.
    #[must_use]
    pub fn seed_key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.scenario,
            self.chemistry,
            self.fault,
            self.policy.name()
        )
    }
}

/// A full campaign description. Every run artifact — outcome matrix,
/// checkpoint, baseline, report — is a pure function of this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Scenario axis values, in matrix order.
    pub scenarios: Vec<String>,
    /// Chemistry-pair axis values.
    pub chemistries: Vec<String>,
    /// Fault-plan axis values.
    pub faults: Vec<String>,
    /// Policy axis values.
    pub policies: Vec<String>,
    /// Engine axis values.
    pub engines: Vec<String>,
    /// Master seed; every cell/device stream derives from it.
    pub master_seed: u64,
    /// Per-device simulated horizon, hours (workloads are truncated).
    pub hours: f64,
    /// Independent devices simulated per cell.
    pub devices_per_cell: usize,
}

impl Default for CampaignSpec {
    /// The pruned CI matrix: 2 scenarios × 3 chemistries × 2 fault plans
    /// × 2 policies × 2 engines = 48 cells, 2 devices each.
    fn default() -> Self {
        Self {
            scenarios: vec!["standby".to_owned(), "phone-day".to_owned()],
            chemistries: vec!["co".to_owned(), "lfp".to_owned(), "nmc-lto".to_owned()],
            faults: vec!["none".to_owned(), "moderate".to_owned()],
            policies: vec!["greedy".to_owned(), "planned".to_owned()],
            engines: vec!["scalar".to_owned(), "soa".to_owned()],
            master_seed: 0xCA4_5EED,
            hours: 1.5,
            devices_per_cell: 2,
        }
    }
}

fn check_axis(name: &str, values: &[String], resolve: impl Fn(&str) -> bool) -> Result<(), String> {
    if values.is_empty() {
        return Err(format!("campaign needs at least one {name}"));
    }
    for (i, v) in values.iter().enumerate() {
        if !resolve(v) {
            return Err(format!("{name} axis: unresolvable value `{v}`"));
        }
        if values[..i].contains(v) {
            return Err(format!("{name} axis: duplicate value `{v}`"));
        }
    }
    Ok(())
}

impl CampaignSpec {
    /// Validates every axis value and scalar knob.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        check_axis("scenario", &self.scenarios, |v| scenario(v).is_ok())?;
        check_axis("chemistry", &self.chemistries, |v| {
            chemistry_pair(v).is_ok()
        })?;
        check_axis("fault", &self.faults, |v| fault_intensity(v).is_ok())?;
        check_axis("policy", &self.policies, |v| CellPolicy::parse(v).is_ok())?;
        check_axis("engine", &self.engines, |v| EngineKind::parse(v).is_ok())?;
        if !(self.hours.is_finite() && self.hours > 0.0) {
            return Err(format!("hours must be positive, got {}", self.hours));
        }
        if self.devices_per_cell == 0 {
            return Err("campaign needs at least one device per cell".to_owned());
        }
        Ok(())
    }

    /// Expands the matrix into cells, row-major in axis declaration order.
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn cells(&self) -> Result<Vec<Cell>, String> {
        self.validate()?;
        let mut cells =
            Vec::with_capacity(self.scenarios.len() * self.chemistries.len() * self.faults.len());
        let mut index = 0;
        for s in &self.scenarios {
            for c in &self.chemistries {
                for f in &self.faults {
                    for p in &self.policies {
                        for e in &self.engines {
                            cells.push(Cell {
                                index,
                                scenario: s.clone(),
                                chemistry: c.clone(),
                                fault: f.clone(),
                                policy: CellPolicy::parse(p).expect("validated"),
                                engine: EngineKind::parse(e).expect("validated"),
                            });
                            index += 1;
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Matrix dimensions `[scenarios, chemistries, faults, policies,
    /// engines]`.
    #[must_use]
    pub fn dims(&self) -> [usize; 5] {
        [
            self.scenarios.len(),
            self.chemistries.len(),
            self.faults.len(),
            self.policies.len(),
            self.engines.len(),
        ]
    }

    /// The cell's seed stream: derived from the master seed and the
    /// *engine-free* cell identity, never from the cell's matrix position
    /// — so a 1-cell repro run reproduces the full matrix's digests, and
    /// engine-paired cells share workloads and fault plans.
    #[must_use]
    pub fn cell_seed(&self, cell: &Cell) -> u64 {
        derive_seed(self.master_seed, fnv1a_64(cell.seed_key().as_bytes()))
    }

    /// The private stream seed of `device` within `cell`.
    #[must_use]
    pub fn device_seed(&self, cell: &Cell, device: u64) -> u64 {
        derive_seed(self.cell_seed(cell), device)
    }

    /// Digest over the *entire* configuration including axis lists; cell
    /// indices in a checkpoint are only meaningful under the exact same
    /// matrix, so resume refuses a checkpoint whose config digest differs.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        fnv1a_64(self.canonical(true).as_bytes())
    }

    /// Digest over the cell-independent scalars (seed, hours, devices per
    /// cell) only. Baselines carry this one: cell outcomes don't depend on
    /// which *other* cells a run included, so a pruned repro run can still
    /// be compared against the full matrix's baseline file.
    #[must_use]
    pub fn baseline_config_digest(&self) -> u64 {
        fnv1a_64(self.canonical(false).as_bytes())
    }

    fn canonical(&self, with_axes: bool) -> String {
        let mut s = format!(
            "sdb-campaign-config-v1|seed={:#x}|hours={:016x}|devices={}",
            self.master_seed,
            self.hours.to_bits(),
            self.devices_per_cell
        );
        if with_axes {
            s.push_str(&format!(
                "|scenarios={}|chemistries={}|faults={}|policies={}|engines={}",
                self.scenarios.join(","),
                self.chemistries.join(","),
                self.faults.join(","),
                self.policies.join(","),
                self.engines.join(",")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_48_cell_pruned_matrix() {
        let spec = CampaignSpec::default();
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 48);
        assert_eq!(spec.dims(), [2, 3, 2, 2, 2]);
        // Keys are unique and match matrix position.
        let mut keys: Vec<String> = cells.iter().map(Cell::key).collect();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 48);
    }

    #[test]
    fn every_preset_name_resolves() {
        for s in SCENARIOS {
            scenario(s).unwrap();
        }
        for c in CHEMISTRIES {
            chemistry_pair(c).unwrap();
        }
        for f in FAULTS {
            fault_intensity(f).unwrap();
        }
        for p in POLICIES {
            CellPolicy::parse(p).unwrap();
        }
        for e in ENGINES {
            EngineKind::parse(e).unwrap();
        }
    }

    #[test]
    fn validation_rejects_bad_axes_and_scalars() {
        let mut spec = CampaignSpec::default();
        spec.scenarios.push("mars-rover".to_owned());
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::default();
        spec.faults.push("none".to_owned());
        assert!(spec.validate().is_err(), "duplicates rejected");

        let mut spec = CampaignSpec::default();
        spec.engines.clear();
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::default();
        spec.hours = 0.0;
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::default();
        spec.devices_per_cell = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn engine_paired_cells_share_seed_streams() {
        let spec = CampaignSpec::default();
        let cells = spec.cells().unwrap();
        let scalar = cells
            .iter()
            .find(|c| c.engine == EngineKind::Scalar)
            .unwrap();
        let soa = cells
            .iter()
            .find(|c| c.engine == EngineKind::Soa && c.seed_key() == scalar.seed_key())
            .unwrap();
        assert_eq!(spec.cell_seed(scalar), spec.cell_seed(soa));
        assert_ne!(scalar.key(), soa.key());
    }

    #[test]
    fn config_digests_split_axis_sensitivity() {
        let a = CampaignSpec::default();
        let mut b = a.clone();
        b.scenarios.pop();
        // Pruning an axis changes the full config digest (checkpoints are
        // matrix-shape bound) but not the baseline digest (outcomes are
        // composition-independent).
        assert_ne!(a.config_digest(), b.config_digest());
        assert_eq!(a.baseline_config_digest(), b.baseline_config_digest());
        let mut c = a.clone();
        c.master_seed ^= 1;
        assert_ne!(a.baseline_config_digest(), c.baseline_config_digest());
    }
}
