//! Committed golden baselines and the differential comparison.
//!
//! A baseline records, per cell key, the cell digest and each device's
//! digest. It carries the *cell-independent* config digest (seed, hours,
//! devices per cell) rather than the full matrix digest: a cell's outcome
//! does not depend on which other cells a run included, so a pruned
//! single-cell repro run — the command the minimizer emits — can be
//! compared against the full matrix's committed baseline.
//!
//! ```text
//! # sdb-campaign baseline v1
//! config <16-hex baseline config digest>
//! cell <key> <cell-digest> <dev0-digest>,<dev1-digest>,...
//! ```

use crate::report::CampaignReport;

/// First line of every baseline file.
pub const BASELINE_HEADER: &str = "# sdb-campaign baseline v1";

/// One cell's golden digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineCell {
    /// Cell key (`scenario/chemistry/fault/policy/engine`).
    pub key: String,
    /// Golden cell digest.
    pub digest: u64,
    /// Golden per-device digests, in device order.
    pub devices: Vec<u64>,
}

/// A parsed golden baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// The cell-independent config digest the golden run used.
    pub config: u64,
    /// Per-cell golden digests, in the golden run's matrix order.
    pub cells: Vec<BaselineCell>,
}

impl Baseline {
    /// Captures a report as a new baseline.
    #[must_use]
    pub fn from_report(report: &CampaignReport) -> Self {
        Self {
            config: report.baseline_config_digest,
            cells: report
                .cells
                .iter()
                .map(|c| BaselineCell {
                    key: c.key.clone(),
                    digest: c.digest,
                    devices: c.devices.iter().map(|d| d.digest()).collect(),
                })
                .collect(),
        }
    }

    /// Renders the committed file format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!("{BASELINE_HEADER}\nconfig {:016x}\n", self.config);
        for c in &self.cells {
            let devices: Vec<String> = c.devices.iter().map(|d| format!("{d:016x}")).collect();
            s.push_str(&format!(
                "cell {} {:016x} {}\n",
                c.key,
                c.digest,
                devices.join(",")
            ));
        }
        s
    }

    /// Parses the committed file format.
    ///
    /// # Errors
    ///
    /// Returns a message on a bad header, config line, or cell line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim_end() == BASELINE_HEADER => {}
            other => {
                return Err(format!(
                    "not a campaign baseline (first line {:?})",
                    other.map_or("", |(_, l)| l)
                ))
            }
        }
        let config = lines
            .next()
            .and_then(|(_, l)| l.strip_prefix("config "))
            .ok_or_else(|| "baseline missing config line".to_owned())?;
        let config = u64::from_str_radix(config.trim(), 16)
            .map_err(|e| format!("bad config digest: {e}"))?;
        let mut cells = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_ascii_whitespace().collect();
            if f.len() != 4 || f[0] != "cell" {
                return Err(format!("baseline line {}: malformed cell row", i + 1));
            }
            let digest = u64::from_str_radix(f[2], 16)
                .map_err(|e| format!("baseline line {}: bad digest: {e}", i + 1))?;
            let devices = f[3]
                .split(',')
                .map(|d| u64::from_str_radix(d, 16))
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|e| format!("baseline line {}: bad device digest: {e}", i + 1))?;
            cells.push(BaselineCell {
                key: f[1].to_owned(),
                digest,
                devices,
            });
        }
        Ok(Self { config, cells })
    }

    /// Looks up a cell by key.
    #[must_use]
    pub fn cell(&self, key: &str) -> Option<&BaselineCell> {
        self.cells.iter().find(|c| c.key == key)
    }

    /// Deliberately perturbs `key`'s golden digests (cell digest and
    /// device 0's digest each XOR 1) — the seeded-divergence hook behind
    /// `sdb campaign --inject-divergence`, used to prove end to end that
    /// the comparison detects a mismatch and the minimizer converges on
    /// exactly this cell.
    ///
    /// # Errors
    ///
    /// Returns an error if `key` is not in the baseline.
    pub fn inject_divergence(&mut self, key: &str) -> Result<(), String> {
        let cell = self
            .cells
            .iter_mut()
            .find(|c| c.key == key)
            .ok_or_else(|| format!("--inject-divergence: cell `{key}` not in baseline"))?;
        cell.digest ^= 1;
        if let Some(d0) = cell.devices.first_mut() {
            *d0 ^= 1;
        }
        Ok(())
    }
}

/// One cell whose digest differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Matrix index of the cell in the *current* report.
    pub cell_index: usize,
    /// Cell key.
    pub key: String,
    /// Golden cell digest.
    pub expected: u64,
    /// Observed cell digest.
    pub actual: u64,
    /// Per-device mismatches as `(device, expected, actual)`.
    pub devices: Vec<(u64, u64, u64)>,
}

/// Result of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Cells present in both report and baseline.
    pub checked: usize,
    /// Report cells the baseline has no entry for (not a failure; the
    /// matrix grew or the run was pruned differently).
    pub new_cells: Vec<String>,
    /// Cells whose digests differ, in matrix order.
    pub divergences: Vec<Divergence>,
}

/// Compares a report against a golden baseline, cell by cell.
///
/// # Errors
///
/// Returns an error if the baseline was recorded under a different
/// (seed, hours, devices-per-cell) configuration — digests would differ
/// everywhere and mean nothing.
pub fn compare(report: &CampaignReport, baseline: &Baseline) -> Result<Comparison, String> {
    if baseline.config != report.baseline_config_digest {
        return Err(format!(
            "baseline config {:016x} does not match this campaign's {:016x} \
             (different seed, hours, or devices-per-cell); re-record with --write-baseline",
            baseline.config, report.baseline_config_digest
        ));
    }
    let mut checked = 0;
    let mut new_cells = Vec::new();
    let mut divergences = Vec::new();
    for cell in &report.cells {
        let Some(golden) = baseline.cell(&cell.key) else {
            new_cells.push(cell.key.clone());
            continue;
        };
        checked += 1;
        if golden.digest == cell.digest {
            continue;
        }
        let mut devices = Vec::new();
        for d in &cell.devices {
            let actual = d.digest();
            let expected = golden
                .devices
                .get(usize::try_from(d.device).unwrap_or(usize::MAX))
                .copied();
            match expected {
                Some(e) if e != actual => devices.push((d.device, e, actual)),
                Some(_) => {}
                None => devices.push((d.device, 0, actual)),
            }
        }
        divergences.push(Divergence {
            cell_index: cell.index,
            key: cell.key.clone(),
            expected: golden.digest,
            actual: cell.digest,
            devices,
        });
    }
    Ok(Comparison {
        checked,
        new_cells,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_baseline() -> Baseline {
        Baseline {
            config: 0xfeed,
            cells: vec![
                BaselineCell {
                    key: "a/b/c/d/e".to_owned(),
                    digest: 0x1111,
                    devices: vec![0x21, 0x22],
                },
                BaselineCell {
                    key: "f/g/h/i/j".to_owned(),
                    digest: 0x3333,
                    devices: vec![0x41],
                },
            ],
        }
    }

    #[test]
    fn baseline_round_trips() {
        let b = fake_baseline();
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("nope\n").is_err());
        assert!(Baseline::parse(&format!("{BASELINE_HEADER}\n")).is_err());
        let bad = format!("{BASELINE_HEADER}\nconfig 12\ncell only-three-fields 99\n");
        assert!(Baseline::parse(&bad).is_err());
    }

    #[test]
    fn injection_flips_exactly_one_cell() {
        let mut b = fake_baseline();
        let before = b.cells[1].clone();
        b.inject_divergence("f/g/h/i/j").unwrap();
        assert_eq!(b.cells[1].digest, before.digest ^ 1);
        assert_eq!(b.cells[1].devices[0], before.devices[0] ^ 1);
        assert_eq!(b.cells[0], fake_baseline().cells[0]);
        assert!(b.inject_divergence("missing/key").is_err());
    }
}
