//! The campaign checkpoint file: a line-oriented append-only log.
//!
//! Layout:
//!
//! ```text
//! # sdb-campaign checkpoint v1
//! config <16-hex full config digest>
//! dev <cell> <device> <life> <sup> <unmet> <loss> <soc> <bo> <viol> <faults> <ff> <snap-hex> <first-violation|->
//! ```
//!
//! Every float is serialized as the hex of its IEEE-754 bit pattern, and
//! the pack snapshot as hex of its [`sdb_emulator::PackSnapshot`] byte
//! encoding — the checkpoint round-trips records *bit-exactly*, which is
//! what lets a resumed campaign produce a byte-identical final report.
//!
//! The log is append-only and each record is one line, so a campaign
//! killed mid-write leaves at most one truncated final line; the parser
//! tolerates exactly that (the device is simply re-run on resume) while
//! rejecting any other corruption.

use crate::report::DeviceRecord;

/// First line of every checkpoint file.
pub const CHECKPOINT_HEADER: &str = "# sdb-campaign checkpoint v1";

fn hex_of(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    s
}

fn bytes_of(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd-length hex".to_owned());
    }
    (0..hex.len() / 2)
        .map(|i| {
            u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).map_err(|e| format!("bad hex: {e}"))
        })
        .collect()
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_of(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits `{s}`: {e}"))
}

/// Escapes a first-violation message into a single whitespace-free token:
/// `%`, whitespace, and every non-ASCII byte are percent-encoded.
fn escape(msg: &str) -> String {
    let mut s = String::with_capacity(msg.len());
    for b in msg.bytes() {
        match b {
            b'%' | 0..=b' ' | 0x7f.. => {
                let _ = std::fmt::Write::write_fmt(&mut s, format_args!("%{b:02x}"));
            }
            _ => s.push(b as char),
        }
    }
    s
}

fn unescape(tok: &str) -> Result<String, String> {
    let bytes = tok.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = tok
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_owned())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|e| format!("bad escape: {e}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| format!("non-utf8 violation text: {e}"))
}

/// The header block written when a checkpoint file is created.
#[must_use]
pub fn header(config_digest: u64) -> String {
    format!("{CHECKPOINT_HEADER}\nconfig {config_digest:016x}\n")
}

/// One completed device as a checkpoint line (newline-terminated).
#[must_use]
pub fn record_line(rec: &DeviceRecord) -> String {
    format!(
        "dev {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        rec.cell,
        rec.device,
        f64_hex(rec.life_s),
        f64_hex(rec.supplied_j),
        f64_hex(rec.unmet_j),
        f64_hex(rec.loss_j),
        f64_hex(rec.mean_final_soc),
        u8::from(rec.browned_out),
        rec.violations,
        rec.faults_injected,
        rec.ff_ticks,
        hex_of(&rec.snapshot),
        rec.first_violation
            .as_deref()
            .map_or_else(|| "-".to_owned(), escape),
    )
}

fn parse_record(line: &str) -> Result<DeviceRecord, String> {
    let f: Vec<&str> = line.split_ascii_whitespace().collect();
    if f.len() != 14 || f[0] != "dev" {
        return Err(format!("malformed record ({} fields)", f.len()));
    }
    let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|e| format!("bad {what} `{s}`: {e}"))
    };
    Ok(DeviceRecord {
        cell: usize::try_from(parse_u64(f[1], "cell")?).map_err(|e| e.to_string())?,
        device: parse_u64(f[2], "device")?,
        life_s: f64_of(f[3])?,
        supplied_j: f64_of(f[4])?,
        unmet_j: f64_of(f[5])?,
        loss_j: f64_of(f[6])?,
        mean_final_soc: f64_of(f[7])?,
        browned_out: match f[8] {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad brownout flag `{other}`")),
        },
        violations: parse_u64(f[9], "violations")?,
        faults_injected: parse_u64(f[10], "faults")?,
        ff_ticks: parse_u64(f[11], "ff_ticks")?,
        snapshot: bytes_of(f[12])?,
        first_violation: if f[13] == "-" {
            None
        } else {
            Some(unescape(f[13])?)
        },
    })
}

/// Parses a checkpoint file's text, validating the config digest.
///
/// Returns the completed device records in file order (the caller
/// deduplicates and sorts). A truncated *final* line — the signature of a
/// kill mid-append — is silently dropped; corruption anywhere else is an
/// error.
///
/// # Errors
///
/// Returns a message on a missing/mismatching header or config digest, or
/// on a malformed non-final record.
pub fn parse(text: &str, expect_config: u64) -> Result<Vec<DeviceRecord>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l.trim_end() == CHECKPOINT_HEADER => {}
        other => {
            return Err(format!(
                "not a campaign checkpoint (first line {:?})",
                other.unwrap_or("")
            ))
        }
    }
    let config = lines
        .next()
        .and_then(|l| l.strip_prefix("config "))
        .ok_or_else(|| "checkpoint missing config line".to_owned())?;
    let config =
        u64::from_str_radix(config.trim(), 16).map_err(|e| format!("bad config digest: {e}"))?;
    if config != expect_config {
        return Err(format!(
            "checkpoint config digest {config:016x} does not match this campaign \
             ({expect_config:016x}); it was written by a different spec"
        ));
    }
    let body: Vec<&str> = lines.collect();
    let ends_with_newline = text.ends_with('\n');
    let mut records = Vec::with_capacity(body.len());
    for (i, line) in body.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(r) => records.push(r),
            // Only an unterminated final line may be dropped: that is the
            // one state a kill mid-append can leave behind.
            Err(_) if i + 1 == body.len() && !ends_with_newline => {}
            Err(e) => return Err(format!("checkpoint line {}: {e}", i + 3)),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(violation: Option<&str>) -> DeviceRecord {
        DeviceRecord {
            cell: 7,
            device: 1,
            life_s: 5400.125,
            supplied_j: 1234.5678,
            unmet_j: 0.0,
            loss_j: 17.25,
            mean_final_soc: 0.84375,
            browned_out: true,
            violations: u64::from(violation.is_some()),
            faults_injected: 3,
            ff_ticks: 99,
            first_violation: violation.map(ToString::to_string),
            snapshot: vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x01],
        }
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for r in [rec(None), rec(Some("t=60.0 s energy identity: |Δ| = 3 J"))] {
            let text = format!("{}{}", header(0xabcd), record_line(&r));
            let parsed = parse(&text, 0xabcd).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0], r);
            assert_eq!(parsed[0].digest(), r.digest());
        }
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let text = header(0x1111);
        let err = parse(&text, 0x2222).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
    }

    #[test]
    fn truncated_final_line_is_dropped_but_interior_corruption_errors() {
        let good = record_line(&rec(None));
        let full = format!("{}{}", header(9), good);
        // Kill mid-append: final line cut short, no trailing newline.
        let truncated = &full[..full.len() - 10];
        let parsed = parse(truncated, 9).unwrap();
        assert!(parsed.is_empty());
        // Two records with the first mangled: hard error.
        let bad = format!("{}dev 1 mangled\n{}", header(9), good);
        assert!(parse(&bad, 9).is_err());
        // Not a checkpoint at all.
        assert!(parse("hello\n", 9).is_err());
    }
}
