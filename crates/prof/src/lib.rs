//! # sdb-prof — always-on hierarchical phase profiler
//!
//! Scoped timers recorded into a preallocated, allocation-free phase
//! slot table, aggregated into a hierarchical phase tree with per-shard
//! and per-cohort attribution. Three design rules drive everything:
//!
//! 1. **Determinism quarantine.** The profiler's *call counts* are part
//!    of the deterministic artifact: sampling decisions are made by a
//!    per-device tick counter (reset at every [`device_scope`]), never
//!    by wall-clock, so the count tree is bit-identical at any thread
//!    count — asserted in CI exactly like `FleetReport`. Nanosecond
//!    timings, per-shard attribution, and sample quantiles are
//!    wall-clock facts and live in a separate "wall" section of every
//!    export, the same split `FleetRunStats` uses.
//!
//! 2. **Allocation-free hot path.** Slots are created lazily on first
//!    entry of a phase path (warmup); after that a recording touches
//!    only preallocated state — fixed stack, array child links, and a
//!    duration sketch prewarmed over the insert clamp range so bucket
//!    inserts never allocate. The micro-step bench asserts this with
//!    the counting allocator and bounds total overhead at ≤ 5 %.
//!
//! 3. **Cheap enough to leave on.** A process-global atomic gate makes
//!    the disabled cost one relaxed load per scope. When enabled, the
//!    sampling gate times only 1-in-[`SAMPLE_EVERY`] steps; sub-step
//!    phases ([`StepGuard::hot_sub`]) cost a single branch on cold
//!    steps.
//!
//! Aggregation is commutative: worker threads flush their device trees
//! into a process-global aggregate tagged with shard and cohort, and
//! tree merges add counts/durations node-wise — any completion order
//! yields the identical aggregate.

mod phase;
mod render;
mod table;

pub use phase::{Phase, ALL_PHASES, PHASE_COUNT};
pub use render::{PhaseNode, Snapshot};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use table::Table;

/// Only 1 in `SAMPLE_EVERY` gating steps is wall-clock timed (the first
/// tick of every device is, so short runs still produce samples). Counts
/// are unaffected for step-level phases; sub-step phases record only on
/// timed ticks, which keeps their counts deterministic too — the gate is
/// driven by the per-device tick counter, never by elapsed time.
pub const SAMPLE_EVERY: u64 = 128;

/// Scope-stack depth limit (device → trace step → plan → rollout →
/// trace step → micro step → sub-phase nests well below this).
const MAX_DEPTH: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the profiler on process-wide. Cheap to call repeatedly.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the profiler off process-wide. In-flight guards finish
/// recording; new scopes become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local collector
// ---------------------------------------------------------------------------

struct Collector {
    table: Table,
    stack: [u16; MAX_DEPTH],
    depth: usize,
    /// Device-local gating-step counter (reset by [`device_scope`]).
    tick: u64,
    /// Whether the current gating step is wall-clock timed.
    hot: bool,
    /// Whether a gating step is currently open (nested steps defer).
    in_step: bool,
    shard: Option<u16>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            table: Table::with_capacity(),
            stack: [0; MAX_DEPTH],
            depth: 0,
            tick: 0,
            hot: false,
            in_step: false,
            shard: None,
        }
    }

    fn enter(&mut self, phase: Phase) {
        let parent = if self.depth == 0 {
            None
        } else {
            Some(self.stack[self.depth - 1])
        };
        let idx = self.table.resolve(parent, phase);
        self.table.slots[idx as usize].count += 1;
        debug_assert!(self.depth < MAX_DEPTH, "prof scope stack overflow");
        if self.depth < MAX_DEPTH {
            self.stack[self.depth] = idx;
            self.depth += 1;
        }
    }

    fn exit(&mut self, start: Option<Instant>) {
        debug_assert!(self.depth > 0, "prof scope exit without enter");
        if self.depth == 0 {
            return;
        }
        self.depth -= 1;
        if let Some(t0) = start {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.table.slots[self.stack[self.depth] as usize].record_ns(ns);
        }
    }
}

thread_local! {
    static TLS: RefCell<Collector> = RefCell::new(Collector::new());
}

// ---------------------------------------------------------------------------
// Process-global aggregate
// ---------------------------------------------------------------------------

struct GlobalAgg {
    total: Table,
    per_cohort: BTreeMap<u16, Table>,
    per_shard: BTreeMap<u16, Table>,
    cohorts: Vec<String>,
}

impl GlobalAgg {
    const fn new() -> GlobalAgg {
        GlobalAgg {
            total: Table::new(),
            per_cohort: BTreeMap::new(),
            per_shard: BTreeMap::new(),
            cohorts: Vec::new(),
        }
    }
}

static GLOBAL: Mutex<GlobalAgg> = Mutex::new(GlobalAgg::new());

fn flush_table(table: &Table, shard: Option<u16>, cohort: Option<u16>) {
    if table.is_empty() {
        return;
    }
    let mut g = GLOBAL.lock().expect("prof global aggregate poisoned");
    g.total.merge_from(table);
    if let Some(c) = cohort {
        g.per_cohort
            .entry(c)
            .or_insert_with(Table::new)
            .merge_from(table);
    }
    if let Some(s) = shard {
        g.per_shard
            .entry(s)
            .or_insert_with(Table::new)
            .merge_from(table);
    }
}

/// Interns a cohort name, returning the id to pass to [`device_scope`].
/// Ids are assigned in first-seen order (thread-dependent); every export
/// keys cohorts by *name* in sorted order, so attribution stays
/// deterministic regardless.
///
/// # Panics
///
/// Panics if the global aggregate lock is poisoned.
#[must_use]
pub fn cohort_id(name: &str) -> u16 {
    let mut g = GLOBAL.lock().expect("prof global aggregate poisoned");
    if let Some(pos) = g.cohorts.iter().position(|c| c == name) {
        return u16::try_from(pos).expect("cohort id overflow");
    }
    g.cohorts.push(name.to_owned());
    u16::try_from(g.cohorts.len() - 1).expect("cohort id overflow")
}

/// Tags the current thread's subsequent device flushes with a shard id.
/// Shard attribution is a wall-clock fact (it depends on the thread
/// count) and is quarantined to the wall section of exports.
pub fn set_shard(shard: u16) {
    TLS.with(|c| c.borrow_mut().shard = Some(shard));
}

/// Clears both the global aggregate and the calling thread's collector.
/// Worker-thread collectors flush at device-scope drop and die with
/// their (scoped) threads, so resetting between runs on the driving
/// thread is sufficient.
///
/// # Panics
///
/// Panics if the global aggregate lock is poisoned.
pub fn reset() {
    *GLOBAL.lock().expect("prof global aggregate poisoned") = GlobalAgg::new();
    TLS.with(|c| *c.borrow_mut() = Collector::new());
}

/// Flushes the calling thread's collected tree into the global
/// aggregate (untagged: totals only) and resets the thread collector.
/// Call after driving work on a thread that does not use
/// [`device_scope`] — e.g. the fleet main thread's orchestration scopes
/// or a single-device `sdb profile --scenario sim` run.
pub fn flush_thread() {
    TLS.with(|c| {
        let mut c = c.borrow_mut();
        let table = std::mem::replace(&mut c.table, Table::with_capacity());
        let shard = c.shard;
        drop(c);
        flush_table(&table, shard, None);
    });
}

/// A point-in-time copy of the flushed aggregate, ready for rendering.
/// Devices flush as they complete, so a live reader (the `/profile`
/// endpoint) sees the tree grow monotonically.
///
/// # Panics
///
/// Panics if the global aggregate lock is poisoned.
#[must_use]
pub fn snapshot() -> Snapshot {
    let g = GLOBAL.lock().expect("prof global aggregate poisoned");
    render::snapshot_from(&g.total, &g.per_cohort, &g.per_shard, &g.cohorts)
}

/// Publishes flat per-phase `sdb_prof_calls` / `sdb_prof_total_ns` /
/// `sdb_prof_self_ns` gauges (labelled by phase) into `registry` from
/// the current aggregate. Intended to run on the serve scrape tick.
///
/// # Panics
///
/// Panics if the global aggregate lock is poisoned.
pub fn export_gauges(registry: &sdb_observe::MetricsRegistry) {
    let totals = {
        let g = GLOBAL.lock().expect("prof global aggregate poisoned");
        table::flat_totals(&g.total)
    };
    let snap = snapshot();
    let mut self_ns = [0u64; PHASE_COUNT];
    fn add_self(nodes: &[PhaseNode], out: &mut [u64; PHASE_COUNT]) {
        for n in nodes {
            out[n.phase as usize] += n.self_ns();
            add_self(&n.children, out);
        }
    }
    add_self(&snap.phases, &mut self_ns);
    for (pi, (count, total_ns)) in totals.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let phase = Phase::from_index(pi);
        let labels = [("phase", phase.name())];
        registry.gauge("sdb_prof_calls", &labels).set(*count as f64);
        registry
            .gauge("sdb_prof_total_ns", &labels)
            .set(*total_ns as f64);
        registry
            .gauge("sdb_prof_self_ns", &labels)
            .set(self_ns[pi] as f64);
    }
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

/// Guard for an always-counted scope. Timing depends on which
/// constructor produced it ([`scope`]: always; [`sub`]: on hot steps;
/// [`StepGuard::hot_sub`]: always, but only constructed hot).
#[derive(Debug)]
pub struct ScopeGuard {
    active: bool,
    start: Option<Instant>,
}

impl ScopeGuard {
    const INACTIVE: ScopeGuard = ScopeGuard {
        active: false,
        start: None,
    };
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            TLS.with(|c| c.borrow_mut().exit(self.start.take()));
        }
    }
}

/// Opens an always-counted, always-timed scope — run/device-granularity
/// phases where the timing cost is negligible relative to the body.
#[must_use]
pub fn scope(phase: Phase) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard::INACTIVE;
    }
    TLS.with(|c| c.borrow_mut().enter(phase));
    ScopeGuard {
        active: true,
        start: Some(Instant::now()),
    }
}

/// Opens an always-counted scope that is wall-clock timed only inside a
/// hot gating step — per-trace-step phases (plan, tick, link traffic).
#[must_use]
pub fn sub(phase: Phase) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard::INACTIVE;
    }
    let hot = TLS.with(|c| {
        let mut c = c.borrow_mut();
        c.enter(phase);
        c.hot
    });
    ScopeGuard {
        active: true,
        start: if hot { Some(Instant::now()) } else { None },
    }
}

/// Guard for a sampling-gate step ([`step`]).
#[derive(Debug)]
pub struct StepGuard {
    active: bool,
    gater: bool,
    hot: bool,
    start: Option<Instant>,
}

impl StepGuard {
    /// Whether this step is wall-clock timed (1 in [`SAMPLE_EVERY`]).
    #[must_use]
    pub fn hot(&self) -> bool {
        self.hot
    }

    /// Opens a sub-step scope that records (count *and* time) only on
    /// hot steps — a single branch, no thread-local access, on the cold
    /// 127 of 128. Sub-step counts stay deterministic because hotness is
    /// decided by the device-local tick, not the clock.
    #[must_use]
    pub fn hot_sub(&self, phase: Phase) -> ScopeGuard {
        if !self.active || !self.hot {
            return ScopeGuard::INACTIVE;
        }
        TLS.with(|c| c.borrow_mut().enter(phase));
        ScopeGuard {
            active: true,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for StepGuard {
    fn drop(&mut self) {
        if self.active {
            TLS.with(|c| {
                let mut c = c.borrow_mut();
                c.exit(self.start.take());
                if self.gater {
                    c.in_step = false;
                    c.hot = false;
                }
            });
        }
    }
}

/// Opens a gating step: advances the per-device tick and decides whether
/// this step is hot (wall-clock timed). The step itself is always
/// counted. When a gating step is already open on this thread (e.g. a
/// `MicroStep` nested under the scheduler's `TraceStep`), the scope
/// inherits the open step's hot decision instead of double-advancing
/// the gate.
#[must_use]
pub fn step(phase: Phase) -> StepGuard {
    if !enabled() {
        return StepGuard {
            active: false,
            gater: false,
            hot: false,
            start: None,
        };
    }
    let (gater, hot) = TLS.with(|c| {
        let mut c = c.borrow_mut();
        let gater = !c.in_step;
        if gater {
            c.tick += 1;
            c.hot = c.tick % SAMPLE_EVERY == 1;
            c.in_step = true;
        }
        c.enter(phase);
        (gater, c.hot)
    });
    StepGuard {
        active: true,
        gater,
        hot,
        start: if hot { Some(Instant::now()) } else { None },
    }
}

/// Guard for one device's profiled run ([`device_scope`]).
#[derive(Debug)]
pub struct DeviceScope {
    active: bool,
    cohort: u16,
    start: Option<Instant>,
}

impl Drop for DeviceScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        TLS.with(|c| {
            let mut c = c.borrow_mut();
            c.exit(self.start.take());
            let table = std::mem::replace(&mut c.table, Table::with_capacity());
            let shard = c.shard;
            drop(c);
            flush_table(&table, shard, Some(self.cohort));
        });
    }
}

/// Opens a per-device profiling scope: resets the sampling gate (so the
/// hot-tick pattern is a function of the device alone, not of which
/// worker ran it) and, on drop, flushes the thread's tree into the
/// global aggregate tagged with the worker's shard and this `cohort`
/// (from [`cohort_id`]).
#[must_use]
pub fn device_scope(cohort: u16) -> DeviceScope {
    if !enabled() {
        return DeviceScope {
            active: false,
            cohort,
            start: None,
        };
    }
    TLS.with(|c| {
        let mut c = c.borrow_mut();
        c.tick = 0;
        c.hot = false;
        c.in_step = false;
        c.enter(Phase::DeviceRun);
    });
    DeviceScope {
        active: true,
        cohort,
        start: Some(Instant::now()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global profiler state is process-wide; tests serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn counts_of(snapshot: &Snapshot) -> Vec<(Phase, u64)> {
        let mut out = Vec::new();
        fn rec(nodes: &[PhaseNode], out: &mut Vec<(Phase, u64)>) {
            for n in nodes {
                out.push((n.phase, n.count));
                rec(&n.children, out);
            }
        }
        rec(&snapshot.phases, &mut out);
        out
    }

    #[test]
    fn disabled_guards_record_nothing() {
        let _l = locked();
        reset();
        disable();
        {
            let s = step(Phase::MicroStep);
            let _h = s.hot_sub(Phase::CurveEval);
            let _sc = scope(Phase::DeviceRun);
        }
        flush_thread();
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn step_gate_samples_counts_deterministically() {
        let _l = locked();
        reset();
        enable();
        let n = 3 * SAMPLE_EVERY;
        for _ in 0..n {
            let s = step(Phase::MicroStep);
            let _h = s.hot_sub(Phase::CurveEval);
        }
        flush_thread();
        disable();
        let snap = snapshot();
        let counts = counts_of(&snap);
        assert_eq!(
            counts,
            vec![(Phase::MicroStep, n), (Phase::CurveEval, 3)],
            "1-in-{SAMPLE_EVERY} ticks are hot, starting at the first"
        );
    }

    #[test]
    fn nested_step_inherits_the_open_gate() {
        let _l = locked();
        reset();
        enable();
        for _ in 0..SAMPLE_EVERY {
            let outer = step(Phase::TraceStep);
            let inner = step(Phase::MicroStep);
            assert_eq!(inner.hot(), outer.hot());
            let _h = inner.hot_sub(Phase::RcState);
        }
        flush_thread();
        disable();
        let snap = snapshot();
        let counts = counts_of(&snap);
        // One gate advance per outer step: exactly one hot tick in
        // SAMPLE_EVERY, so RcState recorded once; MicroStep nested under
        // TraceStep counts every iteration.
        assert_eq!(
            counts,
            vec![
                (Phase::TraceStep, SAMPLE_EVERY),
                (Phase::MicroStep, SAMPLE_EVERY),
                (Phase::RcState, 1),
            ]
        );
    }

    #[test]
    fn device_scope_resets_gate_and_tags_cohort_and_shard() {
        let _l = locked();
        reset();
        enable();
        let phone = cohort_id("phone");
        let watch = cohort_id("watch");
        set_shard(7);
        for cohort in [phone, watch, phone] {
            let _d = device_scope(cohort);
            for _ in 0..10 {
                let _s = step(Phase::TraceStep);
            }
        }
        disable();
        let snap = snapshot();
        // Total: 3 devices × 10 steps.
        assert_eq!(
            counts_of(&snap),
            vec![(Phase::DeviceRun, 3), (Phase::TraceStep, 30)]
        );
        // Cohorts keyed by sorted name.
        let names: Vec<&str> = snap.per_cohort.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["phone", "watch"]);
        assert_eq!(snap.per_cohort[0].1[0].count, 2, "phone ran twice");
        assert_eq!(snap.per_cohort[1].1[0].count, 1, "watch ran once");
        assert_eq!(snap.per_shard.len(), 1);
        assert_eq!(snap.per_shard[0].0, 7);
        assert_eq!(snap.per_shard[0].1[0].count, 3);
    }

    #[test]
    fn flush_order_cannot_change_the_aggregate() {
        let _l = locked();
        enable();
        let runs: &[&[u64]] = &[&[4, 2], &[2, 4], &[2, 4, 4, 2]];
        let mut rendered = Vec::new();
        for (case, devices) in runs.iter().enumerate() {
            reset();
            let c = cohort_id("c");
            for &steps in devices.iter() {
                let _d = device_scope(c);
                for _ in 0..steps {
                    let _s = step(Phase::TraceStep);
                }
            }
            if case == 2 {
                // Doubled population: not comparable, just exercise it.
                continue;
            }
            rendered.push(snapshot().render_counts());
        }
        disable();
        assert_eq!(rendered[0], rendered[1], "device order must not matter");
        reset();
    }

    #[test]
    fn always_timed_scope_records_wall_facts() {
        let _l = locked();
        reset();
        enable();
        {
            let _sc = scope(Phase::ReportMerge);
            std::hint::black_box(1 + 1);
        }
        flush_thread();
        disable();
        let snap = snapshot();
        let node = &snap.phases[0];
        assert_eq!(node.phase, Phase::ReportMerge);
        assert_eq!(node.count, 1);
        assert_eq!(node.timed, 1);
        assert!(node.max_ns >= node.min_ns);
        reset();
    }
}
