//! The preallocated phase slot table.
//!
//! A [`Table`] is a forest of phase nodes stored in one flat `Vec<Slot>`
//! with per-slot child links indexed by phase — resolving a child is an
//! array lookup, never a hash or search. Slots are created lazily the
//! first time a phase path is entered (the only allocating operation);
//! after that, recording into a slot touches preallocated state only:
//! the duration sketch is prewarmed over the clamp range at slot
//! creation so steady-state inserts never allocate a bucket.
//!
//! Merging two tables adds counts and nanosecond totals and folds the
//! duration sketches bucket-wise — all commutative and associative, so
//! shard/device merge order cannot change the aggregate (the same
//! contract the fleet engine's metric registries follow).

use crate::phase::{Phase, PHASE_COUNT};
use sdb_observe::QuantileSketch;

/// Sentinel for "no slot" in child/root link tables.
pub(crate) const NONE: u16 = u16::MAX;

/// Slot capacity preallocated per thread-local table. Instrumented phase
/// paths stay far below this; the vector can still grow if exceeded.
pub(crate) const MAX_SLOTS: usize = 64;

/// Relative accuracy of per-phase duration sketches. Coarser than the
/// fleet default (1 %) on purpose: 5 % keeps the prewarmed bucket range
/// near two hundred entries per slot.
pub(crate) const SKETCH_ALPHA: f64 = 0.05;

/// Durations are clamped into `[CLAMP_LO_NS, CLAMP_HI_NS]` before the
/// sketch insert so the prewarmed bucket set covers every insert (the
/// allocation-free guarantee). Exact min/max are kept unclamped in
/// dedicated slot fields.
pub(crate) const CLAMP_LO_NS: f64 = 1.0;
/// Upper clamp bound: 10 s in nanoseconds.
pub(crate) const CLAMP_HI_NS: f64 = 1e10;

/// One node of the phase forest.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    /// Which phase this slot records.
    pub phase: Phase,
    /// Scope entries (the deterministic fact).
    pub count: u64,
    /// Scope entries that were actually timed (sampled; wall-clock fact).
    pub timed: u64,
    /// Sum of timed durations in nanoseconds.
    pub total_ns: u64,
    /// Exact minimum timed duration (valid when `timed > 0`).
    pub min_ns: u64,
    /// Exact maximum timed duration (valid when `timed > 0`).
    pub max_ns: u64,
    /// Clamped duration distribution for p50/p95.
    pub sketch: QuantileSketch,
    /// Child slot index per phase (`NONE` = absent).
    pub children: [u16; PHASE_COUNT],
}

impl Slot {
    pub(crate) fn new(phase: Phase) -> Slot {
        let mut sketch = QuantileSketch::with_accuracy(SKETCH_ALPHA);
        sketch.prewarm(CLAMP_LO_NS, CLAMP_HI_NS);
        Slot {
            phase,
            count: 0,
            timed: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            sketch,
            children: [NONE; PHASE_COUNT],
        }
    }

    /// Records one timed duration into the slot. Insert is clamped into
    /// the prewarmed range, so this never allocates.
    pub(crate) fn record_ns(&mut self, ns: u64) {
        self.timed += 1;
        if self.timed == 1 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.total_ns += ns;
        self.sketch
            .insert((ns as f64).clamp(CLAMP_LO_NS, CLAMP_HI_NS));
    }
}

/// A forest of phase slots with root links per phase.
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub slots: Vec<Slot>,
    pub roots: [u16; PHASE_COUNT],
}

impl Table {
    pub(crate) const fn new() -> Table {
        Table {
            slots: Vec::new(),
            roots: [NONE; PHASE_COUNT],
        }
    }

    pub(crate) fn with_capacity() -> Table {
        Table {
            slots: Vec::with_capacity(MAX_SLOTS),
            roots: [NONE; PHASE_COUNT],
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Index of the `phase` child under `parent` (a root when `None`),
    /// creating the slot on first use — the only allocating path.
    pub(crate) fn resolve(&mut self, parent: Option<u16>, phase: Phase) -> u16 {
        let pi = phase as usize;
        let existing = match parent {
            None => self.roots[pi],
            Some(p) => self.slots[p as usize].children[pi],
        };
        if existing != NONE {
            return existing;
        }
        let idx = u16::try_from(self.slots.len()).expect("phase slot table exceeded u16 indexing");
        self.slots.push(Slot::new(phase));
        match parent {
            None => self.roots[pi] = idx,
            Some(p) => self.slots[p as usize].children[pi] = idx,
        }
        idx
    }

    /// Folds `src` into this table node-by-node along matching phase
    /// paths. Counts and totals add, min/max widen, sketches merge
    /// bucket-wise — commutative and associative, so any merge order
    /// yields the identical table.
    pub(crate) fn merge_from(&mut self, src: &Table) {
        for pi in 0..PHASE_COUNT {
            let s = src.roots[pi];
            if s != NONE {
                self.merge_node(None, src, s);
            }
        }
    }

    fn merge_node(&mut self, dst_parent: Option<u16>, src: &Table, s_idx: u16) {
        let s = &src.slots[s_idx as usize];
        let d_idx = self.resolve(dst_parent, s.phase);
        {
            let d = &mut self.slots[d_idx as usize];
            d.count += s.count;
            if s.timed > 0 {
                if d.timed == 0 {
                    d.min_ns = s.min_ns;
                    d.max_ns = s.max_ns;
                } else {
                    d.min_ns = d.min_ns.min(s.min_ns);
                    d.max_ns = d.max_ns.max(s.max_ns);
                }
                d.timed += s.timed;
                d.total_ns += s.total_ns;
                d.sketch.merge_from(&s.sketch);
            }
        }
        for pi in 0..PHASE_COUNT {
            let child = s.children[pi];
            if child != NONE {
                self.merge_node(Some(d_idx), src, child);
            }
        }
    }
}

/// Walks a table's forest depth-first in phase order, calling `f` with
/// `(depth, slot)` — the deterministic iteration every renderer uses.
pub(crate) fn walk<'a>(table: &'a Table, f: &mut impl FnMut(usize, &'a Slot)) {
    fn rec<'a>(table: &'a Table, idx: u16, depth: usize, f: &mut impl FnMut(usize, &'a Slot)) {
        let slot = &table.slots[idx as usize];
        f(depth, slot);
        for pi in 0..PHASE_COUNT {
            let child = slot.children[pi];
            if child != NONE {
                rec(table, child, depth + 1, f);
            }
        }
    }
    for pi in 0..PHASE_COUNT {
        let root = table.roots[pi];
        if root != NONE {
            rec(table, root, 0, f);
        }
    }
}

/// Per-phase `(count, total_ns)` sums across the whole forest, in phase
/// order — the flat view behind the `sdb_prof_*` gauges.
pub(crate) fn flat_totals(table: &Table) -> [(u64, u64); PHASE_COUNT] {
    let mut out = [(0u64, 0u64); PHASE_COUNT];
    walk(table, &mut |_, slot| {
        let pi = slot.phase as usize;
        out[pi].0 += slot.count;
        out[pi].1 += slot.total_ns;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::ALL_PHASES;

    fn sample_table(scale: u64) -> Table {
        let mut t = Table::with_capacity();
        let root = t.resolve(None, Phase::DeviceRun);
        t.slots[root as usize].count += 1;
        t.slots[root as usize].record_ns(1_000_000 * scale);
        let step = t.resolve(Some(root), Phase::TraceStep);
        for i in 0..10 * scale {
            t.slots[step as usize].count += 1;
            t.slots[step as usize].record_ns(500 + i);
        }
        let micro = t.resolve(Some(step), Phase::MicroStep);
        t.slots[micro as usize].count += 10 * scale;
        t.slots[micro as usize].record_ns(300 * scale);
        t
    }

    #[test]
    fn resolve_reuses_slots_per_path() {
        let mut t = Table::with_capacity();
        let a = t.resolve(None, Phase::MicroStep);
        let b = t.resolve(None, Phase::MicroStep);
        assert_eq!(a, b);
        let c1 = t.resolve(Some(a), Phase::CurveEval);
        let c2 = t.resolve(Some(a), Phase::CurveEval);
        assert_eq!(c1, c2);
        assert_eq!(t.slots.len(), 2);
        // The same phase under a different parent is a different slot.
        let other_root = t.resolve(None, Phase::TraceStep);
        let c3 = t.resolve(Some(other_root), Phase::CurveEval);
        assert_ne!(c1, c3);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample_table(1);
        let b = sample_table(3);
        let mut ab = Table::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = Table::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        let mut left = Vec::new();
        walk(&ab, &mut |d, s| {
            left.push((d, s.phase, s.count, s.timed, s.total_ns, s.min_ns, s.max_ns));
        });
        let mut right = Vec::new();
        walk(&ba, &mut |d, s| {
            right.push((d, s.phase, s.count, s.timed, s.total_ns, s.min_ns, s.max_ns));
        });
        assert_eq!(left, right);
    }

    #[test]
    fn record_tracks_exact_min_max_past_the_clamp() {
        let mut s = Slot::new(Phase::DeviceRun);
        s.record_ns(2 * (CLAMP_HI_NS as u64));
        s.record_ns(100);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 2 * (CLAMP_HI_NS as u64));
        // Sketch saw the clamped value, exact fields did not.
        assert!(s.sketch.max() <= CLAMP_HI_NS);
    }

    #[test]
    fn flat_totals_sum_across_paths() {
        let mut t = Table::with_capacity();
        let a = t.resolve(None, Phase::TraceStep);
        t.slots[a as usize].count += 4;
        let b = t.resolve(Some(a), Phase::MicroStep);
        t.slots[b as usize].count += 7;
        let c = t.resolve(None, Phase::MicroStep);
        t.slots[c as usize].count += 5;
        let totals = flat_totals(&t);
        assert_eq!(totals[Phase::MicroStep as usize].0, 12);
        assert_eq!(totals[Phase::TraceStep as usize].0, 4);
    }

    #[test]
    fn all_phases_cover_child_tables() {
        assert_eq!(ALL_PHASES.len(), PHASE_COUNT);
    }
}
