//! The closed set of profiled phases.
//!
//! Phases are a fixed enum rather than free-form strings so the slot
//! table can be preallocated, child lookup is an array index, and the
//! rendered tree has a stable, deterministic order (enum order) at any
//! thread count.

/// One profiled phase of the stack. Enum order is render order.
///
/// The set spans every layer the profiler instruments: run drivers
/// (`FleetRun`/`ChaosRun`/`PolicyRun`), per-device work (`DeviceRun`),
/// the scheduler loop (`TraceStep` and its `PolicyPlan`/`RuntimeTick`/
/// `LinkStep` sub-phases, plus `PlannerRollout` under the planner), the
/// emulator hot loop (`MicroStep` and its five internal phases), and
/// report assembly (`ReportMerge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// A whole `run_fleet_*` invocation (main thread: orchestration).
    FleetRun = 0,
    /// A whole chaos campaign invocation.
    ChaosRun = 1,
    /// A whole policy corpus head-to-head invocation.
    PolicyRun = 2,
    /// One device's full simulation (worker thread).
    DeviceRun = 3,
    /// One resampled scheduler step (the sampling gate advances here).
    TraceStep = 4,
    /// Policy `plan()` + `commit_plan` inside a trace step.
    PolicyPlan = 5,
    /// One shooting-planner candidate rollout.
    PlannerRollout = 6,
    /// `SdbRuntime::tick` inside a trace step.
    RuntimeTick = 7,
    /// Link/heartbeat traffic in the linked scheduler driver.
    LinkStep = 8,
    /// One `Microcontroller::step` (gates itself when standalone).
    MicroStep = 9,
    /// OCV/DCIR curve evaluation + discharge capability planning.
    CurveEval = 10,
    /// Share allocation and RC-state discharge application.
    RcState = 11,
    /// Surplus charging + battery-to-battery transfer.
    ChargeTransfer = 12,
    /// Fuel-gauge sampling + rest bookkeeping.
    GaugeUpdate = 13,
    /// Staged observer event + step-sample emission.
    ObserverEmit = 14,
    /// Deterministic shard merge into the fleet report.
    ReportMerge = 15,
    /// One scalar sync step of the SoA fleet engine (the hybrid
    /// driver's per-tick path between fast-forward stretches).
    SoaStep = 16,
    /// One closed-form multi-tick advance of a quiescent SoA lane.
    FastForward = 17,
    /// A whole `sdb campaign` matrix invocation (main thread:
    /// orchestration, checkpoint I/O, baseline diffing).
    CampaignRun = 18,
    /// One matrix cell's device simulation (worker thread; wraps the
    /// cell's scalar, SoA, or linked-chaos driver).
    CampaignCell = 19,
}

/// Number of distinct phases (size of per-slot child tables).
pub const PHASE_COUNT: usize = 20;

/// Every phase in enum (render) order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::FleetRun,
    Phase::ChaosRun,
    Phase::PolicyRun,
    Phase::DeviceRun,
    Phase::TraceStep,
    Phase::PolicyPlan,
    Phase::PlannerRollout,
    Phase::RuntimeTick,
    Phase::LinkStep,
    Phase::MicroStep,
    Phase::CurveEval,
    Phase::RcState,
    Phase::ChargeTransfer,
    Phase::GaugeUpdate,
    Phase::ObserverEmit,
    Phase::ReportMerge,
    Phase::SoaStep,
    Phase::FastForward,
    Phase::CampaignRun,
    Phase::CampaignCell,
];

impl Phase {
    /// Stable snake_case name used in every export surface (text tree,
    /// JSON, collapsed flamegraph stacks, `sdb_prof_*` gauge labels,
    /// and `sdb perf` phase-share metric keys).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::FleetRun => "fleet_run",
            Phase::ChaosRun => "chaos_run",
            Phase::PolicyRun => "policy_run",
            Phase::DeviceRun => "device_run",
            Phase::TraceStep => "trace_step",
            Phase::PolicyPlan => "policy_plan",
            Phase::PlannerRollout => "planner_rollout",
            Phase::RuntimeTick => "runtime_tick",
            Phase::LinkStep => "link_step",
            Phase::MicroStep => "micro_step",
            Phase::CurveEval => "curve_eval",
            Phase::RcState => "rc_state",
            Phase::ChargeTransfer => "charge_transfer",
            Phase::GaugeUpdate => "gauge_update",
            Phase::ObserverEmit => "observer_emit",
            Phase::ReportMerge => "report_merge",
            Phase::SoaStep => "soa_step",
            Phase::FastForward => "fast_forward",
            Phase::CampaignRun => "campaign_run",
            Phase::CampaignCell => "campaign_cell",
        }
    }

    pub(crate) fn from_index(i: usize) -> Phase {
        ALL_PHASES[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i, "discriminants must match array order");
            assert!(names.insert(p.name()), "duplicate name {}", p.name());
        }
        assert_eq!(names.len(), PHASE_COUNT);
    }
}
