//! Snapshot extraction and the four export surfaces.
//!
//! Every export splits the data the same way the fleet engine splits
//! `FleetReport` from `FleetRunStats`: call counts (and the phase tree
//! shape, cohort attribution) are deterministic — bit-identical at any
//! thread count — while nanosecond timings, sampled quantiles, and
//! per-shard attribution are wall-clock facts quarantined into a
//! separate section. The counts-only renderer and the flamegraph emit
//! *only* deterministic data, which is what CI `cmp`s across thread
//! counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::phase::{Phase, PHASE_COUNT};
use crate::table::{Slot, Table, NONE};
use crate::SAMPLE_EVERY;

/// One node of an extracted phase tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// The phase this node records.
    pub phase: Phase,
    /// Scope entries — deterministic.
    pub count: u64,
    /// Wall-clock-timed entries (1 in [`SAMPLE_EVERY`] for gated
    /// phases) — a wall fact.
    pub timed: u64,
    /// Sum of timed durations (ns) — a wall fact.
    pub total_ns: u64,
    /// Exact fastest timed duration (ns).
    pub min_ns: u64,
    /// Exact slowest timed duration (ns).
    pub max_ns: u64,
    /// Median timed duration (ns, sketch estimate).
    pub p50_ns: u64,
    /// 95th-percentile timed duration (ns, sketch estimate).
    pub p95_ns: u64,
    /// Child phases in enum order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Timed nanoseconds not attributed to a child phase. Children of a
    /// sampled step are timed on the same hot ticks as their parent, so
    /// within a step subtree self/total shares are consistent; an
    /// always-timed scope over sampled children over-reports self time
    /// by design (the untimed ticks' child work lands here).
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(child_ns)
    }

    /// The direct child recording `phase`, if present.
    #[must_use]
    pub fn child(&self, phase: Phase) -> Option<&PhaseNode> {
        self.children.iter().find(|c| c.phase == phase)
    }
}

/// A point-in-time extraction of the global aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The merged phase forest over every flushed thread, in phase
    /// order. Counts/shape deterministic; ns fields wall-clock.
    pub phases: Vec<PhaseNode>,
    /// Per-cohort forests, sorted by cohort name (deterministic).
    pub per_cohort: Vec<(String, Vec<PhaseNode>)>,
    /// Per-shard forests keyed by shard id — wall-clock facts (the
    /// shard → device assignment depends on the thread count).
    pub per_shard: Vec<(u16, Vec<PhaseNode>)>,
}

fn node_from(table: &Table, slot: &Slot) -> PhaseNode {
    let (p50, p95) = if slot.timed == 0 {
        (0, 0)
    } else {
        (
            slot.sketch.quantile(0.5) as u64,
            slot.sketch.quantile(0.95) as u64,
        )
    };
    let mut children = Vec::new();
    for pi in 0..PHASE_COUNT {
        let c = slot.children[pi];
        if c != NONE {
            children.push(node_from(table, &table.slots[c as usize]));
        }
    }
    PhaseNode {
        phase: slot.phase,
        count: slot.count,
        timed: slot.timed,
        total_ns: slot.total_ns,
        min_ns: slot.min_ns,
        max_ns: slot.max_ns,
        p50_ns: p50,
        p95_ns: p95,
        children,
    }
}

fn forest_from(table: &Table) -> Vec<PhaseNode> {
    let mut out = Vec::new();
    for pi in 0..PHASE_COUNT {
        let r = table.roots[pi];
        if r != NONE {
            out.push(node_from(table, &table.slots[r as usize]));
        }
    }
    out
}

pub(crate) fn snapshot_from(
    total: &Table,
    per_cohort: &BTreeMap<u16, Table>,
    per_shard: &BTreeMap<u16, Table>,
    cohorts: &[String],
) -> Snapshot {
    let mut named: Vec<(String, Vec<PhaseNode>)> = per_cohort
        .iter()
        .map(|(id, t)| {
            let name = cohorts
                .get(*id as usize)
                .cloned()
                .unwrap_or_else(|| format!("cohort-{id}"));
            (name, forest_from(t))
        })
        .collect();
    named.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        phases: forest_from(total),
        per_cohort: named,
        per_shard: per_shard
            .iter()
            .map(|(s, t)| (*s, forest_from(t)))
            .collect(),
    }
}

/// The node at `path` (root phase first) in the total forest.
impl Snapshot {
    /// Walks `path` (root phase first) through the total forest.
    #[must_use]
    pub fn find_path(&self, path: &[Phase]) -> Option<&PhaseNode> {
        let (first, rest) = path.split_first()?;
        let mut node = self.phases.iter().find(|n| n.phase == *first)?;
        for p in rest {
            node = node.child(*p)?;
        }
        Some(node)
    }

    /// Deterministic call-count tree: phase names, counts, and cohort
    /// attribution only. Byte-identical at any thread count — the file
    /// CI `cmp`s between `--threads 1` and `--threads 4`.
    #[must_use]
    pub fn render_counts(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "phase call tree (deterministic call counts)");
        counts_tree(&self.phases, &mut out);
        for (name, forest) in &self.per_cohort {
            let _ = writeln!(out, "cohort {name}:");
            counts_tree(forest, &mut out);
        }
        out
    }

    /// Full text report: the deterministic count tree plus a quarantined
    /// wall-clock section (sampled timings, per-shard attribution).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = self.render_counts();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "wall-clock section (sampled 1/{SAMPLE_EVERY}; varies run to run — quarantined \
             from the deterministic artifact)"
        );
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "phase", "timed", "total_ms", "self_ms", "min_us", "p50_us", "p95_us", "max_us"
        );
        wall_tree(&self.phases, 0, &mut out);
        for (shard, forest) in &self.per_shard {
            let _ = writeln!(out, "shard {shard}:");
            wall_tree(forest, 1, &mut out);
        }
        out
    }

    /// Canonical JSON: `deterministic` and `wall` top-level sections
    /// (stable key order; counts in `deterministic` are byte-identical
    /// at any thread count).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"deterministic\":{\"phases\":[");
        json_forest_counts(&self.phases, &mut out);
        out.push_str("],\"per_cohort\":[");
        for (i, (name, forest)) in self.per_cohort.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cohort\":\"{}\",\"phases\":[", escape(name));
            json_forest_counts(forest, &mut out);
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "]}},\"wall\":{{\"sample_every\":{SAMPLE_EVERY},\"phases\":["
        );
        json_forest_wall(&self.phases, &mut out);
        out.push_str("],\"per_shard\":[");
        for (i, (shard, forest)) in self.per_shard.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"shard\":{shard},\"phases\":[");
            json_forest_wall(forest, &mut out);
            out.push_str("]}");
        }
        out.push_str("]}}");
        out
    }

    /// Collapsed-stack flamegraph lines (`a;b;c value`), one line per
    /// phase path, valued by the deterministic call count — loadable by
    /// inferno / speedscope / flamegraph.pl, and byte-identical at any
    /// thread count.
    #[must_use]
    pub fn render_flame(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<&'static str> = Vec::new();
        flame_rec(&self.phases, &mut stack, &mut out);
        out
    }
}

fn counts_tree(nodes: &[PhaseNode], out: &mut String) {
    fn rec(nodes: &[PhaseNode], depth: usize, out: &mut String) {
        for n in nodes {
            let label = format!("{}{}", "  ".repeat(depth), n.phase.name());
            let _ = writeln!(out, "  {label:<32} {:>14}", n.count);
            rec(&n.children, depth + 1, out);
        }
    }
    rec(nodes, 0, out);
}

fn wall_tree(nodes: &[PhaseNode], depth: usize, out: &mut String) {
    for n in nodes {
        let label = format!("{}{}", "  ".repeat(depth), n.phase.name());
        let _ = writeln!(
            out,
            "{label:<34} {:>10} {:>12.3} {:>12.3} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            n.timed,
            n.total_ns as f64 / 1e6,
            n.self_ns() as f64 / 1e6,
            n.min_ns as f64 / 1e3,
            n.p50_ns as f64 / 1e3,
            n.p95_ns as f64 / 1e3,
            n.max_ns as f64 / 1e3,
        );
        wall_tree(&n.children, depth + 1, out);
    }
}

fn json_forest_counts(nodes: &[PhaseNode], out: &mut String) {
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"count\":{},\"children\":[",
            n.phase.name(),
            n.count
        );
        json_forest_counts(&n.children, out);
        out.push_str("]}");
    }
}

fn json_forest_wall(nodes: &[PhaseNode], out: &mut String) {
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"count\":{},\"timed\":{},\"total_ns\":{},\"self_ns\":{},\
             \"min_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{},\"children\":[",
            n.phase.name(),
            n.count,
            n.timed,
            n.total_ns,
            n.self_ns(),
            n.min_ns,
            n.p50_ns,
            n.p95_ns,
            n.max_ns
        );
        json_forest_wall(&n.children, out);
        out.push_str("]}");
    }
}

fn flame_rec(nodes: &[PhaseNode], stack: &mut Vec<&'static str>, out: &mut String) {
    for n in nodes {
        stack.push(n.phase.name());
        let _ = writeln!(out, "{} {}", stack.join(";"), n.count);
        flame_rec(&n.children, stack, out);
        stack.pop();
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut t = Table::with_capacity();
        let d = t.resolve(None, Phase::DeviceRun);
        t.slots[d as usize].count = 2;
        t.slots[d as usize].record_ns(5_000_000);
        let s = t.resolve(Some(d), Phase::TraceStep);
        t.slots[s as usize].count = 200;
        for i in 0..4u64 {
            t.slots[s as usize].record_ns(10_000 + i);
        }
        let m = t.resolve(Some(s), Phase::MicroStep);
        t.slots[m as usize].count = 200;
        t.slots[m as usize].record_ns(2_000);
        let mut per_cohort = BTreeMap::new();
        per_cohort.insert(1u16, t.clone());
        per_cohort.insert(0u16, t.clone());
        let mut per_shard = BTreeMap::new();
        per_shard.insert(0u16, t.clone());
        snapshot_from(
            &t,
            &per_cohort,
            &per_shard,
            &["watch".to_owned(), "phone".to_owned()],
        )
    }

    #[test]
    fn cohorts_render_sorted_by_name_not_id() {
        let snap = sample_snapshot();
        let names: Vec<&str> = snap.per_cohort.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["phone", "watch"]);
    }

    #[test]
    fn self_ns_subtracts_children() {
        let snap = sample_snapshot();
        let step = snap
            .find_path(&[Phase::DeviceRun, Phase::TraceStep])
            .unwrap();
        let micro = step.child(Phase::MicroStep).unwrap();
        assert_eq!(step.self_ns(), step.total_ns - micro.total_ns);
    }

    #[test]
    fn flame_lines_are_full_stacks_with_counts() {
        let snap = sample_snapshot();
        let flame = snap.render_flame();
        let lines: Vec<&str> = flame.lines().collect();
        assert_eq!(
            lines,
            vec![
                "device_run 2",
                "device_run;trace_step 200",
                "device_run;trace_step;micro_step 200",
            ]
        );
    }

    #[test]
    fn json_has_deterministic_and_wall_sections() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"deterministic\":"));
        assert!(json.contains("\"wall\":{\"sample_every\":"));
        assert!(json.contains("\"phase\":\"micro_step\""));
        assert!(json.contains("\"per_cohort\":[{\"cohort\":\"phone\""));
        assert!(json.contains("\"per_shard\":[{\"shard\":0"));
        // Counts section carries no nanosecond fields.
        let det = &json[..json.find("\"wall\"").unwrap()];
        assert!(!det.contains("total_ns"));
    }

    #[test]
    fn counts_render_excludes_wall_facts() {
        let snap = sample_snapshot();
        let counts = snap.render_counts();
        assert!(counts.contains("trace_step"));
        assert!(!counts.contains("shard"));
        assert!(!counts.contains("ms"));
        let text = snap.render_text();
        assert!(text.contains("wall-clock section"));
        assert!(text.contains("shard 0:"));
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
