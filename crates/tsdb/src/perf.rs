//! The longitudinal perf-regression gate behind `sdb perf`.
//!
//! `cargo bench` runs (`sdb-bench` writes `BENCH_micro.json` /
//! `BENCH_fleet.json`) are point-in-time facts; this module gives them a
//! memory. [`ingest`] parses the bench files into a flat list of named
//! metrics; [`HistoryEntry`] serializes one run as a single JSONL line
//! appended to a committed history file; [`check`] compares the newest
//! run against a baseline drawn from that history and reports any metric
//! that regressed past a threshold (default 10%).
//!
//! Wall-clock discipline: the entry's `recorded_at_unix_s` stamp is
//! supplied by the caller (the CLI passes real time; tests pass fixed
//! values), so this module itself stays deterministic and the stamp is
//! quarantined exactly like `FleetRunStats` wall-clock facts — it never
//! influences a comparison, only labels history lines for humans.

use sdb_trace::json::{self, Value};

/// Which direction is better for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latency: `ns_per_step`, `wall_s`).
    LowerIsBetter,
    /// Larger is better (throughput: `devices_per_sec`, `speedup`).
    HigherIsBetter,
}

/// One bench metric extracted from a bench results file.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMetric {
    /// Stable metric key, e.g. `micro_step.b4.ns_per_step`.
    pub key: String,
    /// Measured value.
    pub value: f64,
    /// Which way improvement points.
    pub direction: Direction,
}

/// One recorded bench run: a stamp plus its metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Wall-clock stamp (unix seconds) supplied by the caller; label
    /// only, never compared.
    pub recorded_at_unix_s: u64,
    /// Free-form label (git describe, CI run id, "local").
    pub label: String,
    /// The run's metrics.
    pub metrics: Vec<PerfMetric>,
}

/// One regression found by [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The metric that regressed.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Fractional cost increase (0.10 = 10% worse).
    pub worse_by: f64,
}

/// Parses one bench results document (`BENCH_micro.json` or
/// `BENCH_fleet.json`) into metrics.
///
/// # Errors
///
/// Returns a description when the document is not valid JSON or not a
/// known bench shape.
pub fn ingest(text: &str) -> Result<Vec<PerfMetric>, String> {
    let doc = json::parse(text)?;
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("missing bench field")?;
    match bench {
        "micro_step" => {
            let packs = doc
                .get("packs")
                .and_then(Value::as_arr)
                .ok_or("micro_step without packs")?;
            let mut out = Vec::new();
            for p in packs {
                let b = p
                    .get("batteries")
                    .and_then(Value::as_u64)
                    .ok_or("pack without batteries")?;
                let ns = p
                    .get("ns_per_step")
                    .and_then(Value::as_f64)
                    .ok_or("pack without ns_per_step")?;
                out.push(PerfMetric {
                    key: format!("micro_step.b{b}.ns_per_step"),
                    value: ns,
                    direction: Direction::LowerIsBetter,
                });
            }
            if let Some(allocs) = doc.get("allocs_per_step_max").and_then(Value::as_f64) {
                out.push(PerfMetric {
                    key: "micro_step.allocs_per_step_max".to_owned(),
                    value: allocs,
                    direction: Direction::LowerIsBetter,
                });
            }
            // Optional: the policy_plan bench merges its ns/plan (and the
            // warm-rollout allocation gate) into the same document (older
            // artifacts won't carry them).
            if let Some(pp) = doc.get("policy_plan") {
                if let Some(ns) = pp.get("ns_per_plan").and_then(Value::as_f64) {
                    out.push(PerfMetric {
                        key: "micro_step.policy_plan.ns_per_plan".to_owned(),
                        value: ns,
                        direction: Direction::LowerIsBetter,
                    });
                }
                if let Some(a) = pp.get("allocs_per_rollout").and_then(Value::as_f64) {
                    out.push(PerfMetric {
                        key: "micro_step.policy_plan.allocs_per_rollout".to_owned(),
                        value: a,
                        direction: Direction::LowerIsBetter,
                    });
                }
            }
            // Optional: the SoA fast-forward cycle cost (older artifacts
            // won't carry it).
            if let Some(ns) = doc
                .get("soa_step")
                .and_then(|s| s.get("ns_per_tick"))
                .and_then(Value::as_f64)
            {
                out.push(PerfMetric {
                    key: "micro_step.soa_step.ns_per_tick".to_owned(),
                    value: ns,
                    direction: Direction::LowerIsBetter,
                });
            }
            // Optional: the profiler-overhead pair (older artifacts won't
            // carry it). Phase shares gate each instrumented sub-phase's
            // fraction of micro-step time, so a single phase regressing
            // trips the gate even when the total ns/step stays flat.
            if let Some(prof) = doc.get("prof") {
                if let Some(pct) = prof.get("overhead_pct").and_then(Value::as_f64) {
                    out.push(PerfMetric {
                        key: "micro_step.prof.overhead_pct".to_owned(),
                        value: pct,
                        direction: Direction::LowerIsBetter,
                    });
                }
                if let Some(shares) = prof.get("phase_share").and_then(Value::as_obj) {
                    for (phase, v) in shares {
                        if let Some(pct) = v.as_f64() {
                            out.push(PerfMetric {
                                key: format!("micro_step.phase_share.{phase}"),
                                value: pct,
                                direction: Direction::LowerIsBetter,
                            });
                        }
                    }
                }
            }
            Ok(out)
        }
        "fleet_scaling" => {
            let threads = doc
                .get("threads")
                .and_then(Value::as_arr)
                .ok_or("fleet_scaling without threads")?;
            let mut out = Vec::new();
            for t in threads {
                let n = t
                    .get("threads")
                    .and_then(Value::as_u64)
                    .ok_or("entry without threads")?;
                let dps = t
                    .get("devices_per_sec")
                    .and_then(Value::as_f64)
                    .ok_or("entry without devices_per_sec")?;
                out.push(PerfMetric {
                    key: format!("fleet.t{n}.devices_per_sec"),
                    value: dps,
                    direction: Direction::HigherIsBetter,
                });
            }
            // Optional: the scalar-vs-SoA engine head-to-head (older
            // artifacts won't carry it). Throughput and speedup are
            // higher-is-better; the fast-forward fraction is tracked as a
            // coverage metric (a drop means the quiescence classifier
            // started rejecting lanes it used to accept).
            if let Some(soa) = doc.get("soa") {
                for (section, label) in [
                    ("quiescent", "quiescent"),
                    ("default_population", "default"),
                ] {
                    let Some(s) = soa.get(section) else { continue };
                    if let Some(dps) = s.get("soa_devices_per_sec").and_then(Value::as_f64) {
                        out.push(PerfMetric {
                            key: format!("fleet.soa.{label}.devices_per_sec"),
                            value: dps,
                            direction: Direction::HigherIsBetter,
                        });
                    }
                    if let Some(sp) = s.get("soa_speedup").and_then(Value::as_f64) {
                        out.push(PerfMetric {
                            key: format!("fleet.soa.{label}.speedup"),
                            value: sp,
                            direction: Direction::HigherIsBetter,
                        });
                    }
                    if let Some(ff) = s.get("ff_tick_fraction").and_then(Value::as_f64) {
                        out.push(PerfMetric {
                            key: format!("fleet.soa.{label}.ff_tick_fraction"),
                            value: ff,
                            direction: Direction::HigherIsBetter,
                        });
                    }
                }
            }
            Ok(out)
        }
        "campaign" => {
            // `sdb campaign --bench-out` throughput facts: how fast the
            // matrix orchestrator chews through cells and device sims.
            // Wall-clock stays quarantined in the bench file; only the
            // derived rates enter the longitudinal gate.
            let mut out = Vec::new();
            for (field, key) in [
                ("cells_per_sec", "campaign.cells_per_sec"),
                ("devices_per_sec", "campaign.devices_per_sec"),
            ] {
                if let Some(v) = doc.get(field).and_then(Value::as_f64) {
                    out.push(PerfMetric {
                        key: key.to_owned(),
                        value: v,
                        direction: Direction::HigherIsBetter,
                    });
                }
            }
            if out.is_empty() {
                return Err("campaign bench without throughput fields".to_owned());
            }
            Ok(out)
        }
        other => Err(format!("unknown bench kind {other:?}")),
    }
}

impl HistoryEntry {
    /// Serializes the entry as one JSONL line (no trailing newline):
    /// `{"recorded_at_unix_s":..,"label":..,"metrics":[{"key":..,"value":..,"dir":"lower"|"higher"},..]}`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"recorded_at_unix_s\":{},\"label\":\"{}\",\"metrics\":[",
            self.recorded_at_unix_s,
            escape(&self.label)
        );
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"value\":{},\"dir\":\"{}\"}}",
                escape(&m.key),
                fmt_f64(m.value),
                match m.direction {
                    Direction::LowerIsBetter => "lower",
                    Direction::HigherIsBetter => "higher",
                }
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses one JSONL line produced by [`HistoryEntry::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_jsonl(line: &str) -> Result<Self, String> {
        let doc = json::parse(line)?;
        let recorded_at_unix_s = doc
            .get("recorded_at_unix_s")
            .and_then(Value::as_u64)
            .ok_or("missing recorded_at_unix_s")?;
        let label = doc
            .get("label")
            .and_then(Value::as_str)
            .ok_or("missing label")?
            .to_owned();
        let mut metrics = Vec::new();
        for m in doc
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or("missing metrics")?
        {
            let key = m
                .get("key")
                .and_then(Value::as_str)
                .ok_or("metric without key")?
                .to_owned();
            let value = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("metric without value")?;
            let direction = match m.get("dir").and_then(Value::as_str) {
                Some("lower") => Direction::LowerIsBetter,
                Some("higher") => Direction::HigherIsBetter,
                _ => return Err("metric without dir".to_owned()),
            };
            metrics.push(PerfMetric {
                key,
                value,
                direction,
            });
        }
        Ok(Self {
            recorded_at_unix_s,
            label,
            metrics,
        })
    }
}

/// Parses a whole history file (one JSONL entry per line, blank lines and
/// `#` comments skipped), oldest first.
///
/// # Errors
///
/// Returns the line number and parse error of the first bad line.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(
            HistoryEntry::from_jsonl(line).map_err(|e| format!("history line {}: {e}", i + 1))?,
        );
    }
    Ok(out)
}

/// How [`check`] picks its baseline from history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// The most recent history entry (default: catches drift step by
    /// step).
    Last,
    /// Per metric, the best value ever recorded (strictest: catches slow
    /// cumulative drift).
    Best,
}

/// The fractional cost increase of `current` over `baseline` for the
/// metric's direction; positive means worse.
#[must_use]
pub fn cost_increase(direction: Direction, baseline: f64, current: f64) -> f64 {
    match direction {
        // Guard against zero/negative baselines (e.g. allocs_per_step 0):
        // treat any increase from a <= 0 baseline as its absolute value.
        Direction::LowerIsBetter => {
            if baseline > 0.0 {
                current / baseline - 1.0
            } else {
                current.max(0.0)
            }
        }
        Direction::HigherIsBetter => {
            if current > 0.0 {
                baseline / current - 1.0
            } else if baseline > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        }
    }
}

/// Compares `current` metrics against history and returns every metric
/// whose cost grew past `threshold` (0.10 = 10%). Metrics with no
/// baseline (first appearance) pass. An empty history passes everything.
#[must_use]
pub fn check(
    history: &[HistoryEntry],
    current: &[PerfMetric],
    baseline: Baseline,
    threshold: f64,
) -> Vec<Regression> {
    let baseline_of = |m: &PerfMetric| -> Option<f64> {
        match baseline {
            Baseline::Last => history
                .iter()
                .rev()
                .find_map(|e| e.metrics.iter().find(|h| h.key == m.key))
                .map(|h| h.value),
            Baseline::Best => {
                let mut best: Option<f64> = None;
                for h in history
                    .iter()
                    .flat_map(|e| &e.metrics)
                    .filter(|h| h.key == m.key)
                {
                    best = Some(match (best, m.direction) {
                        (None, _) => h.value,
                        (Some(b), Direction::LowerIsBetter) => b.min(h.value),
                        (Some(b), Direction::HigherIsBetter) => b.max(h.value),
                    });
                }
                best
            }
        }
    };
    let mut regressions = Vec::new();
    for m in current {
        let Some(base) = baseline_of(m) else { continue };
        let worse_by = cost_increase(m.direction, base, m.value);
        if worse_by > threshold {
            regressions.push(Regression {
                key: m.key.clone(),
                baseline: base,
                current: m.value,
                worse_by,
            });
        }
    }
    regressions
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICRO: &str = r#"{"bench":"micro_step","steps_per_call":100,"packs":[{"batteries":2,"ns_per_step":240.0,"steps_per_sec":4166666.0,"allocs_per_step":0.0},{"batteries":8,"ns_per_step":600.0,"steps_per_sec":1666666.0,"allocs_per_step":0.0}],"allocs_per_step_max":0.0,"host_cpus":1}"#;
    const FLEET: &str = r#"{"bench":"fleet_scaling","devices":512,"threads":[{"threads":1,"wall_s":0.07,"devices_per_sec":7000.0},{"threads":8,"wall_s":0.068,"devices_per_sec":7400.0}],"host_cpus":1}"#;

    fn entry(stamp: u64, metrics: Vec<PerfMetric>) -> HistoryEntry {
        HistoryEntry {
            recorded_at_unix_s: stamp,
            label: "test".to_owned(),
            metrics,
        }
    }

    #[test]
    fn ingest_both_bench_shapes() {
        let micro = ingest(MICRO).expect("micro parses");
        assert_eq!(micro.len(), 3);
        assert_eq!(micro[0].key, "micro_step.b2.ns_per_step");
        assert_eq!(micro[0].value, 240.0);
        assert_eq!(micro[0].direction, Direction::LowerIsBetter);
        let fleet = ingest(FLEET).expect("fleet parses");
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[1].key, "fleet.t8.devices_per_sec");
        assert_eq!(fleet[1].direction, Direction::HigherIsBetter);
        assert!(ingest("{\"bench\":\"mystery\"}").is_err());
        assert!(ingest("not json").is_err());
    }

    #[test]
    fn ingest_parses_campaign_throughput() {
        let doc = r#"{"bench":"campaign","cells":48,"devices":96,"threads":4,"wall_s":1.5,"cells_per_sec":32.0,"devices_per_sec":64.0,"host_cpus":8}"#;
        let metrics = ingest(doc).expect("campaign bench parses");
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].key, "campaign.cells_per_sec");
        assert_eq!(metrics[0].value, 32.0);
        assert_eq!(metrics[0].direction, Direction::HigherIsBetter);
        assert_eq!(metrics[1].key, "campaign.devices_per_sec");
        // A campaign document without any rate is malformed.
        assert!(ingest(r#"{"bench":"campaign","cells":48}"#).is_err());
    }

    #[test]
    fn ingest_picks_up_merged_policy_plan_entry() {
        let merged = MICRO.replace(
            ",\"host_cpus\"",
            ",\"policy_plan\":{\"ns_per_plan\":123456.0},\"host_cpus\"",
        );
        let metrics = ingest(&merged).expect("merged micro parses");
        let pp = metrics
            .iter()
            .find(|m| m.key == "micro_step.policy_plan.ns_per_plan")
            .expect("policy_plan metric ingested");
        assert_eq!(pp.value, 123_456.0);
        assert_eq!(pp.direction, Direction::LowerIsBetter);
        // Absent from older artifacts → simply not emitted.
        assert_eq!(ingest(MICRO).expect("parses").len(), 3);
    }

    #[test]
    fn ingest_picks_up_soa_step_and_rollout_alloc_metrics() {
        let merged = MICRO.replace(
            ",\"host_cpus\"",
            ",\"policy_plan\":{\"ns_per_plan\":123456.0,\"allocs_per_rollout\":0.0},\
             \"soa_step\":{\"ns_per_tick\":9.4,\"ff_fraction\":0.98},\"host_cpus\"",
        );
        let metrics = ingest(&merged).expect("merged micro parses");
        let soa = metrics
            .iter()
            .find(|m| m.key == "micro_step.soa_step.ns_per_tick")
            .expect("soa_step metric ingested");
        assert_eq!(soa.value, 9.4);
        assert_eq!(soa.direction, Direction::LowerIsBetter);
        let allocs = metrics
            .iter()
            .find(|m| m.key == "micro_step.policy_plan.allocs_per_rollout")
            .expect("rollout alloc metric ingested");
        assert_eq!(allocs.value, 0.0);
        assert_eq!(allocs.direction, Direction::LowerIsBetter);
        // Absent from older artifacts → simply not emitted.
        assert!(!ingest(MICRO)
            .expect("parses")
            .iter()
            .any(|m| m.key.starts_with("micro_step.soa_step")));
    }

    #[test]
    fn ingest_picks_up_soa_engine_head_to_head() {
        let merged = FLEET.replace(
            ",\"host_cpus\"",
            ",\"soa\":{\"devices\":512,\"threads\":8,\"quiescent\":{\"trace_hours\":8.0,\
             \"scalar_devices_per_sec\":1400.0,\"soa_devices_per_sec\":22000.0,\
             \"ff_tick_fraction\":0.97,\"soa_speedup\":15.7,\"soa_ge_3x\":true},\
             \"default_population\":{\"trace_hours\":2.0,\"scalar_devices_per_sec\":4800.0,\
             \"soa_devices_per_sec\":8700.0,\"ff_tick_fraction\":0.44,\"soa_speedup\":1.8}},\
             \"host_cpus\"",
        );
        let metrics = ingest(&merged).expect("merged fleet parses");
        let dps = metrics
            .iter()
            .find(|m| m.key == "fleet.soa.quiescent.devices_per_sec")
            .expect("quiescent throughput ingested");
        assert_eq!(dps.value, 22000.0);
        assert_eq!(dps.direction, Direction::HigherIsBetter);
        let sp = metrics
            .iter()
            .find(|m| m.key == "fleet.soa.default.speedup")
            .expect("default-population speedup ingested");
        assert_eq!(sp.value, 1.8);
        let ff = metrics
            .iter()
            .find(|m| m.key == "fleet.soa.quiescent.ff_tick_fraction")
            .expect("ff fraction ingested");
        assert_eq!(ff.value, 0.97);
        assert_eq!(ff.direction, Direction::HigherIsBetter);
        // Absent from older artifacts → simply not emitted.
        assert!(!ingest(FLEET)
            .expect("parses")
            .iter()
            .any(|m| m.key.starts_with("fleet.soa")));
    }

    #[test]
    fn ingest_picks_up_prof_overhead_and_phase_shares() {
        let merged = MICRO.replace(
            ",\"host_cpus\"",
            ",\"prof\":{\"pack\":8,\"sample_every\":128,\"overhead_pct\":1.9,\
             \"profiled_allocs_per_step\":0.0,\"phase_share\":{\"curve_eval\":1.5,\
             \"observer_emit\":3.0}},\"host_cpus\"",
        );
        let metrics = ingest(&merged).expect("merged micro parses");
        let overhead = metrics
            .iter()
            .find(|m| m.key == "micro_step.prof.overhead_pct")
            .expect("overhead ingested");
        assert_eq!(overhead.value, 1.9);
        assert_eq!(overhead.direction, Direction::LowerIsBetter);
        let emit = metrics
            .iter()
            .find(|m| m.key == "micro_step.phase_share.observer_emit")
            .expect("phase share ingested");
        assert_eq!(emit.value, 3.0);
        assert_eq!(emit.direction, Direction::LowerIsBetter);
        // Absent from older artifacts → simply not emitted.
        assert!(!ingest(MICRO)
            .expect("parses")
            .iter()
            .any(|m| m.key.starts_with("micro_step.prof")));
    }

    #[test]
    fn phase_share_regression_trips_the_gate_when_totals_stay_flat() {
        // Baseline: observer emit at 3% of sampled step self-time, total
        // ns/step 240. Current: emit ballooned 1.5x to 4.5% while the
        // total stayed flat — the per-phase metric must trip the gate on
        // its own.
        let share = |v: f64| PerfMetric {
            key: "micro_step.phase_share.observer_emit".to_owned(),
            value: v,
            direction: Direction::LowerIsBetter,
        };
        let total = |v: f64| PerfMetric {
            key: "micro_step.b8.ns_per_step".to_owned(),
            value: v,
            direction: Direction::LowerIsBetter,
        };
        let history = vec![entry(1, vec![total(240.0), share(3.0)])];
        let current = vec![total(240.0), share(4.5)];
        let regs = check(&history, &current, Baseline::Best, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "micro_step.phase_share.observer_emit");
        assert!((regs[0].worse_by - 0.5).abs() < 1e-12);
    }

    #[test]
    fn history_jsonl_round_trips() {
        let e = entry(1_700_000_000, ingest(MICRO).expect("parses"));
        let line = e.to_jsonl();
        assert!(!line.contains('\n'));
        let back = HistoryEntry::from_jsonl(&line).expect("round trips");
        assert_eq!(back, e);
        let text = format!("# comment\n{line}\n\n{line}\n");
        assert_eq!(parse_history(&text).expect("file parses").len(), 2);
        assert!(parse_history("junk\n").is_err());
    }

    #[test]
    fn check_flags_only_past_threshold_regressions() {
        let history = vec![entry(1, ingest(MICRO).expect("parses"))];
        // 5% slower: under the 10% gate.
        let ok = vec![PerfMetric {
            key: "micro_step.b2.ns_per_step".into(),
            value: 252.0,
            direction: Direction::LowerIsBetter,
        }];
        assert!(check(&history, &ok, Baseline::Last, 0.10).is_empty());
        // 20% slower: flagged with the right magnitude.
        let bad = vec![PerfMetric {
            key: "micro_step.b2.ns_per_step".into(),
            value: 288.0,
            direction: Direction::LowerIsBetter,
        }];
        let regs = check(&history, &bad, Baseline::Last, 0.10);
        assert_eq!(regs.len(), 1);
        assert!((regs[0].worse_by - 0.20).abs() < 1e-12);
        // Unknown metric and empty history both pass.
        let novel = vec![PerfMetric {
            key: "new.metric".into(),
            value: 1.0,
            direction: Direction::LowerIsBetter,
        }];
        assert!(check(&history, &novel, Baseline::Last, 0.10).is_empty());
        assert!(check(&[], &bad, Baseline::Last, 0.10).is_empty());
    }

    #[test]
    fn throughput_direction_inverts_the_comparison() {
        let history = vec![entry(1, ingest(FLEET).expect("parses"))];
        // Throughput dropped 20%: cost rose 25% (7000/5600 - 1).
        let bad = vec![PerfMetric {
            key: "fleet.t1.devices_per_sec".into(),
            value: 5600.0,
            direction: Direction::HigherIsBetter,
        }];
        let regs = check(&history, &bad, Baseline::Last, 0.10);
        assert_eq!(regs.len(), 1);
        assert!((regs[0].worse_by - 0.25).abs() < 1e-12);
        // Throughput rose: no regression.
        let good = vec![PerfMetric {
            key: "fleet.t1.devices_per_sec".into(),
            value: 9000.0,
            direction: Direction::HigherIsBetter,
        }];
        assert!(check(&history, &good, Baseline::Last, 0.10).is_empty());
    }

    #[test]
    fn best_baseline_catches_cumulative_drift() {
        // Three runs each 6% slower than the last: Last-baseline passes,
        // Best-baseline catches the compound drift.
        let mk = |v: f64| {
            vec![PerfMetric {
                key: "micro_step.b2.ns_per_step".into(),
                value: v,
                direction: Direction::LowerIsBetter,
            }]
        };
        let history = vec![
            entry(1, mk(240.0)),
            entry(2, mk(254.4)),
            entry(3, mk(269.7)),
        ];
        let current = mk(285.9);
        assert!(check(&history, &current, Baseline::Last, 0.10).is_empty());
        let regs = check(&history, &current, Baseline::Best, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 240.0);
    }

    #[test]
    fn zero_baseline_allocs_metric_is_guarded() {
        assert_eq!(cost_increase(Direction::LowerIsBetter, 0.0, 0.0), 0.0);
        assert!(cost_increase(Direction::LowerIsBetter, 0.0, 2.0) > 0.10);
        assert_eq!(cost_increase(Direction::HigherIsBetter, 0.0, 0.0), 0.0);
        assert_eq!(
            cost_increase(Direction::HigherIsBetter, 5.0, 0.0),
            f64::INFINITY
        );
    }
}
