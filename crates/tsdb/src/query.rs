//! Typed queries over a [`TsdbStore`] and their JSON wire rendering.
//!
//! Four query kinds cover the serving surface:
//!
//! * [`QueryKind::Range`] — raw samples in a time window.
//! * [`QueryKind::Rate`] — per-second derivative between consecutive raw
//!   samples (the usual counter/gauge slope view).
//! * [`QueryKind::Quantile`] — one exact nearest-rank quantile over the
//!   raw samples in the window (one output point per series).
//! * [`QueryKind::RollupQuantile`] — per-bucket sketch quantiles from a
//!   downsampled tier; cheap over long horizons, accurate to the
//!   sketch's relative-error bound.
//!
//! Everything here is pure computation over the store; HTTP parsing
//! lives in [`crate::http`].

use crate::store::{Tier, TsdbStore};

/// What to compute over the selected series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// Raw samples.
    Range,
    /// Per-second slope between consecutive raw samples, stamped at the
    /// later sample.
    Rate,
    /// One exact nearest-rank quantile (`0.0..=1.0`) over the window's
    /// raw samples.
    Quantile(f64),
    /// Per-bucket sketch quantile from a rollup tier, stamped at each
    /// bucket start.
    RollupQuantile(Tier, f64),
}

/// A query: metric name, label matchers, window, and kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Metric name to select.
    pub name: String,
    /// Label equality matchers; all must be present on a series.
    pub matchers: Vec<(String, String)>,
    /// Window start, microseconds (inclusive).
    pub t0_us: i64,
    /// Window end, microseconds (inclusive).
    pub t1_us: i64,
    /// Computation to run.
    pub kind: QueryKind,
}

impl Query {
    /// A whole-history range query with no matchers.
    #[must_use]
    pub fn range_all(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            matchers: Vec::new(),
            t0_us: i64::MIN,
            t1_us: i64::MAX,
            kind: QueryKind::Range,
        }
    }
}

/// One output series: the id's labels plus `(t_us, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoints {
    /// Metric name.
    pub name: String,
    /// Label pairs (canonical sorted order).
    pub labels: Vec<(String, String)>,
    /// Output points.
    pub points: Vec<(i64, f64)>,
}

/// The result of [`run`]: one entry per matched series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Matched series with their computed points.
    pub series: Vec<SeriesPoints>,
}

impl QueryResult {
    /// Renders the result as a JSON document:
    /// `{"series":[{"name":..,"labels":{..},"points":[[t_us,v],..]},..]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&escape(&s.name));
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\":\"");
                out.push_str(&escape(v));
                out.push('"');
            }
            out.push_str("},\"points\":[");
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&t.to_string());
                out.push(',');
                out.push_str(&fmt_json_f64(*v));
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Inf literals; spell them as null per common practice.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Exact nearest-rank quantile of `values` (not assumed sorted).
fn nearest_rank(values: &mut [f64], q: f64) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    let n = values.len();
    let k = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    values[k - 1]
}

/// Executes `query` against `store`.
#[must_use]
pub fn run(store: &TsdbStore, query: &Query) -> QueryResult {
    let mut result = QueryResult::default();
    match query.kind {
        QueryKind::Range | QueryKind::Rate | QueryKind::Quantile(_) => {
            for (id, samples) in
                store.select(&query.name, &query.matchers, query.t0_us, query.t1_us)
            {
                let points = match query.kind {
                    QueryKind::Range => samples.iter().map(|s| (s.t_us, s.value)).collect(),
                    QueryKind::Rate => samples
                        .windows(2)
                        .filter(|w| w[1].t_us > w[0].t_us)
                        .map(|w| {
                            let dt_s = (w[1].t_us - w[0].t_us) as f64 * 1e-6;
                            (w[1].t_us, (w[1].value - w[0].value) / dt_s)
                        })
                        .collect(),
                    QueryKind::Quantile(q) => {
                        let mut values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                        if values.is_empty() {
                            Vec::new()
                        } else {
                            let t = samples.last().map_or(0, |s| s.t_us);
                            vec![(t, nearest_rank(&mut values, q))]
                        }
                    }
                    QueryKind::RollupQuantile(..) => unreachable!("handled below"),
                };
                result.series.push(SeriesPoints {
                    name: id.name,
                    labels: id.labels,
                    points,
                });
            }
        }
        QueryKind::RollupQuantile(tier, q) => {
            for (id, buckets) in
                store.select_rollup(&query.name, &query.matchers, tier, query.t0_us, query.t1_us)
            {
                let points = buckets
                    .iter()
                    .filter(|b| b.count > 0)
                    .map(|b| (b.start_us, b.sketch.quantile(q)))
                    .collect();
                result.series.push(SeriesPoints {
                    name: id.name,
                    labels: id.labels,
                    points,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesId;

    fn seeded_store() -> TsdbStore {
        let store = TsdbStore::default();
        let sid = SeriesId::new("sdb_supplied_w", &[("device", "d0")]);
        // Linear ramp at 1 Hz: value = 2 * t_seconds.
        for i in 0..60i64 {
            store.append(&sid, i * 1_000_000, 2.0 * i as f64);
        }
        store
    }

    #[test]
    fn range_query_returns_samples() {
        let store = seeded_store();
        let r = run(&store, &Query::range_all("sdb_supplied_w"));
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].points.len(), 60);
        assert_eq!(r.series[0].labels, vec![("device".into(), "d0".into())]);
    }

    #[test]
    fn rate_is_the_per_second_slope() {
        let store = seeded_store();
        let r = run(
            &store,
            &Query {
                kind: QueryKind::Rate,
                ..Query::range_all("sdb_supplied_w")
            },
        );
        let points = &r.series[0].points;
        assert_eq!(points.len(), 59);
        for (_, v) in points {
            assert!((v - 2.0).abs() < 1e-12, "slope should be 2.0, got {v}");
        }
    }

    #[test]
    fn quantile_is_exact_nearest_rank() {
        let store = seeded_store();
        let r = run(
            &store,
            &Query {
                kind: QueryKind::Quantile(0.5),
                ..Query::range_all("sdb_supplied_w")
            },
        );
        // Values 0,2,..,118; nearest-rank p50 of 60 values is the 30th → 58.
        assert_eq!(r.series[0].points, vec![(59_000_000, 58.0)]);
    }

    #[test]
    fn rollup_quantile_emits_one_point_per_bucket() {
        let store = seeded_store();
        let r = run(
            &store,
            &Query {
                kind: QueryKind::RollupQuantile(Tier::Coarse10s, 0.95),
                ..Query::range_all("sdb_supplied_w")
            },
        );
        // 60 s at 1 Hz → buckets at 0,10,..,50 s.
        let points = &r.series[0].points;
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].0, 0);
        assert_eq!(points[5].0, 50_000_000);
    }

    #[test]
    fn json_rendering_is_wellformed_and_escapes() {
        let result = QueryResult {
            series: vec![SeriesPoints {
                name: "m\"x".into(),
                labels: vec![("k".into(), "v\\".into())],
                points: vec![(1, 2.5), (2, f64::NAN)],
            }],
        };
        let json = result.to_json();
        assert_eq!(
            json,
            "{\"series\":[{\"name\":\"m\\\"x\",\"labels\":{\"k\":\"v\\\\\"},\"points\":[[1,2.5],[2,null]]}]}"
        );
        // Round-trips through the in-repo parser.
        let v = sdb_trace::json::parse(&json).expect("parses");
        let series = v.get("series").and_then(|s| s.as_arr()).expect("series");
        assert_eq!(series.len(), 1);
    }

    #[test]
    fn empty_window_yields_empty_points() {
        let store = seeded_store();
        let r = run(
            &store,
            &Query {
                t0_us: 10_000_000_000,
                t1_us: 20_000_000_000,
                ..Query::range_all("sdb_supplied_w")
            },
        );
        assert_eq!(r.series.len(), 1);
        assert!(r.series[0].points.is_empty());
        let rq = run(
            &store,
            &Query {
                t0_us: 10_000_000_000,
                t1_us: 20_000_000_000,
                kind: QueryKind::Quantile(0.9),
                ..Query::range_all("sdb_supplied_w")
            },
        );
        assert!(rq.series[0].points.is_empty());
    }
}
