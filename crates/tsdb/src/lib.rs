//! sdb-tsdb — an embedded, zero-dependency time-series telemetry store.
//!
//! This crate is the longitudinal memory of the SDB stack. Where
//! `sdb-observe` answers "what is happening right now" (live counters,
//! gauges, sketches, flight-recorder events), `sdb-tsdb` answers "what
//! happened over time" — it ingests those same metric identities as
//! timestamped samples, compresses them with the Gorilla codec
//! (delta-of-delta timestamps + XOR floats, Pelkonen et al., VLDB 2015),
//! bounds memory with ring retention and tiered downsampling, and serves
//! the result over a hand-rolled HTTP/1.1 surface.
//!
//! Layers, bottom to top:
//!
//! * [`gorilla`] — the bit-level codec: [`gorilla::ChunkEncoder`] /
//!   [`gorilla::CompressedChunk`]. Bit-exact round trips, graceful
//!   errors on truncated streams.
//! * [`store`] — [`store::TsdbStore`]: labeled series, sealed-chunk
//!   rings, 10 s / 5 min rollup tiers carrying `QuantileSketch`es.
//! * [`query`] — typed range/rate/quantile queries over the store and a
//!   JSON rendering for the wire.
//! * [`sink`] — ingestion adapters: replay captured `DeviceEvent`s,
//!   attach as a live `EventSink`, or scrape a `MetricsRegistry`.
//! * [`http`] — the blocking HTTP/1.1 listener behind `sdb serve`:
//!   `/metrics`, `/query`, `/healthz`, `/shutdown`.
//! * [`perf`] — the longitudinal perf-regression gate behind `sdb perf`:
//!   BENCH_*.json ingestion, history file, baseline comparison.
//!
//! Determinism: simulation-time samples are quantized to integer
//! microseconds at the boundary and everything downstream is exact
//! integer/bit arithmetic, so store contents derived from a fleet run
//! are identical at any thread count. Wall-clock stamps (live scraping,
//! perf history entries) are quarantined the same way `FleetRunStats`
//! quarantines wall-clock facts: they never feed a deterministic
//! artifact.

pub mod gorilla;
pub mod http;
pub mod perf;
pub mod query;
pub mod sink;
pub mod store;

pub use http::{serve, BuildInfo, ServeHandle, ServeOptions};
pub use query::{Query, QueryKind, QueryResult};
pub use sink::{ingest_events, RegistryScraper, TelemetrySink, TELEMETRY_MANTISSA_BITS};
pub use store::{
    quantize, secs_to_us, RetentionConfig, RollupBucket, Sample, SeriesId, StoreStats, Tier,
    TsdbStore,
};
