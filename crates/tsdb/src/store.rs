//! The embedded telemetry store: labeled series, Gorilla-compressed raw
//! chunks, ring-bounded retention, and tiered downsampling.
//!
//! One [`TsdbStore`] holds many series keyed by `(name, sorted labels)` —
//! the same identities the [`sdb_observe::MetricsRegistry`] uses. Each
//! series keeps:
//!
//! * **Raw tier** — an open [`ChunkEncoder`] plus a ring of sealed
//!   [`CompressedChunk`]s, bounded by [`RetentionConfig::raw_chunks_max`].
//!   Appends are bit-exact: decode returns exactly the floats that went
//!   in.
//! * **Rollup tiers** — 10 s and 5 min buckets, each carrying count /
//!   sum / min / max / last plus a [`QuantileSketch`], so percentile
//!   queries over downsampled history stay within the sketch's relative
//!   accuracy instead of degrading into averages-of-averages.
//!
//! Timestamps are integer **microseconds**. Simulation time arrives as
//! `f64` seconds and is quantized at the boundary ([`secs_to_us`]);
//! wall-clock stamps (the live scraper) are quarantined the same way
//! `FleetRunStats` quarantines wall-clock facts — they never feed any
//! deterministic artifact.

use crate::gorilla::{ChunkEncoder, CompressedChunk};
use sdb_observe::QuantileSketch;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Rounds `v` to `keep_mantissa_bits` of mantissa (round-to-nearest),
/// zeroing the rest. The telemetry-ingestion quantizer: dropping low
/// mantissa bits multiplies the XOR codec's trailing-zero run, cutting
/// stored bits per sample by ~3-5x on drifting analog series, while the
/// relative error stays below `2^-(keep+1)` (~5e-7 at the default 20
/// bits — far under telemetry noise). Deterministic and idempotent;
/// non-finite values and `keep >= 52` pass through untouched. Integers
/// with magnitude below `2^keep` are exactly representable in the kept
/// bits, so counters survive unchanged.
#[must_use]
pub fn quantize(v: f64, keep_mantissa_bits: u32) -> f64 {
    if !v.is_finite() || keep_mantissa_bits >= 52 {
        return v;
    }
    let drop = 52 - keep_mantissa_bits;
    let mask = (1u64 << drop) - 1;
    let bits = v.to_bits();
    // Round-to-nearest by adding half an ulp-of-kept before masking. The
    // carry may ripple into the exponent — that is correct rounding up to
    // the next binade — but from f64::MAX it would ripple into inf (or
    // the sign bit); fall back to truncation there.
    let rounded = bits.wrapping_add(1u64 << (drop - 1)) & !mask;
    let q = f64::from_bits(rounded);
    if q.is_finite() && q.is_sign_positive() == v.is_sign_positive() {
        q
    } else {
        f64::from_bits(bits & !mask)
    }
}

/// Converts simulation/wall seconds to the store's microsecond axis.
#[must_use]
pub fn secs_to_us(t_s: f64) -> i64 {
    let us = t_s * 1e6;
    if us >= i64::MAX as f64 {
        i64::MAX
    } else if us <= i64::MIN as f64 {
        i64::MIN
    } else {
        // Round-half-away-from-zero keeps regular cadences exact.
        us.round() as i64
    }
}

/// A series identity: metric name plus a label set sorted by key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesId {
    /// Metric name (`sdb_soc`, `sdb_fleet_devices_total`, ...).
    pub name: String,
    /// Label pairs, sorted by key for identity stability.
    pub labels: Vec<(String, String)>,
}

impl SeriesId {
    /// An id with its labels sorted into canonical order.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        Self {
            name: name.to_owned(),
            labels,
        }
    }

    /// Whether every `(key, value)` pair in `matchers` is present.
    #[must_use]
    pub fn matches(&self, name: &str, matchers: &[(String, String)]) -> bool {
        self.name == name
            && matchers
                .iter()
                .all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

/// One decoded sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Timestamp, microseconds.
    pub t_us: i64,
    /// Value.
    pub value: f64,
}

/// One rollup bucket: the downsampled view of every raw sample whose
/// timestamp fell inside `[start_us, start_us + width_us)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupBucket {
    /// Bucket start, microseconds (aligned to the tier width).
    pub start_us: i64,
    /// Samples aggregated.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Last value appended (by append order).
    pub last: f64,
    /// Percentile-correct aggregation of the bucket's values.
    pub sketch: QuantileSketch,
}

impl RollupBucket {
    fn new(start_us: i64, alpha: f64) -> Self {
        Self {
            start_us,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            sketch: QuantileSketch::with_accuracy(alpha),
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.last = v;
        self.sketch.insert(v);
    }
}

/// One downsampling tier: a bucket width plus a bounded ring of completed
/// buckets and the currently-open one.
#[derive(Debug, Clone)]
struct RollupTier {
    width_us: i64,
    buckets_max: usize,
    ring: VecDeque<RollupBucket>,
    open: Option<RollupBucket>,
    alpha: f64,
}

impl RollupTier {
    fn new(width_us: i64, buckets_max: usize, alpha: f64) -> Self {
        Self {
            width_us,
            buckets_max,
            ring: VecDeque::new(),
            open: None,
            alpha,
        }
    }

    fn bucket_start(&self, t_us: i64) -> i64 {
        t_us.div_euclid(self.width_us) * self.width_us
    }

    fn observe(&mut self, t_us: i64, v: f64) {
        let start = self.bucket_start(t_us);
        match &mut self.open {
            Some(b) if b.start_us == start => b.observe(v),
            Some(b) if start > b.start_us => {
                // Bucket boundary crossed: seal the open bucket.
                let sealed = std::mem::replace(b, RollupBucket::new(start, self.alpha));
                self.ring.push_back(sealed);
                while self.ring.len() > self.buckets_max {
                    self.ring.pop_front();
                }
                self.open.as_mut().expect("just replaced").observe(v);
            }
            Some(b) => {
                // Out-of-order sample behind the open bucket: fold it into
                // the open bucket rather than losing it (rollups are
                // aggregates, not an ordered log).
                b.observe(v);
            }
            None => {
                let mut b = RollupBucket::new(start, self.alpha);
                b.observe(v);
                self.open = Some(b);
            }
        }
    }

    /// Completed + open buckets overlapping `[t0, t1]`, oldest first.
    fn select(&self, t0_us: i64, t1_us: i64) -> Vec<RollupBucket> {
        self.ring
            .iter()
            .chain(self.open.iter())
            .filter(|b| b.start_us + self.width_us > t0_us && b.start_us <= t1_us)
            .cloned()
            .collect()
    }
}

/// Retention and downsampling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionConfig {
    /// Samples per sealed raw chunk.
    pub chunk_samples: usize,
    /// Sealed raw chunks retained per series (ring; oldest evicted).
    pub raw_chunks_max: usize,
    /// First rollup tier bucket width, seconds.
    pub tier1_bucket_s: f64,
    /// First-tier buckets retained per series.
    pub tier1_buckets_max: usize,
    /// Second rollup tier bucket width, seconds.
    pub tier2_bucket_s: f64,
    /// Second-tier buckets retained per series.
    pub tier2_buckets_max: usize,
    /// Relative accuracy of the rollup quantile sketches.
    pub sketch_alpha: f64,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        Self {
            chunk_samples: 512,
            raw_chunks_max: 64,
            tier1_bucket_s: 10.0,
            tier1_buckets_max: 4096,
            tier2_bucket_s: 300.0,
            tier2_buckets_max: 4096,
            sketch_alpha: QuantileSketch::DEFAULT_ALPHA,
        }
    }
}

/// One series: raw chunks plus rollup tiers.
#[derive(Debug, Clone)]
struct Series {
    id: SeriesId,
    open: ChunkEncoder,
    sealed: VecDeque<CompressedChunk>,
    tier1: RollupTier,
    tier2: RollupTier,
    /// Total samples ever appended (evicted ones included).
    appended: u64,
    /// Samples lost to raw-ring eviction (still represented in rollups
    /// until their tier rings evict too).
    evicted: u64,
}

/// Aggregate size/compression statistics for one store (or one series).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Number of series.
    pub series: usize,
    /// Samples currently retained in the raw tier.
    pub raw_samples: usize,
    /// Total samples ever appended.
    pub appended: u64,
    /// Samples evicted from the raw tier.
    pub evicted: u64,
    /// Compressed bytes held by the raw tier (sealed + open chunks).
    pub compressed_bytes: usize,
    /// What the retained raw samples would occupy uncompressed
    /// (16 bytes per `(i64, f64)` sample).
    pub raw_bytes_equiv: usize,
}

impl StoreStats {
    /// Compression ratio of the raw tier (`raw_bytes_equiv /
    /// compressed_bytes`); 0.0 when nothing is stored.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.raw_bytes_equiv as f64 / self.compressed_bytes as f64
        }
    }
}

impl Series {
    fn new(id: SeriesId, cfg: &RetentionConfig) -> Self {
        Self {
            id,
            open: ChunkEncoder::new(),
            sealed: VecDeque::new(),
            tier1: RollupTier::new(
                secs_to_us(cfg.tier1_bucket_s),
                cfg.tier1_buckets_max,
                cfg.sketch_alpha,
            ),
            tier2: RollupTier::new(
                secs_to_us(cfg.tier2_bucket_s),
                cfg.tier2_buckets_max,
                cfg.sketch_alpha,
            ),
            appended: 0,
            evicted: 0,
        }
    }

    fn append(&mut self, t_us: i64, v: f64, cfg: &RetentionConfig) {
        self.open.push(t_us, v);
        self.appended += 1;
        self.tier1.observe(t_us, v);
        self.tier2.observe(t_us, v);
        if self.open.count() >= cfg.chunk_samples {
            let sealed = std::mem::take(&mut self.open).finish();
            self.sealed.push_back(sealed);
            while self.sealed.len() > cfg.raw_chunks_max {
                if let Some(old) = self.sealed.pop_front() {
                    self.evicted += old.count() as u64;
                }
            }
        }
    }

    /// Decodes raw samples within `[t0, t1]`, append order.
    fn select(&self, t0_us: i64, t1_us: i64) -> Vec<Sample> {
        let mut out = Vec::new();
        for chunk in self
            .sealed
            .iter()
            .map(|c| c.decode())
            .chain(std::iter::once(self.open.clone().finish().decode()))
        {
            // A corrupt chunk yields nothing rather than poisoning the
            // query; corruption is impossible through the public API.
            for (t, v) in chunk.unwrap_or_default() {
                if (t0_us..=t1_us).contains(&t) {
                    out.push(Sample { t_us: t, value: v });
                }
            }
        }
        out
    }

    fn raw_samples(&self) -> usize {
        self.sealed
            .iter()
            .map(CompressedChunk::count)
            .sum::<usize>()
            + self.open.count()
    }

    fn compressed_bytes(&self) -> usize {
        self.sealed
            .iter()
            .map(CompressedChunk::byte_len)
            .sum::<usize>()
            + self.open.byte_len()
    }
}

/// Which rollup tier to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The 10 s (tier-1) rollups.
    Coarse10s,
    /// The 5 min (tier-2) rollups.
    Coarse5m,
}

#[derive(Debug, Default)]
struct Inner {
    series: Vec<Series>,
}

/// The embedded time-series store. Cloning shares the underlying storage
/// (an `Arc`), so one store can be fed by simulation threads and read by
/// the HTTP surface concurrently.
#[derive(Debug, Clone)]
pub struct TsdbStore {
    inner: Arc<Mutex<Inner>>,
    cfg: RetentionConfig,
}

impl Default for TsdbStore {
    fn default() -> Self {
        Self::new(RetentionConfig::default())
    }
}

impl TsdbStore {
    /// An empty store with the given retention configuration.
    #[must_use]
    pub fn new(cfg: RetentionConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner::default())),
            cfg,
        }
    }

    /// The retention configuration.
    #[must_use]
    pub fn config(&self) -> &RetentionConfig {
        &self.cfg
    }

    /// Appends one sample to the series `id`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the store lock is poisoned.
    pub fn append(&self, id: &SeriesId, t_us: i64, value: f64) {
        let mut inner = self.inner.lock().expect("tsdb store poisoned");
        match inner.series.iter_mut().find(|s| s.id == *id) {
            Some(s) => s.append(t_us, value, &self.cfg),
            None => {
                let mut s = Series::new(id.clone(), &self.cfg);
                s.append(t_us, value, &self.cfg);
                inner.series.push(s);
            }
        }
    }

    /// Appends one sample stamped in seconds (quantized to microseconds).
    pub fn append_secs(&self, id: &SeriesId, t_s: f64, value: f64) {
        self.append(id, secs_to_us(t_s), value);
    }

    /// Every series id, in creation order.
    ///
    /// # Panics
    ///
    /// Panics if the store lock is poisoned.
    #[must_use]
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let inner = self.inner.lock().expect("tsdb store poisoned");
        inner.series.iter().map(|s| s.id.clone()).collect()
    }

    /// Raw samples of every series matching `name` + `matchers` within
    /// `[t0_us, t1_us]`.
    ///
    /// # Panics
    ///
    /// Panics if the store lock is poisoned.
    #[must_use]
    pub fn select(
        &self,
        name: &str,
        matchers: &[(String, String)],
        t0_us: i64,
        t1_us: i64,
    ) -> Vec<(SeriesId, Vec<Sample>)> {
        let inner = self.inner.lock().expect("tsdb store poisoned");
        inner
            .series
            .iter()
            .filter(|s| s.id.matches(name, matchers))
            .map(|s| (s.id.clone(), s.select(t0_us, t1_us)))
            .collect()
    }

    /// Rollup buckets of every matching series overlapping `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if the store lock is poisoned.
    #[must_use]
    pub fn select_rollup(
        &self,
        name: &str,
        matchers: &[(String, String)],
        tier: Tier,
        t0_us: i64,
        t1_us: i64,
    ) -> Vec<(SeriesId, Vec<RollupBucket>)> {
        let inner = self.inner.lock().expect("tsdb store poisoned");
        inner
            .series
            .iter()
            .filter(|s| s.id.matches(name, matchers))
            .map(|s| {
                let t = match tier {
                    Tier::Coarse10s => &s.tier1,
                    Tier::Coarse5m => &s.tier2,
                };
                (s.id.clone(), t.select(t0_us, t1_us))
            })
            .collect()
    }

    /// Aggregate statistics over every series.
    ///
    /// # Panics
    ///
    /// Panics if the store lock is poisoned.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("tsdb store poisoned");
        let mut st = StoreStats {
            series: inner.series.len(),
            ..StoreStats::default()
        };
        for s in &inner.series {
            st.raw_samples += s.raw_samples();
            st.appended += s.appended;
            st.evicted += s.evicted;
            st.compressed_bytes += s.compressed_bytes();
        }
        st.raw_bytes_equiv = st.raw_samples * 16;
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(name: &str) -> SeriesId {
        SeriesId::new(name, &[])
    }

    #[test]
    fn append_select_round_trip() {
        let store = TsdbStore::default();
        let sid = SeriesId::new("sdb_soc", &[("battery", "0")]);
        for i in 0..100i64 {
            store.append(&sid, i * 1_000_000, 1.0 - i as f64 * 0.005);
        }
        let out = store.select("sdb_soc", &[("battery".into(), "0".into())], 0, i64::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), 100);
        assert_eq!(out[0].1[7].t_us, 7_000_000);
        assert_eq!(out[0].1[7].value, 1.0 - 7.0 * 0.005);
        // Range select clips.
        let clipped = store.select("sdb_soc", &[], 10_000_000, 19_999_999);
        assert_eq!(clipped[0].1.len(), 10);
        // Label mismatch selects nothing.
        assert!(store
            .select("sdb_soc", &[("battery".into(), "9".into())], 0, i64::MAX)
            .is_empty());
    }

    #[test]
    fn label_order_does_not_split_series() {
        let store = TsdbStore::default();
        let a = SeriesId::new("m", &[("x", "1"), ("y", "2")]);
        let b = SeriesId::new("m", &[("y", "2"), ("x", "1")]);
        store.append(&a, 0, 1.0);
        store.append(&b, 1, 2.0);
        assert_eq!(store.series_ids().len(), 1);
        assert_eq!(store.select("m", &[], 0, 10)[0].1.len(), 2);
    }

    #[test]
    fn retention_ring_evicts_oldest_chunks() {
        let cfg = RetentionConfig {
            chunk_samples: 10,
            raw_chunks_max: 3,
            ..RetentionConfig::default()
        };
        let store = TsdbStore::new(cfg);
        let sid = id("m");
        for i in 0..100i64 {
            store.append(&sid, i * 1_000_000, i as f64);
        }
        let st = store.stats();
        // 3 sealed chunks of 10 + the open chunk (100 % 10 == 0 → empty).
        assert_eq!(st.raw_samples, 30);
        assert_eq!(st.appended, 100);
        assert_eq!(st.evicted, 70);
        // The survivors are the newest samples.
        let out = store.select("m", &[], 0, i64::MAX);
        assert_eq!(out[0].1.first().unwrap().value, 70.0);
        assert_eq!(out[0].1.last().unwrap().value, 99.0);
    }

    #[test]
    fn rollups_downsample_with_correct_aggregates() {
        let store = TsdbStore::default();
        let sid = id("m");
        // 1 Hz for 35 s: tier-1 (10 s) sees buckets [0,10), [10,20), [20,30), open [30,40).
        for i in 0..35i64 {
            store.append(&sid, i * 1_000_000, i as f64);
        }
        let rb = store.select_rollup("m", &[], Tier::Coarse10s, 0, i64::MAX);
        assert_eq!(rb.len(), 1);
        let buckets = &rb[0].1;
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].count, 10);
        assert_eq!(buckets[0].min, 0.0);
        assert_eq!(buckets[0].max, 9.0);
        assert_eq!(buckets[0].sum, 45.0);
        assert_eq!(buckets[3].count, 5);
        assert_eq!(buckets[3].last, 34.0);
        // Tier-2 (5 min): everything lands in one open bucket.
        let rb2 = store.select_rollup("m", &[], Tier::Coarse5m, 0, i64::MAX);
        assert_eq!(rb2[0].1.len(), 1);
        assert_eq!(rb2[0].1[0].count, 35);
        // Rollup range select clips by bucket overlap.
        let clipped = store.select_rollup("m", &[], Tier::Coarse10s, 10_000_000, 15_000_000);
        assert_eq!(clipped[0].1.len(), 1);
        assert_eq!(clipped[0].1[0].start_us, 10_000_000);
    }

    #[test]
    fn rollup_quantiles_track_exact_within_alpha() {
        let store = TsdbStore::default();
        let sid = id("m");
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 100) as f64 + 1.0).collect();
        for (i, &v) in values.iter().enumerate() {
            store.append(&sid, i as i64 * 100_000, v); // 10 Hz, all in ~30 s
        }
        let rb = store.select_rollup("m", &[], Tier::Coarse5m, 0, i64::MAX);
        let bucket = &rb[0].1[0];
        assert_eq!(bucket.count, 300);
        let mut sorted = values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let k = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[k - 1];
            let got = bucket.sketch.quantile(q);
            assert!(
                (got - exact).abs() / exact.abs().max(1e-12) <= bucket.sketch.alpha() + 1e-12,
                "q={q}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn stats_measure_compression() {
        let store = TsdbStore::default();
        let sid = id("m");
        for i in 0..2000i64 {
            store.append(&sid, i * 30_000_000, 5.0);
        }
        let st = store.stats();
        assert_eq!(st.series, 1);
        assert_eq!(st.appended, 2000);
        assert_eq!(st.raw_bytes_equiv, 2000 * 16);
        assert!(
            st.compression_ratio() > 20.0,
            "constant 30 s cadence should compress > 20x, got {:.1}",
            st.compression_ratio()
        );
    }

    #[test]
    fn quantize_bounds_relative_error_and_grows_trailing_zeros() {
        for keep in [16u32, 20, 24] {
            let tol = 2.0_f64.powi(-(keep as i32 + 1));
            for v in [0.8123456789, -3.14159e-7, 1.5e300, 123_456.789, -0.25] {
                let q = quantize(v, keep);
                assert!(((q - v) / v).abs() <= tol, "keep={keep} v={v} q={q}");
                assert!(q.to_bits().trailing_zeros() >= 52 - keep || q == 0.0);
                // Idempotent.
                assert_eq!(quantize(q, keep).to_bits(), q.to_bits());
            }
        }
        // Exact values stay exact; specials pass through.
        assert_eq!(quantize(10.0, 20), 10.0);
        assert_eq!(quantize(0.0, 20).to_bits(), 0.0f64.to_bits());
        assert_eq!(quantize(-0.0, 20).to_bits(), (-0.0f64).to_bits());
        assert_eq!(quantize(1_000_000.0, 20), 1_000_000.0);
        assert!(quantize(f64::NAN, 20).is_nan());
        assert_eq!(quantize(f64::INFINITY, 20), f64::INFINITY);
        assert!(
            quantize(f64::MAX, 20).is_finite(),
            "MAX must not round to inf"
        );
        assert_eq!(quantize(2.5, 52), 2.5);
    }

    #[test]
    fn secs_quantization_is_exact_on_regular_cadence() {
        assert_eq!(secs_to_us(30.0), 30_000_000);
        assert_eq!(secs_to_us(0.1), 100_000);
        assert_eq!(secs_to_us(-1.5), -1_500_000);
        assert_eq!(secs_to_us(f64::MAX), i64::MAX);
    }
}
