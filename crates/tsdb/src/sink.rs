//! Ingestion adapters: three ways samples get into a [`TsdbStore`].
//!
//! * [`ingest_events`] — replay a captured fleet trace
//!   (`Vec<DeviceEvent>`) into device-labeled series. Deterministic:
//!   events are stamped in simulation time, so the resulting store
//!   contents are identical at any thread count.
//! * [`TelemetrySink`] — a live [`EventSink`] for single-device runs;
//!   attach it to an `Observer` and samples stream in as the simulation
//!   steps.
//! * [`RegistryScraper`] — polls a [`MetricsRegistry`] snapshot
//!   ([`MetricsRegistry::samples`]) into the store. This is the
//!   wall-clock path used by `sdb serve` for longitudinal scraping; its
//!   timestamps are quarantined from all deterministic artifacts.
//!
//! All three share one event→series mapping, so a replayed trace and a
//! live run produce the same series names.

use crate::store::{quantize, secs_to_us, SeriesId, TsdbStore};
use sdb_observe::{DeviceEvent, EventSink, MetricsRegistry, ObsEvent, SampleValue};

/// Mantissa bits kept when ingesting analog telemetry (see
/// [`quantize`]): relative error stays under `2^-21` (~5e-7), far below
/// sensor noise, while XOR compression gains the 32 zeroed trailing
/// bits. Integer-valued streams (counters, histogram counts) are stored
/// exact — integers compress natively and monotonic checks must not
/// drift.
pub const TELEMETRY_MANTISSA_BITS: u32 = 20;

/// Maps one event onto series appends. Continuous signals (step
/// telemetry, directives, ratios) become samples; discrete events
/// (faults, transitions) stay on the trace/flight-recorder path.
fn ingest_one(store: &TsdbStore, device: &str, t_s: f64, event: &ObsEvent) {
    let t_us = secs_to_us(t_s);
    let q = |v: f64| quantize(v, TELEMETRY_MANTISSA_BITS);
    match event {
        ObsEvent::StepSample {
            load_w,
            supplied_w,
            loss_w,
            soc,
            current_a,
        } => {
            for (name, v) in [
                ("sdb_load_w", *load_w),
                ("sdb_supplied_w", *supplied_w),
                ("sdb_loss_w", *loss_w),
            ] {
                store.append(&SeriesId::new(name, &[("device", device)]), t_us, q(v));
            }
            for (b, &v) in soc.iter().enumerate() {
                let battery = b.to_string();
                store.append(
                    &SeriesId::new("sdb_soc", &[("device", device), ("battery", &battery)]),
                    t_us,
                    q(v),
                );
            }
            for (b, &v) in current_a.iter().enumerate() {
                let battery = b.to_string();
                store.append(
                    &SeriesId::new(
                        "sdb_current_a",
                        &[("device", device), ("battery", &battery)],
                    ),
                    t_us,
                    q(v),
                );
            }
        }
        ObsEvent::PolicyEvaluation {
            charge_directive,
            discharge_directive,
            ..
        } => {
            store.append(
                &SeriesId::new("sdb_charge_directive", &[("device", device)]),
                t_us,
                q(*charge_directive),
            );
            store.append(
                &SeriesId::new("sdb_discharge_directive", &[("device", device)]),
                t_us,
                q(*discharge_directive),
            );
        }
        ObsEvent::RatioPush { flow, ratios } => {
            let flow = flow.to_string();
            for (b, &r) in ratios.iter().enumerate() {
                let battery = b.to_string();
                store.append(
                    &SeriesId::new(
                        "sdb_ratio",
                        &[("device", device), ("flow", &flow), ("battery", &battery)],
                    ),
                    t_us,
                    q(r),
                );
            }
        }
        _ => {}
    }
}

/// Replays captured fleet events into `store`, labeling series by
/// device. Returns how many events contributed samples.
pub fn ingest_events(store: &TsdbStore, events: &[DeviceEvent]) -> usize {
    let mut ingested = 0;
    let mut device_label = String::new();
    let mut device_of_label = u64::MAX;
    for e in events {
        if matches!(
            e.event,
            ObsEvent::StepSample { .. }
                | ObsEvent::PolicyEvaluation { .. }
                | ObsEvent::RatioPush { .. }
        ) {
            if e.device != device_of_label {
                device_label = format!("d{}", e.device);
                device_of_label = e.device;
            }
            ingest_one(store, &device_label, e.t_s, &e.event);
            ingested += 1;
        }
    }
    ingested
}

/// A live [`EventSink`] streaming one device's telemetry into a store.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    store: TsdbStore,
    device: String,
}

impl TelemetrySink {
    /// A sink writing into `store` under the `device` label.
    #[must_use]
    pub fn new(store: TsdbStore, device: &str) -> Self {
        Self {
            store,
            device: device.to_owned(),
        }
    }
}

impl EventSink for TelemetrySink {
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        ingest_one(&self.store, &self.device, t_s, event);
    }
}

/// Polls [`MetricsRegistry`] snapshots into a store: counters and gauges
/// become one series each, histograms become `<name>_count` and
/// `<name>_sum`. Timestamps are supplied by the caller — `sdb serve`
/// passes wall-clock-since-start, which keeps this path quarantined from
/// deterministic artifacts.
#[derive(Debug, Clone)]
pub struct RegistryScraper {
    store: TsdbStore,
}

impl RegistryScraper {
    /// A scraper writing into `store`.
    #[must_use]
    pub fn new(store: TsdbStore) -> Self {
        Self { store }
    }

    /// Appends one snapshot of `registry` at `t_us`. Returns how many
    /// samples were written.
    pub fn scrape(&self, registry: &MetricsRegistry, t_us: i64) -> usize {
        let mut written = 0;
        for sample in registry.samples() {
            let labels: Vec<(&str, &str)> = sample
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match sample.value {
                SampleValue::Counter(v) => {
                    self.store
                        .append(&SeriesId::new(&sample.name, &labels), t_us, v as f64);
                    written += 1;
                }
                SampleValue::Gauge(v) => {
                    self.store
                        .append(&SeriesId::new(&sample.name, &labels), t_us, v);
                    written += 1;
                }
                SampleValue::Histogram { count, sum } => {
                    self.store.append(
                        &SeriesId::new(&format!("{}_count", sample.name), &labels),
                        t_us,
                        count as f64,
                    );
                    self.store.append(
                        &SeriesId::new(&format!("{}_sum", sample.name), &labels),
                        t_us,
                        sum as f64,
                    );
                    written += 2;
                }
            }
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{run, Query};

    fn step(load: f64) -> ObsEvent {
        ObsEvent::StepSample {
            load_w: load,
            supplied_w: load * 0.98,
            loss_w: load * 0.02,
            soc: vec![0.9, 0.8],
            current_a: vec![1.0, 2.0],
        }
    }

    #[test]
    fn ingest_events_labels_by_device() {
        let store = TsdbStore::default();
        let events = vec![
            DeviceEvent {
                device: 0,
                seq: 0,
                t_s: 0.0,
                event: step(10.0),
            },
            DeviceEvent {
                device: 1,
                seq: 0,
                t_s: 0.0,
                event: step(20.0),
            },
            DeviceEvent {
                device: 1,
                seq: 1,
                t_s: 30.0,
                event: ObsEvent::PolicyEvaluation {
                    pushed: true,
                    charge_directive: 0.5,
                    discharge_directive: 1.0,
                },
            },
            // Discrete events contribute nothing.
            DeviceEvent {
                device: 1,
                seq: 2,
                t_s: 31.0,
                event: ObsEvent::FaultInjection {
                    description: "x".into(),
                },
            },
        ];
        assert_eq!(ingest_events(&store, &events), 3);
        let r = run(&store, &Query::range_all("sdb_load_w"));
        assert_eq!(r.series.len(), 2);
        assert_eq!(r.series[0].labels, vec![("device".into(), "d0".into())]);
        assert_eq!(r.series[0].points, vec![(0, 10.0)]);
        assert_eq!(r.series[1].points, vec![(0, 20.0)]);
        // Per-battery series get battery labels.
        let soc = run(&store, &Query::range_all("sdb_soc"));
        assert_eq!(soc.series.len(), 4); // 2 devices x 2 batteries
        let dir = run(&store, &Query::range_all("sdb_charge_directive"));
        assert_eq!(dir.series[0].points, vec![(30_000_000, 0.5)]);
    }

    #[test]
    fn telemetry_sink_streams_live_events() {
        let store = TsdbStore::default();
        let mut sink = TelemetrySink::new(store.clone(), "dev");
        for i in 0..10 {
            sink.record(f64::from(i) * 30.0, &step(15.0));
        }
        let r = run(&store, &Query::range_all("sdb_supplied_w"));
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].labels, vec![("device".into(), "dev".into())]);
        assert_eq!(r.series[0].points.len(), 10);
        assert_eq!(r.series[0].points[3].0, 90_000_000);
    }

    #[test]
    fn registry_scraper_snapshots_every_metric_kind() {
        let store = TsdbStore::default();
        let reg = MetricsRegistry::new();
        let c = reg.counter("sdb_pushes_total", &[("flow", "charge")]);
        let g = reg.gauge("sdb_soc_min", &[]);
        let h = reg.histogram("sdb_step_us", &[]);
        let scraper = RegistryScraper::new(store.clone());

        c.inc();
        g.set(0.25);
        h.record(100);
        assert_eq!(scraper.scrape(&reg, 1_000_000), 4);
        c.inc();
        assert_eq!(scraper.scrape(&reg, 2_000_000), 4);

        let r = run(&store, &Query::range_all("sdb_pushes_total"));
        assert_eq!(r.series[0].labels, vec![("flow".into(), "charge".into())]);
        assert_eq!(r.series[0].points, vec![(1_000_000, 1.0), (2_000_000, 2.0)]);
        let hist = run(&store, &Query::range_all("sdb_step_us_count"));
        assert_eq!(hist.series[0].points.len(), 2);
    }
}
