//! Gorilla-style chunk compression: delta-of-delta timestamps and
//! XOR-compressed `f64` values over a bit stream.
//!
//! The encoding follows the Facebook Gorilla paper (Pelkonen et al.,
//! VLDB 2015) with two local adaptations:
//!
//! * Timestamps are integer **microseconds** (`i64`). Simulation time is
//!   `f64` seconds everywhere else in the stack; the store quantizes at
//!   ingest ([`crate::store`]) so the compressed axis is exact integers —
//!   delta-of-delta over regular step cadences is then almost always the
//!   single `0` bit.
//! * The widest delta-of-delta class is a full 64 bits (Gorilla stops at
//!   32), so arbitrary — even out-of-order — timestamps still round-trip
//!   bit-exactly; disorder costs bits, never correctness.
//!
//! Values use the classic XOR scheme: identical value → 1 bit; same
//! leading/trailing-zero window as the previous XOR → `10` + meaningful
//! bits; otherwise `11` + 5-bit leading-zero count + 6-bit length + the
//! meaningful bits. Every finite and non-finite `f64` bit pattern
//! round-trips exactly (the codec never inspects the float's numeric
//! value, only its bits).

/// An append-only bit stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the final byte (0 means the last byte is full/absent).
    used: u8,
}

impl BitWriter {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written.
    #[must_use]
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + usize::from(self.used)
        }
    }

    /// Bytes backing the stream (last byte zero-padded).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Heap bytes currently held.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Appends one bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("pushed above");
            *last |= 0x80 >> self.used;
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the low `n` bits of `v`, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits(&mut self, v: u64, n: u8) {
        assert!(n <= 64, "cannot push {n} bits");
        for i in (0..n).rev() {
            self.push_bit((v >> i) & 1 == 1);
        }
    }
}

/// A cursor over a [`BitWriter`]'s bytes.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns `Err` at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, &'static str> {
        let byte = self.bytes.get(self.pos / 8).ok_or("bit stream exhausted")?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits, most-significant first.
    ///
    /// # Errors
    ///
    /// Returns `Err` at end of stream.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, &'static str> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }
}

/// Delta-of-delta class thresholds: `(control bits, control len, payload bits)`.
/// Classes follow Gorilla §4.1 with a 64-bit final class.
const DOD_CLASSES: [(u64, u8, u8); 4] = [
    (0b10, 2, 7),    // dod in [-63, 64]
    (0b110, 3, 9),   // dod in [-255, 256]
    (0b1110, 4, 12), // dod in [-2047, 2048]
    (0b1111, 4, 64), // anything else
];

/// A streaming Gorilla encoder for one series chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEncoder {
    bits: BitWriter,
    count: usize,
    first_t: i64,
    prev_t: i64,
    prev_delta: i64,
    prev_v: u64,
    /// Leading-zero / meaningful-length window of the previous XOR
    /// (`None` until a `11`-class value is written).
    prev_window: Option<(u8, u8)>,
}

impl ChunkEncoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bits: BitWriter::new(),
            count: 0,
            first_t: 0,
            prev_t: 0,
            prev_delta: 0,
            prev_v: 0,
            prev_window: None,
        }
    }

    /// Samples appended so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Compressed payload size in bytes (zero-padded to the byte).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bits.byte_len()
    }

    /// Timestamp of the first appended sample (0 when empty).
    #[must_use]
    pub fn first_t(&self) -> i64 {
        self.first_t
    }

    /// Timestamp of the last appended sample (0 when empty).
    #[must_use]
    pub fn last_t(&self) -> i64 {
        self.prev_t
    }

    /// Appends one `(timestamp, value)` sample.
    pub fn push(&mut self, t_us: i64, value: f64) {
        let v = value.to_bits();
        if self.count == 0 {
            self.bits.push_bits(t_us as u64, 64);
            self.bits.push_bits(v, 64);
            self.first_t = t_us;
            self.prev_t = t_us;
            self.prev_delta = 0;
            self.prev_v = v;
            self.count = 1;
            return;
        }
        // Timestamp: delta-of-delta classes.
        let delta = t_us.wrapping_sub(self.prev_t);
        let dod = delta.wrapping_sub(self.prev_delta);
        if dod == 0 {
            self.bits.push_bit(false);
        } else {
            // Gorilla offsets each class so its payload range is
            // symmetric-ish around zero: [-2^(n-1)+1, 2^(n-1)].
            let mut written = false;
            for (ctrl, ctrl_len, payload) in DOD_CLASSES {
                if payload == 64 {
                    self.bits.push_bits(ctrl, ctrl_len);
                    self.bits.push_bits(dod as u64, 64);
                    written = true;
                    break;
                }
                let lo = -(1i64 << (payload - 1)) + 1;
                let hi = 1i64 << (payload - 1);
                if (lo..=hi).contains(&dod) {
                    self.bits.push_bits(ctrl, ctrl_len);
                    self.bits.push_bits((dod - lo) as u64, payload);
                    written = true;
                    break;
                }
            }
            debug_assert!(written, "64-bit class is total");
        }
        self.prev_delta = delta;
        self.prev_t = t_us;

        // Value: XOR against the previous value.
        let xor = v ^ self.prev_v;
        if xor == 0 {
            self.bits.push_bit(false);
        } else {
            self.bits.push_bit(true);
            let lead = (xor.leading_zeros() as u8).min(31);
            let trail = xor.trailing_zeros() as u8;
            let len = 64 - lead - trail;
            let fits_prev = self.prev_window.is_some_and(|(pl, plen)| {
                let ptrail = 64 - pl - plen;
                lead >= pl && trail >= ptrail
            });
            if fits_prev {
                let (pl, plen) = self.prev_window.expect("checked above");
                self.bits.push_bit(false);
                self.bits.push_bits(xor >> (64 - pl - plen), plen);
            } else {
                self.bits.push_bit(true);
                self.bits.push_bits(u64::from(lead), 5);
                // len is in 1..=64 (xor != 0); store len-1 in 6 bits.
                self.bits.push_bits(u64::from(len - 1), 6);
                self.bits.push_bits(xor >> trail, len);
                self.prev_window = Some((lead, len));
            }
        }
        self.prev_v = v;
        self.count += 1;
    }

    /// Finishes the chunk, returning the compressed payload.
    #[must_use]
    pub fn finish(self) -> CompressedChunk {
        CompressedChunk {
            bytes: self.bits.as_bytes().to_vec(),
            count: self.count,
            first_t: self.first_t,
            last_t: self.prev_t,
        }
    }
}

impl Default for ChunkEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// A sealed, immutable compressed chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedChunk {
    bytes: Vec<u8>,
    count: usize,
    first_t: i64,
    last_t: i64,
}

impl CompressedChunk {
    /// Number of samples in the chunk.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Compressed size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// First sample timestamp (microseconds).
    #[must_use]
    pub fn first_t(&self) -> i64 {
        self.first_t
    }

    /// Last sample timestamp (microseconds).
    #[must_use]
    pub fn last_t(&self) -> i64 {
        self.last_t
    }

    /// Decodes every sample in append order.
    ///
    /// # Errors
    ///
    /// Returns a message if the bit stream is truncated or corrupt.
    pub fn decode(&self) -> Result<Vec<(i64, f64)>, &'static str> {
        let mut out = Vec::with_capacity(self.count);
        if self.count == 0 {
            return Ok(out);
        }
        let mut r = BitReader::new(&self.bytes);
        let mut t = r.read_bits(64)? as i64;
        let mut v = r.read_bits(64)?;
        out.push((t, f64::from_bits(v)));
        let mut delta = 0i64;
        let mut window: Option<(u8, u8)> = None;
        for _ in 1..self.count {
            // Timestamp.
            let dod = if r.read_bit()? {
                let mut dod = None;
                for (_, _, payload) in DOD_CLASSES {
                    // Control bits: the leading 1 is already consumed; each
                    // narrower class consumes one more bit before its payload.
                    if payload == 64 {
                        dod = Some(r.read_bits(64)? as i64);
                        break;
                    }
                    if !r.read_bit()? {
                        let lo = -(1i64 << (payload - 1)) + 1;
                        dod = Some(r.read_bits(payload)? as i64 + lo);
                        break;
                    }
                }
                dod.ok_or("bad dod control")?
            } else {
                0
            };
            delta = delta.wrapping_add(dod);
            t = t.wrapping_add(delta);

            // Value.
            if r.read_bit()? {
                let xor = if r.read_bit()? {
                    let lead = r.read_bits(5)? as u8;
                    let len = r.read_bits(6)? as u8 + 1;
                    let bits = r.read_bits(len)?;
                    window = Some((lead, len));
                    bits << (64 - lead - len)
                } else {
                    let (lead, len) = window.ok_or("window reuse before any window")?;
                    r.read_bits(len)? << (64 - lead - len)
                };
                v ^= xor;
            }
            out.push((t, f64::from_bits(v)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(samples: &[(i64, f64)]) -> CompressedChunk {
        let mut enc = ChunkEncoder::new();
        for &(t, v) in samples {
            enc.push(t, v);
        }
        let chunk = enc.finish();
        let decoded = chunk.decode().expect("decode");
        assert_eq!(decoded.len(), samples.len());
        for (i, (&(t, v), &(dt, dv))) in samples.iter().zip(&decoded).enumerate() {
            assert_eq!(t, dt, "timestamp {i}");
            assert_eq!(v.to_bits(), dv.to_bits(), "value {i} ({v} vs {dv})");
        }
        chunk
    }

    #[test]
    fn empty_and_single() {
        assert!(ChunkEncoder::new().finish().decode().unwrap().is_empty());
        round_trip(&[(1_000_000, 42.5)]);
    }

    #[test]
    fn regular_cadence_compresses_hard() {
        // 30 s cadence, constant value: the steady state costs 2 bits per
        // sample after the 128-bit header.
        let samples: Vec<(i64, f64)> = (0..1000).map(|i| (i * 30_000_000, 5.0)).collect();
        let chunk = round_trip(&samples);
        let raw = samples.len() * 16;
        assert!(
            chunk.byte_len() * 50 < raw,
            "constant series should compress > 50x: {} vs {raw}",
            chunk.byte_len()
        );
    }

    #[test]
    fn slowly_varying_values() {
        let samples: Vec<(i64, f64)> = (0..500)
            .map(|i| (i * 60_000_000, 1.0 - i as f64 * 1e-4))
            .collect();
        let chunk = round_trip(&samples);
        assert!(chunk.byte_len() < samples.len() * 16);
    }

    #[test]
    fn adversarial_bit_patterns_round_trip() {
        let samples = [
            (0, 0.0),
            (1, -0.0),
            (2, f64::MIN_POSITIVE),
            (3, 5e-324), // smallest denormal
            (10, -5e-324),
            (11, f64::MAX),
            (12, f64::MIN),
            (13, f64::INFINITY),
            (14, f64::NEG_INFINITY),
            (1_000_000_000, 1.0),
            (-5, -1.0), // out-of-order, negative timestamp
            (i64::MAX / 2, 0.1),
            (i64::MIN / 2, -0.1), // giant negative jump
        ];
        round_trip(&samples);
    }

    #[test]
    fn alternating_signs_round_trip() {
        let samples: Vec<(i64, f64)> = (0..200)
            .map(|i| {
                let v = f64::from(i) * 0.37 + 0.001;
                (i64::from(i) * 10_000_000, if i % 2 == 0 { v } else { -v })
            })
            .collect();
        round_trip(&samples);
    }

    #[test]
    fn dod_class_boundaries_round_trip() {
        // Deltas engineered to hit every delta-of-delta class boundary.
        let mut t = 0i64;
        let mut delta = 1000i64;
        let mut samples = Vec::new();
        for (i, &dod) in [
            0i64,
            1,
            -1,
            63,
            -63,
            64,
            65,
            -64,
            255,
            -255,
            256,
            257,
            -256,
            2047,
            -2047,
            2048,
            2049,
            -2048,
            1 << 40,
            -(1 << 40),
        ]
        .iter()
        .enumerate()
        {
            delta += dod;
            t += delta;
            samples.push((t, i as f64));
        }
        round_trip(&samples);
    }

    #[test]
    fn bit_writer_reader_agree() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b1011, 4);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 3);
        assert_eq!(w.len_bits(), 1 + 4 + 64 + 3);
        let mut r = BitReader::new(w.as_bytes());
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(3).unwrap(), 0);
        assert!(r.read_bits(8).is_err(), "padding is under one byte");
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let mut enc = ChunkEncoder::new();
        for i in 0..10 {
            enc.push(i * 1_000_000, f64::from(i as i32) * 1.7);
        }
        let mut chunk = enc.finish();
        chunk.bytes.truncate(10);
        assert!(chunk.decode().is_err());
    }
}
