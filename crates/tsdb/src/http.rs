//! A hand-rolled, zero-dependency blocking HTTP/1.1 serving surface —
//! the first slice of `sdb serve`.
//!
//! Routes:
//!
//! * `GET /metrics` — live Prometheus text scrape of the attached
//!   [`MetricsRegistry`].
//! * `GET /query?name=..&kind=..` — JSON query against the attached
//!   [`TsdbStore`] (see [`parse_query`] for parameters).
//! * `GET /profile` — live hierarchical phase-profiler snapshot (JSON,
//!   see `sdb_prof::Snapshot::to_json`).
//! * `GET /healthz` — liveness probe: JSON status plus build info.
//! * `GET /shutdown` — graceful stop: the accept loop drains in-flight
//!   connections and exits.
//!
//! Design: one accept thread polling a non-blocking listener (so the
//! shutdown flag is observed without signals), one short-lived thread per
//! connection, per-connection read timeouts, a request-size cap, and a
//! `400` — never a panic — for anything malformed. That is deliberately
//! boring: the serving surface must not be able to take down a running
//! fleet simulation.

use crate::query::{self, Query, QueryKind};
use crate::store::{Tier, TsdbStore};
use sdb_observe::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Largest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long shutdown waits for in-flight connections to drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Build identity reported by `/healthz` (and `sdb --version`). The CLI
/// fills these from compile-time env vars; library users default to
/// `unknown`.
#[derive(Debug, Clone)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Short git commit hash the binary was built from.
    pub git_hash: String,
    /// `rustc --version` string of the compiler used.
    pub rustc: String,
}

impl Default for BuildInfo {
    fn default() -> Self {
        Self {
            version: "unknown".to_owned(),
            git_hash: "unknown".to_owned(),
            rustc: "unknown".to_owned(),
        }
    }
}

impl BuildInfo {
    /// The `/healthz` JSON body for this build.
    #[must_use]
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"version\":\"{}\",\"git_hash\":\"{}\",\"rustc\":\"{}\"}}\n",
            escape_json(&self.version),
            escape_json(&self.git_hash),
            escape_json(&self.rustc)
        )
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// When set, a background thread scrapes the registry into the store
    /// at this interval, stamped with wall-clock-since-start. Wall-clock
    /// stamps are quarantined: they exist only inside this serve
    /// session's store, never in a deterministic artifact.
    pub scrape_every: Option<Duration>,
    /// Build identity served on `/healthz`.
    pub build: BuildInfo,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            scrape_every: None,
            build: BuildInfo::default(),
        }
    }
}

/// A running listener. Dropping the handle leaves the listener running
/// detached; call [`ServeHandle::shutdown`] (or hit `/shutdown`) to stop
/// it.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    scrape_thread: Option<thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (with the OS-assigned port when 0 was asked).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the listener has stopped (via `/shutdown` or
    /// [`ServeHandle::shutdown`]).
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Signals the accept loop to stop and waits for it (and the scrape
    /// thread) to finish draining.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scrape_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the listener stops on its own (e.g. via `/shutdown`).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scrape_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the listener, serving `registry` on `/metrics` and `store` on
/// `/query`.
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound.
pub fn serve(
    opts: &ServeOptions,
    registry: MetricsRegistry,
    store: TsdbStore,
) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicUsize::new(0));

    let scrape_thread = opts.scrape_every.map(|every| {
        let stop = Arc::clone(&stop);
        let registry = registry.clone();
        let scraper = crate::sink::RegistryScraper::new(store.clone());
        thread::spawn(move || {
            let start = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                // Refresh sdb_prof_* gauges from the live profiler
                // aggregate so each scrape below carries them.
                if sdb_prof::enabled() {
                    sdb_prof::export_gauges(&registry);
                }
                // Wall-clock-since-start stamp: quarantined to this store.
                let t_us = i64::try_from(start.elapsed().as_micros()).unwrap_or(i64::MAX);
                scraper.scrape(&registry, t_us);
                // Sleep in short slices so shutdown stays prompt.
                let mut left = every;
                while !stop.load(Ordering::SeqCst) && left > Duration::ZERO {
                    let nap = left.min(ACCEPT_POLL);
                    thread::sleep(nap);
                    left = left.saturating_sub(nap);
                }
            }
        })
    });

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let build = opts.build.clone();
        thread::spawn(move || {
            accept_loop(&listener, &stop, &in_flight, &registry, &store, &build);
        })
    };

    Ok(ServeHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        scrape_thread,
    })
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    in_flight: &Arc<AtomicUsize>,
    registry: &MetricsRegistry,
    store: &TsdbStore,
    build: &BuildInfo,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                in_flight.fetch_add(1, Ordering::SeqCst);
                let in_flight = Arc::clone(in_flight);
                let stop = Arc::clone(stop);
                let registry = registry.clone();
                let store = store.clone();
                let build = build.clone();
                thread::spawn(move || {
                    handle_connection(stream, &stop, &registry, &store, &build);
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Graceful drain: give in-flight responses a bounded window to finish.
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    while in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(ACCEPT_POLL);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    store: &TsdbStore,
    build: &BuildInfo,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            respond(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
    };
    let (status, content_type, body) = route(&head, stop, registry, store, build);
    respond(&mut stream, status, content_type, &body);
}

/// Reads the request head (through the blank line), enforcing the size
/// cap, and returns the request line.
fn read_head(stream: &mut TcpStream) -> Result<String, &'static str> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).map_err(|_| "read error")?;
        if n == 0 {
            return Err("connection closed before head");
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request too large");
        }
    }
    let text = std::str::from_utf8(&buf).map_err(|_| "not utf-8")?;
    let line = text.lines().next().ok_or("empty request")?;
    Ok(line.to_owned())
}

/// Dispatches one parsed request line to a route.
fn route(
    request_line: &str,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    store: &TsdbStore,
    build: &BuildInfo,
) -> (u16, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return (400, "text/plain", "bad request line\n".to_owned());
    };
    if !version.starts_with("HTTP/1.") {
        return (400, "text/plain", "bad http version\n".to_owned());
    }
    if method != "GET" {
        return (405, "text/plain", "method not allowed\n".to_owned());
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (200, "application/json", build.healthz_json()),
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            registry.to_prometheus_text(),
        ),
        "/profile" => (200, "application/json", sdb_prof::snapshot().to_json()),
        "/query" => match parse_query(query_string) {
            Ok(q) => (200, "application/json", query::run(store, &q).to_json()),
            Err(e) => (400, "text/plain", format!("bad query: {e}\n")),
        },
        "/shutdown" => {
            stop.store(true, Ordering::SeqCst);
            (200, "text/plain", "shutting down\n".to_owned())
        }
        _ => (404, "text/plain", "not found\n".to_owned()),
    }
}

/// Parses a `/query` query string into a [`Query`].
///
/// Parameters: `name` (required), `label.<key>=<value>` matchers
/// (repeatable), `t0_us` / `t1_us` (default whole history), `kind`
/// (`range` | `rate` | `quantile` | `rollup_quantile`, default `range`),
/// `q` (quantile, required by the quantile kinds), `tier` (`10s` | `5m`,
/// default `10s`, rollup kinds only).
///
/// # Errors
///
/// Returns a static description of the first invalid parameter.
pub fn parse_query(query_string: &str) -> Result<Query, &'static str> {
    let mut name = None;
    let mut matchers = Vec::new();
    let mut t0_us = i64::MIN;
    let mut t1_us = i64::MAX;
    let mut kind_str = "range".to_owned();
    let mut q_param = None;
    let mut tier = Tier::Coarse10s;
    for pair in query_string.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').ok_or("parameter without value")?;
        let k = percent_decode(k)?;
        let v = percent_decode(v)?;
        match k.as_str() {
            "name" => name = Some(v),
            "t0_us" => t0_us = v.parse().map_err(|_| "t0_us not an integer")?,
            "t1_us" => t1_us = v.parse().map_err(|_| "t1_us not an integer")?,
            "kind" => kind_str = v,
            "q" => {
                let q: f64 = v.parse().map_err(|_| "q not a number")?;
                if !(0.0..=1.0).contains(&q) {
                    return Err("q out of [0,1]");
                }
                q_param = Some(q);
            }
            "tier" => {
                tier = match v.as_str() {
                    "10s" => Tier::Coarse10s,
                    "5m" => Tier::Coarse5m,
                    _ => return Err("tier must be 10s or 5m"),
                }
            }
            _ => {
                if let Some(label_key) = k.strip_prefix("label.") {
                    matchers.push((label_key.to_owned(), v));
                } else {
                    return Err("unknown parameter");
                }
            }
        }
    }
    let name = name.ok_or("missing name")?;
    let kind = match kind_str.as_str() {
        "range" => QueryKind::Range,
        "rate" => QueryKind::Rate,
        "quantile" => QueryKind::Quantile(q_param.ok_or("quantile needs q")?),
        "rollup_quantile" => {
            QueryKind::RollupQuantile(tier, q_param.ok_or("rollup_quantile needs q")?)
        }
        _ => return Err("unknown kind"),
    };
    Ok(Query {
        name,
        matchers,
        t0_us,
        t1_us,
        kind,
    })
}

/// Minimal percent-decoding (`%XX` and `+` → space).
fn percent_decode(s: &str) -> Result<String, &'static str> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).ok_or("truncated %-escape")?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad %-escape")?;
                out.push(u8::from_str_radix(hex, 16).map_err(|_| "bad %-escape")?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "decoded bytes not utf-8")
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesId;

    /// One blocking GET against a local listener, returning (status, body).
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {target} HTTP/1.1\r\nHost: sdb\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(bytes).expect("write");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    fn start() -> (ServeHandle, MetricsRegistry, TsdbStore) {
        let registry = MetricsRegistry::new();
        let store = TsdbStore::default();
        let handle = serve(&ServeOptions::default(), registry.clone(), store.clone())
            .expect("bind loopback");
        (handle, registry, store)
    }

    #[test]
    fn healthz_metrics_and_query_roundtrip() {
        let (handle, registry, store) = start();
        registry.counter("sdb_pushes_total", &[]).add(7);
        store.append(
            &SeriesId::new("sdb_soc", &[("device", "d0")]),
            1_000_000,
            0.5,
        );

        let (status, body) = get(handle.addr(), "/healthz");
        assert_eq!(status, 200);
        let health = sdb_trace::json::parse(body.trim()).expect("healthz is json");
        assert_eq!(
            health.get("status").and_then(|v| v.as_str()),
            Some("ok"),
            "healthz body: {body}"
        );
        assert_eq!(
            health.get("git_hash").and_then(|v| v.as_str()),
            Some("unknown"),
            "library default build info"
        );

        let (status, body) = get(handle.addr(), "/profile");
        assert_eq!(status, 200);
        let prof = sdb_trace::json::parse(&body).expect("profile is json");
        assert!(
            prof.get("deterministic").is_some() && prof.get("wall").is_some(),
            "profile body: {body}"
        );

        let (status, body) = get(handle.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("sdb_pushes_total 7\n"),
            "metrics body: {body}"
        );

        let (status, body) = get(handle.addr(), "/query?name=sdb_soc&label.device=d0");
        assert_eq!(status, 200);
        let v = sdb_trace::json::parse(&body).expect("json body");
        let series = v.get("series").and_then(|s| s.as_arr()).expect("series");
        assert_eq!(series.len(), 1);

        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_panic() {
        let (handle, _registry, _store) = start();
        let addr = handle.addr();
        assert!(raw(addr, b"gibberish\r\n\r\n").starts_with("HTTP/1.1 400"));
        assert!(raw(addr, b"GET /metrics\r\n\r\n").starts_with("HTTP/1.1 400"));
        assert!(raw(addr, b"GET /x HTTP/9.9\r\n\r\n").starts_with("HTTP/1.1 400"));
        let big = vec![b'a'; MAX_REQUEST_BYTES + 100];
        assert!(raw(addr, &big).starts_with("HTTP/1.1 400"));
        let (status, _) = get(addr, "/query?name=");
        assert_eq!(status, 200, "empty name is a valid (matchless) query");
        let (status, _) = get(addr, "/query?kind=quantile&name=x");
        assert_eq!(status, 400, "quantile without q");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        assert!(raw(addr, b"POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        // The listener survived all of it.
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        handle.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_listener() {
        let (handle, _registry, _store) = start();
        let addr = handle.addr();
        let (status, _) = get(addr, "/shutdown");
        assert_eq!(status, 200);
        handle.wait();
        // The port no longer accepts (give the OS a beat to close it).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn scraper_option_records_longitudinal_series() {
        let registry = MetricsRegistry::new();
        let store = TsdbStore::default();
        let counter = registry.counter("sdb_ticks_total", &[]);
        let opts = ServeOptions {
            scrape_every: Some(Duration::from_millis(20)),
            ..ServeOptions::default()
        };
        let handle = serve(&opts, registry.clone(), store.clone()).expect("bind");
        for _ in 0..10 {
            counter.inc();
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
        let selected = store.select("sdb_ticks_total", &[], i64::MIN, i64::MAX);
        let points = &selected.first().expect("series scraped").1;
        assert!(
            points.len() >= 2,
            "expected >= 2 scrapes, got {}",
            points.len()
        );
        // Counter is monotone across scrapes.
        assert!(points.windows(2).all(|w| w[1].value >= w[0].value));
    }

    #[test]
    fn parse_query_accepts_all_parameters() {
        let q = parse_query(
            "name=sdb_soc&label.device=d0&label.battery=1&t0_us=5&t1_us=9&kind=rollup_quantile&q=0.95&tier=5m",
        )
        .expect("parses");
        assert_eq!(q.name, "sdb_soc");
        assert_eq!(q.matchers.len(), 2);
        assert_eq!((q.t0_us, q.t1_us), (5, 9));
        assert_eq!(q.kind, QueryKind::RollupQuantile(Tier::Coarse5m, 0.95));
        assert_eq!(
            parse_query("name=a%20b&label.x=1+2").expect("decodes").name,
            "a b"
        );
        for bad in [
            "t0_us=1", // missing name
            "name=x&kind=bogus",
            "name=x&q=1.5&kind=quantile",
            "name=x&tier=1h",
            "name=x&mystery=1",
            "name=x&label.a", // parameter without value
            "name=%zz",
        ] {
            assert!(parse_query(bad).is_err(), "should reject {bad:?}");
        }
    }
}
