//! Property tests for the Gorilla codec and the rollup tiers, driven by
//! the sdb-testkit deterministic generator.
//!
//! The two contracts under test:
//!
//! 1. **Bit-exactness** — `decode(encode(series)) == series` for every
//!    NaN-free float series, including adversarial shapes: denormals,
//!    constant runs, alternating signs, huge magnitude swings, and
//!    irregular/negative timestamps.
//! 2. **Rollup quantile accuracy** — a downsampled bucket's sketch
//!    quantile matches the exact nearest-rank quantile of the bucket's
//!    raw samples within the sketch's relative-accuracy bound.

use sdb_testkit::{check, Gen};
use sdb_tsdb::gorilla::ChunkEncoder;
use sdb_tsdb::{RetentionConfig, SeriesId, Tier, TsdbStore};

/// Generates an adversarial (timestamps, values) series: mixed cadence
/// regimes and value populations chosen to stress every encoder path.
fn adversarial_series(g: &mut Gen) -> Vec<(i64, f64)> {
    let len = g.usize_range(1, 400);
    let mut t: i64 = g.below(1 << 40) as i64 - (1 << 39);
    let mut out = Vec::with_capacity(len);
    let mut value = g.f64_range(-1e6, 1e6);
    for _ in 0..len {
        // Timestamp: mostly regular cadence, sometimes jittered,
        // sometimes a wild jump (even backwards — the codec must round
        // trip out-of-order stamps even though the store never emits
        // them).
        let dt: i64 = if g.chance(0.7) {
            30_000_000
        } else if g.chance(0.5) {
            g.below(2_000_000) as i64 - 1_000_000
        } else {
            g.below(1 << 35) as i64 - (1 << 34)
        };
        t = t.wrapping_add(dt);
        // Value population: constant runs, sign flips, denormals, zeros,
        // huge magnitudes, and small drifts.
        value = if g.chance(0.35) {
            value // constant run: XOR == 0 path
        } else if g.chance(0.25) {
            -value // alternating signs: sign-bit-only XOR
        } else if g.chance(0.15) {
            let denormal = f64::from_bits(g.below(1 << 52));
            if g.chance(0.5) {
                denormal
            } else {
                -denormal
            }
        } else if g.chance(0.1) {
            [0.0, -0.0, f64::MAX, f64::MIN, f64::MIN_POSITIVE, 1e300][g.usize_range(0, 5)]
        } else {
            value + g.f64_range(-1.0, 1.0)
        };
        out.push((t, value));
    }
    out
}

#[test]
fn encode_decode_is_bit_exact_on_adversarial_series() {
    check(300, 0x05DB_75DB, |g| {
        let series = adversarial_series(g);
        let mut enc = ChunkEncoder::new();
        for &(t, v) in &series {
            enc.push(t, v);
        }
        let chunk = enc.finish();
        let decoded = chunk.decode().expect("well-formed chunk decodes");
        assert_eq!(decoded.len(), series.len());
        for (i, (orig, got)) in series.iter().zip(&decoded).enumerate() {
            assert_eq!(orig.0, got.0, "timestamp {i} differs");
            assert_eq!(
                orig.1.to_bits(),
                got.1.to_bits(),
                "value {i} not bit-exact: {} vs {}",
                orig.1,
                got.1
            );
        }
    });
}

#[test]
fn store_round_trips_what_it_ingests() {
    // Through the full store path (chunk sealing at odd boundaries
    // included), every retained sample comes back bit-exact.
    check(60, 0xC0FFEE, |g| {
        let cfg = RetentionConfig {
            chunk_samples: g.usize_range(3, 50),
            raw_chunks_max: 1000, // no eviction: everything retained
            ..RetentionConfig::default()
        };
        let store = TsdbStore::new(cfg);
        let id = SeriesId::new("prop", &[]);
        let mut series = adversarial_series(g);
        // The store's query path returns samples in append order per
        // chunk; keep timestamps strictly increasing so select's window
        // filter can't reorder relative to append order.
        series.sort_by_key(|&(t, _)| t);
        series.dedup_by_key(|&mut (t, _)| t);
        for &(t, v) in &series {
            store.append(&id, t, v);
        }
        let got = store.select("prop", &[], i64::MIN, i64::MAX);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.len(), series.len());
        for (orig, s) in series.iter().zip(&got[0].1) {
            assert_eq!(orig.0, s.t_us);
            assert_eq!(orig.1.to_bits(), s.value.to_bits());
        }
    });
}

#[test]
fn rollup_quantiles_match_nearest_rank_within_alpha() {
    check(40, 0xA11A, |g| {
        let store = TsdbStore::default();
        let id = SeriesId::new("q", &[]);
        // Positive values only: DDSketch relative-error bounds are
        // defined on magnitudes, and nearest-rank over mixed-sign data
        // can cross zero where relative error is unbounded.
        let n = g.usize_range(50, 500);
        let values: Vec<f64> = (0..n).map(|_| g.f64_range(1e-3, 1e4)).collect();
        for (i, &v) in values.iter().enumerate() {
            // 10 Hz keeps a few hundred samples inside one 5-min bucket.
            store.append(&id, i as i64 * 100_000, v);
        }
        let rollups = store.select_rollup("q", &[], Tier::Coarse5m, i64::MIN, i64::MAX);
        let buckets = &rollups[0].1;
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, n as u64, "every sample lands in some bucket");

        let mut sorted = values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let alpha = store.config().sketch_alpha;
        // Single-bucket case (n <= 3000 at 10 Hz < 5 min): compare the
        // bucket sketch against the exact nearest-rank quantile.
        if buckets.len() == 1 {
            for q in [0.1, 0.5, 0.9, 0.99] {
                let k = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = sorted[k - 1];
                let got = buckets[0].sketch.quantile(q);
                let rel = (got - exact).abs() / exact.abs();
                assert!(
                    rel <= alpha + 1e-9,
                    "q={q}: sketch {got} vs exact {exact} (rel {rel} > alpha {alpha})"
                );
            }
            // min/max/sum aggregates are exact.
            assert_eq!(buckets[0].min, sorted[0]);
            assert_eq!(buckets[0].max, sorted[n - 1]);
            let sum: f64 = values.iter().sum();
            assert!((buckets[0].sum - sum).abs() <= 1e-9 * sum.abs());
        }
    });
}

#[test]
fn regular_telemetry_compresses_at_least_5x() {
    // The shape the fleet actually produces: fixed 30 s cadence,
    // slowly-drifting SoC-like values, ingested through the telemetry
    // quantizer (as the event sinks do). The compression floor the
    // telemetry store is designed around.
    check(20, 0xBEEF, |g| {
        let store = TsdbStore::default();
        let id = SeriesId::new("soc", &[]);
        let n = g.usize_range(500, 3000);
        let mut soc = g.f64_range(0.5, 1.0);
        for i in 0..n {
            soc = (soc - g.f64_range(0.0, 2e-4)).max(0.0);
            store.append(
                &id,
                i as i64 * 30_000_000,
                sdb_tsdb::quantize(soc, sdb_tsdb::TELEMETRY_MANTISSA_BITS),
            );
        }
        let st = store.stats();
        assert!(
            st.compression_ratio() >= 5.0,
            "drifting 30 s telemetry must compress >= 5x, got {:.2} ({} samples, {} bytes)",
            st.compression_ratio(),
            st.raw_samples,
            st.compressed_bytes
        );
        // Quantization bounds relative error at 2^-21.
        let samples = store.select("soc", &[], i64::MIN, i64::MAX);
        for s in &samples[0].1 {
            assert!(s.value >= 0.0 && s.value <= 1.0 + 1e-6);
        }
    });
}
