//! Seeded workload trace generators.
//!
//! A trace is a sequence of `(duration, load power, external power)`
//! segments — the same shape as the paper's 100 Hz power-meter captures,
//! at coarser granularity. All generators are seeded and deterministic so
//! experiments are repeatable ("repeatable experiments that helped us in
//! debugging SDB policies", Section 4.2).

use crate::device::{Activity, DeviceClass, DevicePower};
use sdb_rng::DetRng;

/// One constant-power segment of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Segment duration, seconds.
    pub dur_s: f64,
    /// System load, watts.
    pub load_w: f64,
    /// External supply power available, watts (0 = unplugged).
    pub external_w: f64,
}

/// A workload trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single constant-load segment.
    #[must_use]
    pub fn constant(load_w: f64, dur_s: f64) -> Self {
        let mut t = Self::new();
        t.push(load_w, 0.0, dur_s);
        t
    }

    /// Appends a segment.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn push(&mut self, load_w: f64, external_w: f64, dur_s: f64) {
        assert!(load_w.is_finite() && load_w >= 0.0, "bad load: {load_w}");
        assert!(
            external_w.is_finite() && external_w >= 0.0,
            "bad external: {external_w}"
        );
        assert!(dur_s.is_finite() && dur_s > 0.0, "bad duration: {dur_s}");
        self.points.push(TracePoint {
            dur_s,
            load_w,
            external_w,
        });
    }

    /// Appends another trace.
    pub fn extend(&mut self, other: &Trace) {
        self.points.extend_from_slice(&other.points);
    }

    /// The segments.
    #[must_use]
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Total duration, seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.points.iter().map(|p| p.dur_s).sum()
    }

    /// Total load energy, joules.
    #[must_use]
    pub fn load_energy_j(&self) -> f64 {
        self.points.iter().map(|p| p.load_w * p.dur_s).sum()
    }

    /// Mean load power, watts.
    #[must_use]
    pub fn mean_load_w(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.load_energy_j() / d
        } else {
            0.0
        }
    }

    /// Peak load power, watts.
    #[must_use]
    pub fn peak_load_w(&self) -> f64 {
        self.points.iter().map(|p| p.load_w).fold(0.0, f64::max)
    }

    /// Serializes the trace as CSV (`dur_s,load_w,external_w` with a
    /// header row) — the interchange format for captured power-meter
    /// traces.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dur_s,load_w,external_w\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{}\n", p.dur_s, p.load_w, p.external_w));
        }
        out
    }

    /// Parses a trace from the CSV format written by [`Trace::to_csv`].
    /// The `external_w` column is optional (defaults to 0); a header row
    /// is skipped if present; blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut t = Trace::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Header row: the first field of the first line is not numeric.
            if lineno == 0
                && line
                    .split(',')
                    .next()
                    .is_some_and(|f| f.trim().parse::<f64>().is_err())
            {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 2 || fields.len() > 3 {
                return Err(format!(
                    "line {}: expected 2–3 fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let parse = |s: &str, name: &str| -> Result<f64, String> {
                s.parse::<f64>()
                    .map_err(|_| format!("line {}: bad {name} `{s}`", lineno + 1))
            };
            let dur_s = parse(fields[0], "dur_s")?;
            let load_w = parse(fields[1], "load_w")?;
            let external_w = if fields.len() == 3 {
                parse(fields[2], "external_w")?
            } else {
                0.0
            };
            if !(dur_s.is_finite() && dur_s > 0.0 && load_w >= 0.0 && external_w >= 0.0) {
                return Err(format!("line {}: values out of range", lineno + 1));
            }
            t.push(load_w, external_w, dur_s);
        }
        if t.points.is_empty() {
            return Err("trace contains no segments".to_owned());
        }
        Ok(t)
    }

    /// Splits every segment into sub-segments no longer than `max_dt_s`
    /// (simulation granularity control).
    #[must_use]
    pub fn resampled(&self, max_dt_s: f64) -> Trace {
        assert!(max_dt_s > 0.0);
        let mut out = Trace::new();
        for p in &self.points {
            let mut remaining = p.dur_s;
            while remaining > 1e-9 {
                let dt = remaining.min(max_dt_s);
                out.push(p.load_w, p.external_w, dt);
                remaining -= dt;
            }
        }
        out
    }
}

/// The Figure 13 watch day. Trace hour 0 is the user's wake-up: hours
/// 0–16 are the waking day of message checking (with the one-hour GPS run
/// starting at `run_hour`, the paper's hour 9), hours 16–24 are the idle
/// night. Pass `None` for the counterfactual day without a run.
#[must_use]
pub fn watch_day(seed: u64, run_hour: Option<f64>) -> Trace {
    let dev = DevicePower::for_class(DeviceClass::Watch);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut t = Trace::new();
    // Minute-granularity day.
    for minute in 0..(24 * 60) {
        let hour = minute as f64 / 60.0;
        let in_run = run_hour.is_some_and(|rh| hour >= rh && hour < rh + 1.0);
        let load = if in_run {
            // GPS tracking with occasional screen glances.
            dev.draw_w(Activity::GpsTracking) * rng.f64_range(0.9, 1.25)
        } else if hour >= 16.0 {
            // Night: idle with rare sync spikes.
            if rng.chance(0.02) {
                dev.draw_w(Activity::Network) * 0.6
            } else {
                dev.draw_w(Activity::Idle)
            }
        } else {
            // Waking day: message checking — mostly idle-with-glances,
            // frequent short interactive bursts.
            if rng.chance(0.45) {
                dev.draw_w(Activity::Interactive) * rng.f64_range(0.7, 1.3)
            } else {
                dev.draw_w(Activity::Idle) * rng.f64_range(1.0, 2.0)
            }
        };
        t.push(load, 0.0, 60.0);
    }
    t
}

/// A typical smartphone day (the paper's Snapdragon 800 platform): night
/// idle, a navigation burst on the morning commute, mixed
/// interactive/network use through the day, and streaming in the evening.
/// Trace hour 0 is midnight.
#[must_use]
pub fn phone_day(seed: u64) -> Trace {
    let dev = DevicePower::for_class(DeviceClass::Phone);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut t = Trace::new();
    for minute in 0..(24 * 60) {
        let hour = minute as f64 / 60.0;
        let load = if !(7.0..23.5).contains(&hour) {
            // Night: idle with rare sync wakes.
            if rng.chance(0.03) {
                dev.draw_w(Activity::Network) * 0.5
            } else {
                dev.draw_w(Activity::Idle)
            }
        } else if (8.0..8.5).contains(&hour) || (17.5..18.0).contains(&hour) {
            // Commutes: turn-by-turn navigation.
            dev.draw_w(Activity::GpsTracking) * rng.f64_range(0.9, 1.2)
        } else if (20.0..22.0).contains(&hour) {
            // Evening streaming (radio duty-cycled, display dimmed).
            dev.draw_w(Activity::Network) * rng.f64_range(0.55, 0.75)
        } else if rng.chance(0.22) {
            // Pocket time with periodic checks.
            dev.draw_w(Activity::Interactive) * rng.f64_range(0.7, 1.3)
        } else {
            dev.draw_w(Activity::Idle) * rng.f64_range(1.0, 2.5)
        };
        t.push(load, 0.0, 60.0);
    }
    t
}

/// Tablet mixed-use session alternating the given activities, with jitter.
#[must_use]
pub fn tablet_session(seed: u64, activities: &[Activity], segment_s: f64, total_s: f64) -> Trace {
    assert!(!activities.is_empty(), "need at least one activity");
    let dev = DevicePower::for_class(DeviceClass::Tablet);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut t = Trace::new();
    let mut elapsed = 0.0;
    let mut idx = 0usize;
    while elapsed < total_s {
        let dur = segment_s.min(total_s - elapsed);
        let base = dev.draw_w(activities[idx % activities.len()]);
        t.push(base * rng.f64_range(0.85, 1.15), 0.0, dur);
        elapsed += dur;
        idx += 1;
    }
    t
}

/// The named 2-in-1 workloads of Figure 14's x-axis.
#[must_use]
pub fn two_in_one_workloads(seed: u64) -> Vec<(&'static str, Trace)> {
    let mk = |s: u64, acts: &[Activity]| tablet_session(seed ^ s, acts, 300.0, 4.0 * 3600.0);
    vec![
        ("Email", mk(1, &[Activity::Network, Activity::Idle])),
        (
            "Browsing",
            mk(2, &[Activity::Network, Activity::Interactive]),
        ),
        ("Office", mk(3, &[Activity::Interactive, Activity::Idle])),
        (
            "Video",
            mk(
                4,
                &[Activity::Network, Activity::Compute, Activity::Network],
            ),
        ),
        (
            "Development",
            mk(5, &[Activity::Compute, Activity::Interactive]),
        ),
        ("Gaming", mk(6, &[Activity::Compute])),
        (
            "Conferencing",
            mk(
                7,
                &[Activity::Network, Activity::Network, Activity::Interactive],
            ),
        ),
        (
            "Mixed",
            mk(
                8,
                &[
                    Activity::Network,
                    Activity::Compute,
                    Activity::Interactive,
                    Activity::Idle,
                ],
            ),
        ),
    ]
}

/// A charging session: the device rests at light load while `external_w`
/// is available for `dur_s`.
#[must_use]
pub fn charging_session(external_w: f64, idle_load_w: f64, dur_s: f64) -> Trace {
    let mut t = Trace::new();
    t.push(idle_load_w, external_w, dur_s);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_day_shape() {
        let t = watch_day(7, Some(9.0));
        assert_eq!(t.points().len(), 24 * 60);
        assert!((t.duration_s() - 86_400.0).abs() < 1e-6);
        // The day must demand slightly more than the 2×200 mAh pack
        // (≈1.5 Wh) holds — the scenario's point is that the pack dies
        // before the day ends, with the policy deciding *when*.
        let wh = t.load_energy_j() / 3600.0;
        assert!(wh > 1.3 && wh < 2.2, "day = {wh} Wh");
    }

    #[test]
    fn run_hour_is_the_peak() {
        let t = watch_day(7, Some(9.0));
        let pts = t.points();
        let hour_energy = |h: usize| -> f64 {
            pts[h * 60..(h + 1) * 60]
                .iter()
                .map(|p| p.load_w * p.dur_s)
                .sum()
        };
        let run = hour_energy(9);
        for h in 0..24 {
            if h != 9 {
                assert!(run > hour_energy(h), "hour {h} out-draws the run");
            }
        }
    }

    #[test]
    fn no_run_day_is_cheaper() {
        let with = watch_day(7, Some(9.0));
        let without = watch_day(7, None);
        assert!(with.load_energy_j() > without.load_energy_j());
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(watch_day(42, Some(9.0)), watch_day(42, Some(9.0)));
        assert_ne!(watch_day(42, Some(9.0)), watch_day(43, Some(9.0)));
    }

    #[test]
    fn phone_day_fits_a_phone_battery() {
        let t = phone_day(11);
        assert!((t.duration_s() - 86_400.0).abs() < 1e-6);
        // A heavy-use day on a 3–4 Ah phone (11–15 Wh): uses most of it.
        let wh = t.load_energy_j() / 3600.0;
        assert!(wh > 6.0 && wh < 14.0, "day = {wh} Wh");
        // Commute navigation is the daytime peak.
        let pts = t.points();
        let hour_mean = |h: f64| -> f64 {
            let s = (h * 60.0) as usize;
            pts[s..s + 30].iter().map(|p| p.load_w).sum::<f64>() / 30.0
        };
        assert!(hour_mean(8.0) > 2.0 * hour_mean(14.0));
        assert!(hour_mean(3.0) < 0.2, "night is quiet");
    }

    #[test]
    fn tablet_session_respects_total() {
        let t = tablet_session(1, &[Activity::Network, Activity::Compute], 300.0, 3600.0);
        assert!((t.duration_s() - 3600.0).abs() < 1e-6);
        assert!(t.mean_load_w() > 3.0 && t.mean_load_w() < 20.0);
    }

    #[test]
    fn two_in_one_workloads_vary() {
        let wl = two_in_one_workloads(9);
        assert_eq!(wl.len(), 8);
        let gaming = wl.iter().find(|(n, _)| *n == "Gaming").unwrap();
        let email = wl.iter().find(|(n, _)| *n == "Email").unwrap();
        assert!(gaming.1.mean_load_w() > 1.5 * email.1.mean_load_w());
    }

    #[test]
    fn resample_preserves_energy_and_duration() {
        let t = Trace::constant(5.0, 1000.0);
        let r = t.resampled(60.0);
        assert!((r.duration_s() - 1000.0).abs() < 1e-6);
        assert!((r.load_energy_j() - 5000.0).abs() < 1e-6);
        assert!(r.points().iter().all(|p| p.dur_s <= 60.0 + 1e-9));
    }

    #[test]
    fn trace_stats() {
        let mut t = Trace::new();
        t.push(2.0, 0.0, 10.0);
        t.push(4.0, 0.0, 10.0);
        assert!((t.mean_load_w() - 3.0).abs() < 1e-12);
        assert_eq!(t.peak_load_w(), 4.0);
        assert!((t.load_energy_j() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn csv_roundtrip() {
        let original = watch_day(3, Some(9.0));
        let csv = original.to_csv();
        let parsed = Trace::from_csv(&csv).unwrap();
        assert_eq!(parsed.points().len(), original.points().len());
        assert!((parsed.load_energy_j() - original.load_energy_j()).abs() < 1e-6);
    }

    #[test]
    fn csv_parsing_flexibility() {
        let t =
            Trace::from_csv("# captured 100 Hz, downsampled\n60, 2.5\n30, 1.0, 5.0\n\n").unwrap();
        assert_eq!(t.points().len(), 2);
        assert_eq!(t.points()[0].external_w, 0.0);
        assert_eq!(t.points()[1].external_w, 5.0);
    }

    #[test]
    fn csv_parse_errors() {
        assert!(Trace::from_csv("").is_err());
        assert!(Trace::from_csv("dur_s,load_w\n").is_err());
        assert!(Trace::from_csv("60,abc")
            .unwrap_err()
            .contains("bad load_w"));
        assert!(Trace::from_csv("60").unwrap_err().contains("expected 2"));
        assert!(Trace::from_csv("-1,2.0")
            .unwrap_err()
            .contains("out of range"));
        assert!(Trace::from_csv("1,2,3,4")
            .unwrap_err()
            .contains("expected 2"));
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn rejects_zero_duration() {
        let mut t = Trace::new();
        t.push(1.0, 0.0, 0.0);
    }
}
