//! Device power models and workload trace generation.
//!
//! The paper instruments three development platforms — a Core i5 2-in-1
//! tablet, a Snapdragon 800 phone, and a Snapdragon 200 watch — with 100 Hz
//! power meters and feeds the measured draw into the battery emulator
//! (Section 4.3). We have no instrumented hardware, so this crate generates
//! synthetic traces with the same structure and magnitudes:
//!
//! * [`device`] — per-platform component power models (idle, display,
//!   radio, GPS, CPU).
//! * [`cpu`] — the turbo-capable CPU model with the three Intel power
//!   levels (Section 5.1's discharging scenario) and latency/energy
//!   outcomes for network- vs compute-bottlenecked tasks (Figure 12).
//! * [`traces`] — seeded trace generators for the Section 5 scenarios: the
//!   watch day with its hour-9 run (Figure 13), tablet application mixes,
//!   2-in-1 docked sessions (Figure 14), and charging sessions.
//! * [`behavior`] — Markov-chain user simulation producing *varied*
//!   multi-day usage, for exercising the learning components.

//! # Example
//!
//! ```
//! use sdb_workloads::traces::watch_day;
//!
//! let day = watch_day(13, Some(9.0));
//! assert_eq!(day.duration_s(), 86_400.0);
//! // The run hour dominates the day's draw.
//! assert!(day.peak_load_w() > 5.0 * day.mean_load_w());
//! ```

pub mod behavior;
pub mod cpu;
pub mod device;
pub mod traces;

pub use cpu::{PowerLevel, Task, TaskOutcome, TurboCpu};
pub use device::{Activity, DeviceClass, DevicePower};
pub use traces::{Trace, TracePoint};
