//! Markov-chain user-behavior simulation.
//!
//! The fixed daily traces in [`crate::traces`] reproduce the paper's
//! figures; this module generates *varied* multi-day usage for testing the
//! learning components (predictor, autopilot): a user whose activity
//! evolves as a Markov chain over activity states, with time-of-day
//! preferences — some days have the run, some don't, timings drift.

use crate::device::{Activity, DeviceClass, DevicePower};
use crate::traces::Trace;
use sdb_rng::DetRng;

/// A user archetype: base transition tendencies plus scheduled habits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserArchetype {
    /// Device the user carries.
    pub device: DeviceClass,
    /// Hour the user wakes (trace hours are absolute from midnight).
    pub wake_hour: f64,
    /// Hour the user sleeps.
    pub sleep_hour: f64,
    /// Preferred hour for the daily high-power habit (run/gaming/nav).
    pub habit_hour: f64,
    /// Probability the habit happens on a given day.
    pub habit_probability: f64,
    /// Jitter applied to the habit start, hours.
    pub habit_jitter_h: f64,
    /// Probability per minute of switching activity while awake.
    pub restlessness: f64,
}

impl UserArchetype {
    /// The watch-wearing runner of Section 5.2.
    #[must_use]
    pub fn runner() -> Self {
        Self {
            device: DeviceClass::Watch,
            wake_hour: 7.0,
            sleep_hour: 23.0,
            habit_hour: 16.0,
            habit_probability: 0.8,
            habit_jitter_h: 1.0,
            restlessness: 0.35,
        }
    }

    /// A commuting phone user (navigation habit on the commute).
    #[must_use]
    pub fn commuter() -> Self {
        Self {
            device: DeviceClass::Phone,
            wake_hour: 6.5,
            sleep_hour: 23.5,
            habit_hour: 8.0,
            habit_probability: 0.95,
            habit_jitter_h: 0.25,
            restlessness: 0.25,
        }
    }
}

/// Generates `days` consecutive days of minute-granularity usage for the
/// archetype. Deterministic per `(archetype, seed)`.
#[must_use]
pub fn simulate_days(archetype: &UserArchetype, days: u32, seed: u64) -> Vec<Trace> {
    let dev = DevicePower::for_class(archetype.device);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(days as usize);
    for _day in 0..days {
        let habit_today = rng.chance(archetype.habit_probability);
        let habit_start = archetype.habit_hour
            + rng.f64_range(-archetype.habit_jitter_h, archetype.habit_jitter_h);
        let mut state = Activity::Idle;
        let mut t = Trace::new();
        for minute in 0..(24 * 60) {
            let hour = minute as f64 / 60.0;
            let awake = hour >= archetype.wake_hour && hour < archetype.sleep_hour;
            let in_habit = habit_today && hour >= habit_start && hour < habit_start + 1.0;
            if in_habit {
                state = Activity::GpsTracking;
            } else if !awake {
                state = Activity::Idle;
            } else if rng.chance(archetype.restlessness) {
                // Markov step over the waking activities.
                state = match (state, rng.below(10)) {
                    (Activity::Idle, 0..=1) => Activity::Interactive,
                    (Activity::Idle, 2) => Activity::Network,
                    (Activity::Idle, _) => Activity::Idle,
                    (Activity::Interactive, 0..=5) => Activity::Idle,
                    (Activity::Interactive, 6..=7) => Activity::Network,
                    (Activity::Interactive, _) => Activity::Interactive,
                    (Activity::Network, 0..=5) => Activity::Idle,
                    (Activity::Network, 6) => Activity::Interactive,
                    (Activity::Network, 7) => Activity::Compute,
                    (Activity::Network, _) => Activity::Network,
                    (Activity::Compute, 0..=5) => Activity::Idle,
                    (Activity::Compute, _) => Activity::Network,
                    (Activity::GpsTracking, _) => Activity::Idle,
                };
            }
            let load = dev.draw_w(state) * rng.f64_range(0.85, 1.15);
            t.push(load, 0.0, 60.0);
        }
        out.push(t);
    }
    out
}

/// Mean hourly power of a day trace (24 buckets) — the predictor's input.
///
/// # Panics
///
/// Panics if the trace is not a minute-granularity 24 h day.
#[must_use]
pub fn hourly_profile(day: &Trace) -> [f64; 24] {
    assert_eq!(day.points().len(), 24 * 60, "expected a minute-level day");
    let mut out = [0.0; 24];
    for (h, bucket) in out.iter_mut().enumerate() {
        *bucket = day.points()[h * 60..(h + 1) * 60]
            .iter()
            .map(|p| p.load_w)
            .sum::<f64>()
            / 60.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_days(&UserArchetype::runner(), 3, 9);
        let b = simulate_days(&UserArchetype::runner(), 3, 9);
        assert_eq!(a, b);
        let c = simulate_days(&UserArchetype::runner(), 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn days_vary_but_share_structure() {
        let days = simulate_days(&UserArchetype::runner(), 10, 42);
        assert_eq!(days.len(), 10);
        let energies: Vec<f64> = days.iter().map(Trace::load_energy_j).collect();
        let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = energies.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "days must differ");
        // Nights are always quiet.
        for day in &days {
            let profile = hourly_profile(day);
            assert!(profile[2] < 0.05, "night hour draws {}", profile[2]);
        }
    }

    #[test]
    fn habit_appears_at_roughly_the_habit_hour() {
        let arch = UserArchetype::runner();
        let days = simulate_days(&arch, 20, 7);
        let mut habit_days = 0;
        for day in &days {
            let profile = hourly_profile(day);
            // Any hour near the habit drawing GPS-level power?
            let window = 15..=18usize;
            if window.clone().any(|h| profile[h] > 0.3) {
                habit_days += 1;
                // And it is within the jittered window.
                let peak_hour =
                    (0..24).max_by(|&a, &b| profile[a].partial_cmp(&profile[b]).expect("finite"));
                assert!(window.contains(&peak_hour.expect("nonempty")));
            }
        }
        // ~80 % of days have the habit.
        assert!(
            (12..=20).contains(&habit_days),
            "habit on {habit_days} days"
        );
    }

    #[test]
    fn commuter_uses_a_phone_scale_budget() {
        let days = simulate_days(&UserArchetype::commuter(), 3, 5);
        for day in &days {
            let wh = day.load_energy_j() / 3600.0;
            assert!(wh > 2.0 && wh < 18.0, "day = {wh} Wh");
        }
    }

    #[test]
    #[should_panic(expected = "minute-level day")]
    fn hourly_profile_rejects_wrong_shape() {
        let _ = hourly_profile(&Trace::constant(1.0, 60.0));
    }
}
