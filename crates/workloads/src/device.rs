//! Per-platform component power models.
//!
//! Matches the paper's three platforms (Section 4.3): a Core i5 "2-in-1"
//! tablet (12-inch display), a Snapdragon 800 phone, and a Snapdragon 200
//! smart-watch. Component magnitudes follow published measurement studies
//! of these device classes.

/// The device classes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Core i5 2-in-1 tablet, 12" display, 4 GB DRAM, 128 GB SSD.
    Tablet,
    /// Snapdragon 800 development phone, 4" display.
    Phone,
    /// Snapdragon 200 smart-watch class board.
    Watch,
}

/// What the device is doing (drives the component mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Screen off, background sync only.
    Idle,
    /// Screen on, light interaction (messaging, reading).
    Interactive,
    /// Network-heavy foreground use (browsing, calls, streaming).
    Network,
    /// Local compute/GPU-heavy use (gaming, rendering).
    Compute,
    /// GPS tracking with the screen on intermittently (running/cycling).
    GpsTracking,
}

/// Component power model for one platform, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePower {
    /// Platform.
    pub class: DeviceClass,
    /// Floor power with screen off.
    pub idle_w: f64,
    /// Display at typical brightness.
    pub display_w: f64,
    /// Radio actively transferring.
    pub radio_w: f64,
    /// GPS receiver tracking.
    pub gps_w: f64,
    /// CPU/GPU at the sustained (long-term) level.
    pub cpu_sustained_w: f64,
    /// CPU/GPU burst ceiling.
    pub cpu_burst_w: f64,
}

impl DevicePower {
    /// The component model for a device class.
    #[must_use]
    pub fn for_class(class: DeviceClass) -> Self {
        match class {
            DeviceClass::Tablet => Self {
                class,
                idle_w: 1.2,
                display_w: 3.5,
                radio_w: 1.4,
                gps_w: 0.0,
                cpu_sustained_w: 9.0,
                cpu_burst_w: 22.0,
            },
            DeviceClass::Phone => Self {
                class,
                idle_w: 0.10,
                display_w: 0.85,
                radio_w: 0.80,
                gps_w: 0.45,
                cpu_sustained_w: 2.2,
                cpu_burst_w: 4.5,
            },
            DeviceClass::Watch => Self {
                class,
                idle_w: 0.012,
                display_w: 0.085,
                radio_w: 0.090,
                // GPS tracking on the Snapdragon 200 class board keeps the
                // receiver, sensor fusion, and CPU all busy.
                gps_w: 0.250,
                cpu_sustained_w: 0.28,
                cpu_burst_w: 0.55,
            },
        }
    }

    /// Mean power draw for an activity, watts.
    #[must_use]
    pub fn draw_w(&self, activity: Activity) -> f64 {
        match activity {
            Activity::Idle => self.idle_w,
            Activity::Interactive => self.idle_w + self.display_w + 0.15 * self.cpu_sustained_w,
            Activity::Network => {
                self.idle_w + self.display_w + self.radio_w + 0.25 * self.cpu_sustained_w
            }
            Activity::Compute => self.idle_w + self.display_w + self.cpu_sustained_w,
            Activity::GpsTracking => {
                self.idle_w + 0.5 * self.display_w + self.gps_w + 0.9 * self.cpu_sustained_w
            }
        }
    }

    /// Peak power the device can ask for (burst CPU + everything on), watts.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.idle_w + self.display_w + self.radio_w + self.gps_w + self.cpu_burst_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_magnitudes_ordered() {
        let t = DevicePower::for_class(DeviceClass::Tablet);
        let p = DevicePower::for_class(DeviceClass::Phone);
        let w = DevicePower::for_class(DeviceClass::Watch);
        for a in [
            Activity::Idle,
            Activity::Interactive,
            Activity::Network,
            Activity::Compute,
        ] {
            assert!(t.draw_w(a) > p.draw_w(a), "{a:?}");
            assert!(p.draw_w(a) > w.draw_w(a), "{a:?}");
        }
    }

    #[test]
    fn activities_ordered_by_draw() {
        for class in [DeviceClass::Tablet, DeviceClass::Phone, DeviceClass::Watch] {
            let d = DevicePower::for_class(class);
            assert!(d.draw_w(Activity::Idle) < d.draw_w(Activity::Interactive));
            assert!(d.draw_w(Activity::Interactive) < d.draw_w(Activity::Network));
            assert!(d.draw_w(Activity::Network) < d.draw_w(Activity::Compute));
            assert!(d.peak_w() > d.draw_w(Activity::Compute));
        }
    }

    #[test]
    fn watch_gps_is_its_high_power_mode() {
        // The Section 5.2 premise: GPS tracking is the watch's demanding
        // workload, far above message checking.
        let w = DevicePower::for_class(DeviceClass::Watch);
        assert!(w.draw_w(Activity::GpsTracking) > 2.0 * w.draw_w(Activity::Interactive));
        assert!(w.draw_w(Activity::GpsTracking) > 10.0 * w.draw_w(Activity::Idle));
    }

    #[test]
    fn watch_day_scale_plausible() {
        // A 2×200 mAh watch (≈1.5 Wh) must survive a day of interactive use
        // plus an hour of GPS: mean draw must be tens of mW.
        let w = DevicePower::for_class(DeviceClass::Watch);
        let day_wh = (w.draw_w(Activity::Interactive) * 2.0
            + w.draw_w(Activity::Idle) * 21.0
            + w.draw_w(Activity::GpsTracking) * 1.0)
            .max(0.0);
        assert!(day_wh > 0.3 && day_wh < 1.6, "day ≈ {day_wh} Wh");
    }
}
