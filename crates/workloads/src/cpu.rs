//! Turbo-capable CPU model.
//!
//! "Modern Intel CPUs have three active power levels: Long term system
//! limit, burst limit and battery protection limit" (Section 5.1). SDB's
//! discharging scenario lets the OS unlock higher levels when the battery
//! pack can supply them. This module models a CPU with those levels and
//! computes latency/energy outcomes for the two extreme users of Figure
//! 12: network-bottlenecked and CPU/GPU-bottlenecked.

/// The three SDB performance-priority settings of Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerLevel {
    /// High power-density battery disabled; CPU told of reduced capacity.
    Low,
    /// Both batteries enabled at the high-energy cell's peak each (2× peak).
    Medium,
    /// Maximum possible power from both batteries.
    High,
}

impl PowerLevel {
    /// All levels in ascending order.
    pub const ALL: [PowerLevel; 3] = [PowerLevel::Low, PowerLevel::Medium, PowerLevel::High];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Low => "Low Power",
            Self::Medium => "Medium Power",
            Self::High => "High Power",
        }
    }
}

/// A task to run, characterized by its serial network time and its compute
/// work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Time the task spends waiting on the network (cannot be shortened by
    /// frequency), seconds.
    pub network_s: f64,
    /// Compute work in "reference seconds": time the compute part takes at
    /// the Low level.
    pub compute_ref_s: f64,
}

impl Task {
    /// A network-bottlenecked task (email, browsing, calls): mostly radio
    /// waits with light compute.
    #[must_use]
    pub fn network_bound(total_s: f64) -> Self {
        Self {
            network_s: 0.92 * total_s,
            compute_ref_s: 0.08 * total_s,
        }
    }

    /// A compute-bottlenecked task (gaming, rendering, PassMark/3DMark-like
    /// kernels): pure local work.
    #[must_use]
    pub fn compute_bound(total_s: f64) -> Self {
        Self {
            network_s: 0.0,
            compute_ref_s: total_s,
        }
    }
}

/// Outcome of running a task at one power level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOutcome {
    /// Wall-clock latency, seconds.
    pub latency_s: f64,
    /// Device energy consumed, joules (battery losses are accounted
    /// separately by the pack simulation).
    pub energy_j: f64,
    /// Peak power drawn, watts.
    pub peak_w: f64,
}

/// The turbo CPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboCpu {
    /// Package power at the Low level, watts.
    pub low_w: f64,
    /// Package power at the Medium level, watts.
    pub medium_w: f64,
    /// Package power at the High level, watts.
    pub high_w: f64,
    /// Power drawn while waiting on the network at the Low level, watts
    /// (interrupt handling, race-to-idle residue).
    pub wait_w: f64,
    /// Rest-of-device power (display, DRAM, radio) that runs for the whole
    /// task regardless of level, watts.
    pub rest_w: f64,
    /// Frequency-scaling exponent: perf ∝ (power)^exponent. Sub-linear —
    /// DVFS gives diminishing returns (P ≈ C·V²·f with V ∝ f).
    pub perf_exponent: f64,
    /// How much the network-wait power inflates per level step (higher
    /// turbo headroom keeps the package hotter during waits).
    pub wait_inflation: f64,
}

impl TurboCpu {
    /// A Core-class 2-in-1 CPU matching the paper's tablet: 9 W sustained,
    /// 18 W with both batteries, 27 W unrestricted.
    #[must_use]
    pub fn tablet() -> Self {
        Self {
            low_w: 9.0,
            medium_w: 18.0,
            high_w: 27.0,
            wait_w: 1.6,
            rest_w: 4.7,
            // 3× package power buys ≈ 1.35× performance — the ~26 % latency
            // gain the paper measures on PassMark/3DMark kernels.
            perf_exponent: 0.27,
            wait_inflation: 0.25,
        }
    }

    /// Package power at a level, watts.
    #[must_use]
    pub fn power_w(&self, level: PowerLevel) -> f64 {
        match level {
            PowerLevel::Low => self.low_w,
            PowerLevel::Medium => self.medium_w,
            PowerLevel::High => self.high_w,
        }
    }

    /// Performance (relative to Low) at a level: `(P/P_low)^exponent`.
    #[must_use]
    pub fn speedup(&self, level: PowerLevel) -> f64 {
        (self.power_w(level) / self.low_w).powf(self.perf_exponent)
    }

    /// Power burned while waiting on the network at a level, watts.
    #[must_use]
    pub fn wait_power_w(&self, level: PowerLevel) -> f64 {
        let steps = match level {
            PowerLevel::Low => 0.0,
            PowerLevel::Medium => 1.0,
            PowerLevel::High => 2.0,
        };
        self.wait_w * (1.0 + self.wait_inflation * steps)
    }

    /// Runs a task at a level.
    #[must_use]
    pub fn run(&self, task: Task, level: PowerLevel) -> TaskOutcome {
        let compute_s = task.compute_ref_s / self.speedup(level);
        let latency_s = task.network_s + compute_s;
        let energy_j = (self.power_w(level) + self.rest_w) * compute_s
            + (self.wait_power_w(level) + self.rest_w) * task.network_s;
        TaskOutcome {
            latency_s,
            energy_j,
            peak_w: self.power_w(level) + self.rest_w,
        }
    }

    /// Latency and energy of `task` at `level`, normalized to the Low
    /// level — the Figure 12 quantities.
    #[must_use]
    pub fn normalized(&self, task: Task, level: PowerLevel) -> (f64, f64) {
        let base = self.run(task, PowerLevel::Low);
        let out = self.run(task, level);
        (out.latency_s / base.latency_s, out.energy_j / base.energy_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_monotone_and_sublinear() {
        let cpu = TurboCpu::tablet();
        let m = cpu.speedup(PowerLevel::Medium);
        let h = cpu.speedup(PowerLevel::High);
        assert!(m > 1.0 && h > m);
        // 3× the power buys less than 3× the speed.
        assert!(h < 3.0);
    }

    #[test]
    fn figure_12_compute_bound_latency_gain() {
        // Paper: up to 26 % better scores on compute benchmarks at High.
        let cpu = TurboCpu::tablet();
        let task = Task::compute_bound(100.0);
        let (lat_high, energy_high) = cpu.normalized(task, PowerLevel::High);
        // ~26 % latency improvement at High.
        assert!(lat_high < 0.80, "latency ratio {lat_high}");
        assert!(lat_high > 0.68, "latency ratio {lat_high}");
        // Turbo on compute work costs energy (race-to-finish at f² cost),
        // but less than the naive P-ratio of 3×.
        assert!(
            energy_high > 1.0 && energy_high < 2.0,
            "energy ratio {energy_high}"
        );
    }

    #[test]
    fn figure_12_network_bound_wastes_energy() {
        // Paper: up to 20.6 % more energy at High with no noticeable
        // latency benefit for network-bottlenecked workloads.
        let cpu = TurboCpu::tablet();
        let task = Task::network_bound(100.0);
        let (lat_high, energy_high) = cpu.normalized(task, PowerLevel::High);
        assert!(lat_high > 0.90, "latency ratio {lat_high}");
        assert!(
            energy_high > 1.10 && energy_high < 1.30,
            "energy ratio {energy_high}"
        );
        // Medium sits between.
        let (_, energy_med) = cpu.normalized(task, PowerLevel::Medium);
        assert!(energy_med > 1.0 && energy_med < energy_high);
    }

    #[test]
    fn low_level_is_the_baseline() {
        let cpu = TurboCpu::tablet();
        for task in [Task::network_bound(50.0), Task::compute_bound(50.0)] {
            let (l, e) = cpu.normalized(task, PowerLevel::Low);
            assert!((l - 1.0).abs() < 1e-12);
            assert!((e - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn network_time_not_shortened_by_turbo() {
        let cpu = TurboCpu::tablet();
        let task = Task {
            network_s: 60.0,
            compute_ref_s: 0.0,
        };
        let low = cpu.run(task, PowerLevel::Low);
        let high = cpu.run(task, PowerLevel::High);
        assert_eq!(low.latency_s, high.latency_s);
        assert!(high.energy_j > low.energy_j);
    }

    #[test]
    fn peak_power_tracks_level() {
        let cpu = TurboCpu::tablet();
        let t = Task::compute_bound(10.0);
        assert_eq!(cpu.run(t, PowerLevel::High).peak_w, 27.0 + cpu.rest_w);
        assert_eq!(cpu.run(t, PowerLevel::Low).peak_w, 9.0 + cpu.rest_w);
    }
}
