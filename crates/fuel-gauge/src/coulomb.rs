//! Coulomb counting with realistic measurement imperfections.
//!
//! A coulomb counter integrates the current through a sense resistor. Real
//! counters are imperfect in three ways modeled here: the ADC quantizes
//! each current sample, the sense chain has a small offset (which
//! integrates into drift), and sampling happens at a finite rate.

/// A coulomb counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CoulombCounter {
    /// ADC resolution, amps per count.
    pub lsb_a: f64,
    /// Static sense offset, amps (integrates into drift).
    pub offset_a: f64,
    /// Net charge counted, coulombs (positive = discharged).
    net_c: f64,
    /// Total charge moved in the discharge direction, coulombs.
    discharged_c: f64,
    /// Total charge moved in the charge direction, coulombs.
    charged_c: f64,
}

impl CoulombCounter {
    /// Creates a counter with the given ADC resolution and offset.
    ///
    /// # Panics
    ///
    /// Panics if `lsb_a` is negative or non-finite.
    #[must_use]
    pub fn new(lsb_a: f64, offset_a: f64) -> Self {
        assert!(lsb_a.is_finite() && lsb_a >= 0.0, "bad lsb: {lsb_a}");
        assert!(offset_a.is_finite(), "bad offset: {offset_a}");
        Self {
            lsb_a,
            offset_a,
            net_c: 0.0,
            discharged_c: 0.0,
            charged_c: 0.0,
        }
    }

    /// An ideal counter (no quantization, no offset) for tests and
    /// baselines.
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(0.0, 0.0)
    }

    /// A prototype-grade counter: 1 mA resolution, 50 µA offset.
    #[must_use]
    pub fn prototype() -> Self {
        Self::new(0.001, 50e-6)
    }

    /// Records one current sample held for `dt_s` seconds
    /// (positive = discharge). Returns the *measured* current.
    pub fn sample(&mut self, current_a: f64, dt_s: f64) -> f64 {
        debug_assert!(current_a.is_finite() && dt_s >= 0.0);
        let measured = self.measure(current_a);
        let dq = measured * dt_s;
        self.net_c += dq;
        if dq >= 0.0 {
            self.discharged_c += dq;
        } else {
            self.charged_c += -dq;
        }
        measured
    }

    /// The measured value for a true current (quantization + offset), with
    /// no integration.
    #[must_use]
    pub fn measure(&self, current_a: f64) -> f64 {
        let with_offset = current_a + self.offset_a;
        if self.lsb_a > 0.0 {
            (with_offset / self.lsb_a).round() * self.lsb_a
        } else {
            with_offset
        }
    }

    /// Net counted charge, coulombs (positive = net discharge).
    #[must_use]
    pub fn net_c(&self) -> f64 {
        self.net_c
    }

    /// Total counted discharge throughput, coulombs.
    #[must_use]
    pub fn discharged_c(&self) -> f64 {
        self.discharged_c
    }

    /// Total counted charge throughput, coulombs.
    #[must_use]
    pub fn charged_c(&self) -> f64 {
        self.charged_c
    }

    /// Resets the net accumulator (e.g. on OCV recalibration), keeping
    /// lifetime throughput counters.
    pub fn reset_net(&mut self) {
        self.net_c = 0.0;
    }

    /// Raw accumulator state for snapshotting:
    /// `(net_c, discharged_c, charged_c)`.
    #[must_use]
    pub fn export_state(&self) -> (f64, f64, f64) {
        (self.net_c, self.discharged_c, self.charged_c)
    }

    /// Restores accumulators captured by [`CoulombCounter::export_state`].
    pub fn import_state(&mut self, net_c: f64, discharged_c: f64, charged_c: f64) {
        self.net_c = net_c;
        self.discharged_c = discharged_c;
        self.charged_c = charged_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_counter_is_exact() {
        let mut c = CoulombCounter::ideal();
        c.sample(2.0, 10.0);
        c.sample(-1.0, 5.0);
        assert!((c.net_c() - 15.0).abs() < 1e-12);
        assert!((c.discharged_c() - 20.0).abs() < 1e-12);
        assert!((c.charged_c() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_rounds_to_lsb() {
        let c = CoulombCounter::new(0.01, 0.0);
        assert!((c.measure(0.234) - 0.23).abs() < 1e-12);
        assert!((c.measure(0.235999) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn offset_integrates_into_drift() {
        let mut c = CoulombCounter::new(0.0, 0.001);
        // One hour at zero true current: 3.6 C of phantom discharge.
        for _ in 0..3600 {
            c.sample(0.0, 1.0);
        }
        assert!((c.net_c() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn prototype_error_small_at_real_currents() {
        let mut c = CoulombCounter::prototype();
        // 0.5 A for one hour = 1800 C true.
        for _ in 0..3600 {
            c.sample(0.5, 1.0);
        }
        let err = (c.net_c() - 1800.0).abs() / 1800.0;
        assert!(err < 0.01, "relative error {err}");
    }

    #[test]
    fn reset_keeps_lifetime_counters() {
        let mut c = CoulombCounter::ideal();
        c.sample(1.0, 10.0);
        c.reset_net();
        assert_eq!(c.net_c(), 0.0);
        assert!((c.discharged_c() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad lsb")]
    fn rejects_negative_lsb() {
        let _ = CoulombCounter::new(-1.0, 0.0);
    }
}
