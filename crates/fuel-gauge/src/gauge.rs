//! The per-battery fuel gauge.
//!
//! "The Fuel gauge keeps track of the state of charge (SoC) of the battery
//! by measuring the voltage across the battery terminals, and the current
//! flowing in and out of it" (Section 2.2). This module combines the
//! coulomb counter with OCV-based recalibration at rest and
//! measurement-based cycle counting, and produces the per-battery
//! [`BatteryStatus`] rows that `QueryBatteryStatus()` returns to the OS.

use crate::coulomb::CoulombCounter;
use sdb_battery_model::aging::CYCLE_CHARGE_THRESHOLD;
use sdb_battery_model::curves::CurveCursor;
use sdb_battery_model::spec::BatterySpec;
use sdb_observe::{Counter, ObsEvent, Observer};
use std::sync::Arc;

/// Configuration of one gauge instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeConfig {
    /// Current-measurement resolution, amps.
    pub current_lsb_a: f64,
    /// Current-sense offset, amps.
    pub current_offset_a: f64,
    /// Voltage-measurement resolution, volts.
    pub voltage_lsb_v: f64,
    /// Rest time after which an OCV recalibration is trusted, seconds.
    pub rest_recal_s: f64,
}

impl Default for GaugeConfig {
    fn default() -> Self {
        Self {
            current_lsb_a: 0.001,
            current_offset_a: 50e-6,
            voltage_lsb_v: 0.001,
            rest_recal_s: 1800.0,
        }
    }
}

/// A fault mode injected into the gauge's measurement path (chaos
/// testing). Faults corrupt what the gauge *reports*, never the cell
/// itself — exactly like a real broken sense line or flaky ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GaugeFault {
    /// The SoC estimate freezes at the value it had when the fault was
    /// installed (a hung gauge IC).
    StuckSoc,
    /// Current-sense bias that grows linearly for as long as the fault is
    /// active (thermal drift in the sense amplifier).
    BiasRamp {
        /// Bias growth rate, amps per hour of fault time.
        amps_per_hour: f64,
    },
    /// Quantization storm: current readings quantize at a multiple of the
    /// configured LSB (an ADC losing effective bits).
    QuantizationStorm {
        /// Multiplier on the configured current LSB (the 1 mA default LSB
        /// is used when the gauge was configured ideal).
        lsb_scale: f64,
    },
}

/// The status row for one battery, as returned by `QueryBatteryStatus()`
/// (Section 3.3: "an array with state of charge, terminal voltages and
/// cycle counts for each battery").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryStatus {
    /// Estimated state of charge, `[0, 1]`.
    pub soc: f64,
    /// Last measured terminal voltage, volts.
    pub terminal_v: f64,
    /// Measurement-based cycle count.
    pub cycle_count: u32,
    /// Last measured current, amps (positive = discharge).
    pub current_a: f64,
    /// Estimated remaining charge, amp-hours.
    pub remaining_ah: f64,
    /// Whether the battery is physically attached (detachable packs — a
    /// 2-in-1 keyboard base — may be absent).
    pub present: bool,
}

/// A per-battery fuel gauge.
#[derive(Debug, Clone)]
pub struct FuelGauge {
    config: GaugeConfig,
    counter: CoulombCounter,
    /// The cell's spec (for capacity and the OCP curve used in
    /// recalibration). Shared with the simulated cell instead of deep-
    /// copied per gauge.
    spec: Arc<BatterySpec>,
    /// Segment memo for the OCV-inversion recalibration lookup.
    ocp_cur: CurveCursor,
    /// Estimated SoC.
    soc_estimate: f64,
    /// Time spent at (near) zero current, seconds.
    rest_s: f64,
    /// Last measured terminal voltage.
    last_v: f64,
    /// Last measured current.
    last_i: f64,
    /// Gauge-side cycle counting: cumulative recharged fraction.
    cycle_accum: f64,
    /// Gauge-side cycle count.
    cycles: u32,
    /// SoC at the last OCV recalibration (capacity-learning anchor).
    anchor_soc: Option<f64>,
    /// Learned full capacity, amp-hours (EWMA; starts at the rated value).
    learned_capacity_ah: f64,
    /// Capacity observations folded into the estimate.
    capacity_observations: u32,
    /// Observability hook (disabled by default; the microcontroller
    /// installs its observer here).
    observer: Observer,
    /// Battery index used to label emitted events.
    battery_index: usize,
    /// Cached recalibration counter (registered on `set_observer`).
    recal_counter: Option<Counter>,
    /// Active injected fault, if any.
    fault: Option<GaugeFault>,
    /// Time the active fault has been installed, seconds.
    fault_elapsed_s: f64,
    /// SoC estimate captured when a [`GaugeFault::StuckSoc`] fault was
    /// installed.
    fault_frozen_soc: f64,
}

impl FuelGauge {
    /// Creates a gauge for a cell believed to start at `initial_soc`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_soc` is outside `[0, 1]`.
    #[must_use]
    pub fn new(spec: impl Into<Arc<BatterySpec>>, initial_soc: f64, config: GaugeConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "soc out of range: {initial_soc}"
        );
        let spec = spec.into();
        let last_v = spec.ocp.eval(initial_soc);
        let capacity = spec.capacity_ah;
        Self {
            counter: CoulombCounter::new(config.current_lsb_a, config.current_offset_a),
            config,
            spec,
            ocp_cur: CurveCursor::new(),
            soc_estimate: initial_soc,
            rest_s: 0.0,
            last_v,
            last_i: 0.0,
            cycle_accum: 0.0,
            cycles: 0,
            anchor_soc: None,
            learned_capacity_ah: capacity,
            capacity_observations: 0,
            observer: Observer::disabled(),
            battery_index: 0,
            recal_counter: None,
            fault: None,
            fault_elapsed_s: 0.0,
            fault_frozen_soc: 0.0,
        }
    }

    /// Installs (or with `None` clears) a measurement fault. Installing a
    /// fault resets its elapsed-time clock; [`GaugeFault::StuckSoc`]
    /// freezes the estimate at its current value.
    pub fn set_fault(&mut self, fault: Option<GaugeFault>) {
        self.fault = fault;
        self.fault_elapsed_s = 0.0;
        self.fault_frozen_soc = self.soc_estimate;
    }

    /// The active injected fault, if any.
    #[must_use]
    pub fn fault(&self) -> Option<GaugeFault> {
        self.fault
    }

    /// Installs the observability hook. Recalibrations emit
    /// [`ObsEvent::GaugeRecalibration`] labeled with `battery_index` and
    /// count into `sdb_gauge_recalibrations_total`.
    pub fn set_observer(&mut self, observer: Observer, battery_index: usize) {
        self.recal_counter = observer
            .registry()
            .map(|reg| reg.counter("sdb_gauge_recalibrations_total", &[]));
        self.observer = observer;
        self.battery_index = battery_index;
    }

    /// Feeds one measurement sample: true terminal voltage and current held
    /// for `dt_s`. The gauge quantizes both, integrates the current, and
    /// recalibrates from OCV when the cell has rested long enough.
    pub fn sample(&mut self, terminal_v: f64, current_a: f64, dt_s: f64) {
        debug_assert!(dt_s >= 0.0);
        // Sensor-level faults corrupt the raw reading before the ADC path.
        let current_a = match self.fault {
            Some(GaugeFault::BiasRamp { amps_per_hour }) => {
                self.fault_elapsed_s += dt_s;
                current_a + amps_per_hour * self.fault_elapsed_s / 3600.0
            }
            _ => current_a,
        };
        let mut measured_i = self.counter.sample(current_a, dt_s);
        // ADC-level faults corrupt the quantized measurement.
        if let Some(GaugeFault::QuantizationStorm { lsb_scale }) = self.fault {
            let base = if self.config.current_lsb_a > 0.0 {
                self.config.current_lsb_a
            } else {
                0.001
            };
            let lsb = base * lsb_scale;
            measured_i = (measured_i / lsb).round() * lsb;
        }
        self.last_i = measured_i;
        self.last_v = if self.config.voltage_lsb_v > 0.0 {
            (terminal_v / self.config.voltage_lsb_v).round() * self.config.voltage_lsb_v
        } else {
            terminal_v
        };
        // Coulomb integration into the SoC estimate, against the *learned*
        // capacity so state-of-health feedback keeps the estimate honest on
        // faded cells.
        let dsoc = measured_i * dt_s / 3600.0 / self.learned_capacity_ah;
        self.soc_estimate = (self.soc_estimate - dsoc).clamp(0.0, 1.0);
        // Gauge-side cycle counting per the paper's 80 % cumulative rule.
        if measured_i < 0.0 {
            self.cycle_accum += -dsoc;
            while self.cycle_accum >= CYCLE_CHARGE_THRESHOLD - 1e-12 {
                self.cycle_accum -= CYCLE_CHARGE_THRESHOLD;
                self.cycles += 1;
            }
        }
        // Rest detection and OCV recalibration.
        if measured_i.abs() < 0.002 * self.spec.capacity_ah {
            self.rest_s += dt_s;
            if self.rest_s >= self.config.rest_recal_s {
                if let Some(soc) = self.spec.ocp.invert_cached(&self.ocp_cur, self.last_v) {
                    let soc = soc.clamp(0.0, 1.0);
                    // Capacity learning: between two OCV anchors, the
                    // coulomb counter measured the true charge moved; the
                    // OCV tells us the true SoC swing. Their ratio is the
                    // cell's real capacity (gas-gauge "learning cycle").
                    if let Some(anchor) = self.anchor_soc {
                        let dsoc = anchor - soc; // positive when discharged
                        if dsoc.abs() > 0.3 {
                            let measured_ah = self.counter.net_c() / 3600.0;
                            let cap = measured_ah / dsoc;
                            if cap.is_finite()
                                && cap > 0.2 * self.spec.capacity_ah
                                && cap < 1.5 * self.spec.capacity_ah
                            {
                                let alpha = 0.35;
                                self.learned_capacity_ah =
                                    alpha * cap + (1.0 - alpha) * self.learned_capacity_ah;
                                self.capacity_observations += 1;
                            }
                        }
                    }
                    self.anchor_soc = Some(soc);
                    let soc_before = self.soc_estimate;
                    self.soc_estimate = soc;
                    self.counter.reset_net();
                    if let Some(c) = &self.recal_counter {
                        c.inc();
                    }
                    self.observer.emit(ObsEvent::GaugeRecalibration {
                        battery: self.battery_index,
                        soc_before,
                        soc_after: soc,
                    });
                }
                self.rest_s = 0.0;
            }
        } else {
            self.rest_s = 0.0;
        }
        // A stuck gauge pins the estimate at the frozen value; once the
        // fault clears, integration resumes from there (like an IC reset).
        if matches!(self.fault, Some(GaugeFault::StuckSoc)) {
            self.soc_estimate = self.fault_frozen_soc;
        }
    }

    /// Current status row.
    #[must_use]
    pub fn status(&self) -> BatteryStatus {
        BatteryStatus {
            soc: self.soc_estimate,
            terminal_v: self.last_v,
            cycle_count: self.cycles,
            current_a: self.last_i,
            remaining_ah: self.soc_estimate * self.learned_capacity_ah,
            present: true,
        }
    }

    /// Estimated state of charge.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.soc_estimate
    }

    /// Gauge-side cycle count.
    #[must_use]
    pub fn cycle_count(&self) -> u32 {
        self.cycles
    }

    /// The spec this gauge was configured with.
    #[must_use]
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Lifetime throughput counters (discharged, charged) in coulombs.
    #[must_use]
    pub fn throughput_c(&self) -> (f64, f64) {
        (self.counter.discharged_c(), self.counter.charged_c())
    }

    /// Learned full capacity, amp-hours. Equals the rated capacity until
    /// enough OCV-anchored swings have been observed to learn the real
    /// (possibly faded) value.
    #[must_use]
    pub fn learned_capacity_ah(&self) -> f64 {
        self.learned_capacity_ah
    }

    /// State of health: learned capacity over rated capacity.
    #[must_use]
    pub fn state_of_health(&self) -> f64 {
        self.learned_capacity_ah / self.spec.capacity_ah
    }

    /// Number of capacity observations folded into the learned estimate.
    #[must_use]
    pub fn capacity_observations(&self) -> u32 {
        self.capacity_observations
    }

    /// The ADC/recalibration configuration this gauge was built with.
    #[must_use]
    pub fn config(&self) -> GaugeConfig {
        self.config
    }

    /// Exports the gauge's full mutable state for bit-exact snapshotting.
    /// Configuration (ADC config, spec) and observability handles are not
    /// captured; the OCP curve cursor is a value-neutral cache.
    #[must_use]
    pub fn export_state(&self) -> GaugeStateSnapshot {
        let (net_c, discharged_c, charged_c) = self.counter.export_state();
        GaugeStateSnapshot {
            net_c,
            discharged_c,
            charged_c,
            soc_estimate: self.soc_estimate,
            rest_s: self.rest_s,
            last_v: self.last_v,
            last_i: self.last_i,
            cycle_accum: self.cycle_accum,
            cycles: self.cycles,
            anchor_soc: self.anchor_soc,
            learned_capacity_ah: self.learned_capacity_ah,
            capacity_observations: self.capacity_observations,
            fault: self.fault,
            fault_elapsed_s: self.fault_elapsed_s,
            fault_frozen_soc: self.fault_frozen_soc,
        }
    }

    /// Restores state captured by [`FuelGauge::export_state`].
    pub fn import_state(&mut self, snap: &GaugeStateSnapshot) {
        self.counter
            .import_state(snap.net_c, snap.discharged_c, snap.charged_c);
        self.soc_estimate = snap.soc_estimate;
        self.rest_s = snap.rest_s;
        self.last_v = snap.last_v;
        self.last_i = snap.last_i;
        self.cycle_accum = snap.cycle_accum;
        self.cycles = snap.cycles;
        self.anchor_soc = snap.anchor_soc;
        self.learned_capacity_ah = snap.learned_capacity_ah;
        self.capacity_observations = snap.capacity_observations;
        self.fault = snap.fault;
        self.fault_elapsed_s = snap.fault_elapsed_s;
        self.fault_frozen_soc = snap.fault_frozen_soc;
    }
}

/// Plain-data capture of one gauge's mutable state (see
/// [`FuelGauge::export_state`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStateSnapshot {
    /// Coulomb counter net charge, coulombs.
    pub net_c: f64,
    /// Lifetime discharge throughput, coulombs.
    pub discharged_c: f64,
    /// Lifetime charge throughput, coulombs.
    pub charged_c: f64,
    /// Estimated state of charge.
    pub soc_estimate: f64,
    /// Accumulated rest time toward OCV recalibration, seconds.
    pub rest_s: f64,
    /// Last measured (quantized) terminal voltage, volts.
    pub last_v: f64,
    /// Last measured current, amps.
    pub last_i: f64,
    /// Cumulative charge fraction toward the next gauge-side cycle.
    pub cycle_accum: f64,
    /// Gauge-side cycle count.
    pub cycles: u32,
    /// SoC anchor from the last OCV recalibration.
    pub anchor_soc: Option<f64>,
    /// Learned full capacity, amp-hours.
    pub learned_capacity_ah: f64,
    /// Capacity observations folded into the learned estimate.
    pub capacity_observations: u32,
    /// Active measurement fault, if any.
    pub fault: Option<GaugeFault>,
    /// Time the fault has been active, seconds.
    pub fault_elapsed_s: f64,
    /// SoC frozen by a stuck-SoC fault.
    pub fault_frozen_soc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::thevenin::TheveninCell;

    fn spec() -> BatterySpec {
        BatterySpec::from_chemistry("g", Chemistry::Type2CoStandard, 2.0)
    }

    fn ideal_config() -> GaugeConfig {
        GaugeConfig {
            current_lsb_a: 0.0,
            current_offset_a: 0.0,
            voltage_lsb_v: 0.0,
            rest_recal_s: 1800.0,
        }
    }

    #[test]
    fn ideal_gauge_tracks_true_soc() {
        let spec = spec();
        let mut cell = TheveninCell::new(spec.clone());
        let mut gauge = FuelGauge::new(spec, 1.0, ideal_config());
        for _ in 0..1800 {
            let out = cell.step_current(1.0, 1.0).unwrap();
            gauge.sample(out.terminal_v, 1.0, 1.0);
        }
        assert!((gauge.soc() - cell.soc()).abs() < 1e-9);
    }

    #[test]
    fn noisy_gauge_stays_close() {
        let spec = spec();
        let mut cell = TheveninCell::new(spec.clone());
        let mut gauge = FuelGauge::new(spec, 1.0, GaugeConfig::default());
        for _ in 0..3600 {
            let out = cell.step_current(0.5, 1.0).unwrap();
            gauge.sample(out.terminal_v, 0.5, 1.0);
        }
        assert!((gauge.soc() - cell.soc()).abs() < 0.01);
    }

    #[test]
    fn ocv_recalibration_fixes_drift() {
        let spec = spec();
        // A gauge with a large offset that has drifted.
        let mut gauge = FuelGauge::new(
            spec.clone(),
            0.9, // wrong belief; true cell is at 0.5
            GaugeConfig {
                current_offset_a: 0.0,
                ..ideal_config()
            },
        );
        let cell = TheveninCell::with_soc(spec, 0.5);
        // Rest long enough at the true OCV.
        let ocv = cell.ocv();
        for _ in 0..40 {
            gauge.sample(ocv, 0.0, 60.0);
        }
        assert!((gauge.soc() - 0.5).abs() < 0.02, "soc = {}", gauge.soc());
    }

    #[test]
    fn no_recalibration_while_loaded() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.9, ideal_config());
        // Heavy load for a long time: rest timer must never fire.
        for _ in 0..100 {
            gauge.sample(3.5, 2.0, 60.0);
        }
        // SoC fell by coulomb counting only (2 A × 100 min on 2 Ah ≫ full),
        // clamped at 0 — but not recalibrated upward from the sagged 3.5 V.
        assert!(gauge.soc() < 0.05);
    }

    #[test]
    fn gauge_counts_cycles_from_measured_charge() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.0, ideal_config());
        // Charge 1.6 Ah into the 2 Ah cell = 0.8 fraction → 1 cycle.
        for _ in 0..5760 {
            gauge.sample(3.9, -1.0, 1.0);
        }
        assert_eq!(gauge.cycle_count(), 1);
    }

    #[test]
    fn status_row_fields() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.75, ideal_config());
        gauge.sample(3.85, 0.5, 1.0);
        let s = gauge.status();
        assert!((s.soc - 0.75).abs() < 1e-3);
        assert!((s.terminal_v - 3.85).abs() < 1e-9);
        assert_eq!(s.cycle_count, 0);
        assert!((s.current_a - 0.5).abs() < 1e-9);
        assert!((s.remaining_ah - 1.5).abs() < 0.01);
    }

    #[test]
    fn capacity_learning_detects_fade() {
        // The gauge believes the cell is its rated 2.0 Ah, but the real
        // (faded) cell only holds 1.7 Ah. One OCV-anchored deep discharge
        // teaches the gauge the truth.
        let rated = spec(); // 2.0 Ah
        let mut true_cell = TheveninCell::new(BatterySpec::from_chemistry(
            "faded",
            Chemistry::Type2CoStandard,
            1.7,
        ));
        let mut gauge = FuelGauge::new(rated, 1.0, ideal_config());
        assert_eq!(gauge.capacity_observations(), 0);
        assert!((gauge.state_of_health() - 1.0).abs() < 1e-12);

        // Rest to take the full anchor (the cell's RC branch must actually
        // relax for the OCV reading to be valid).
        let rest = |cell: &mut TheveninCell, gauge: &mut FuelGauge| {
            for _ in 0..40 {
                cell.rest(60.0);
                gauge.sample(cell.terminal_voltage(0.0), 0.0, 60.0);
            }
        };
        rest(&mut true_cell, &mut gauge);
        // Deep discharge at 0.5 A until the true cell is nearly empty.
        while true_cell.soc() > 0.06 {
            let out = true_cell.step_current(0.5, 60.0).unwrap();
            gauge.sample(out.terminal_v, 0.5, 60.0);
        }
        // Rest again to take the empty anchor.
        rest(&mut true_cell, &mut gauge);
        assert!(gauge.capacity_observations() >= 1);
        // The EWMA moved a third of the way toward 1.7 Ah.
        assert!(
            gauge.learned_capacity_ah() < 1.95,
            "learned = {}",
            gauge.learned_capacity_ah()
        );
        assert!(gauge.state_of_health() < 0.98);
        // Several cycles converge close to the true value.
        for _ in 0..4 {
            while !true_cell.is_full() {
                let out = true_cell.step_current(-0.5, 60.0).unwrap();
                gauge.sample(out.terminal_v, -0.5, 60.0);
            }
            rest(&mut true_cell, &mut gauge);
            while true_cell.soc() > 0.06 {
                let out = true_cell.step_current(0.5, 60.0).unwrap();
                gauge.sample(out.terminal_v, 0.5, 60.0);
            }
            rest(&mut true_cell, &mut gauge);
        }
        assert!(
            (gauge.learned_capacity_ah() - 1.7).abs() < 0.15,
            "learned = {}",
            gauge.learned_capacity_ah()
        );
    }

    #[test]
    fn recalibration_emits_event_and_counts() {
        let obs = Observer::new();
        let rec = sdb_observe::FlightRecorder::shared(16);
        obs.add_sink(Box::new(rec.clone()));
        let spec = spec();
        let mut gauge = FuelGauge::new(spec.clone(), 0.9, ideal_config());
        gauge.set_observer(obs.clone(), 3);
        // Rest at the true OCV of a half-charged cell long enough to fire
        // an OCV recalibration.
        let cell = TheveninCell::with_soc(spec, 0.5);
        let ocv = cell.ocv();
        for _ in 0..40 {
            gauge.sample(ocv, 0.0, 60.0);
        }
        let dump = rec.lock().unwrap().dump();
        let recal = dump
            .iter()
            .find(|e| matches!(e.event, ObsEvent::GaugeRecalibration { battery: 3, .. }))
            .expect("recalibration event recorded");
        if let ObsEvent::GaugeRecalibration {
            soc_before,
            soc_after,
            ..
        } = recal.event
        {
            assert!(soc_before > 0.8);
            assert!((soc_after - 0.5).abs() < 0.02);
        }
        let text = obs.registry().unwrap().to_prometheus_text();
        assert!(text.contains("sdb_gauge_recalibrations_total 1"));
    }

    #[test]
    fn stuck_fault_freezes_soc_until_cleared() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.8, ideal_config());
        gauge.set_fault(Some(GaugeFault::StuckSoc));
        for _ in 0..600 {
            gauge.sample(3.7, 1.0, 1.0);
        }
        assert!((gauge.soc() - 0.8).abs() < 1e-12, "soc = {}", gauge.soc());
        gauge.set_fault(None);
        for _ in 0..600 {
            gauge.sample(3.7, 1.0, 1.0);
        }
        assert!(gauge.soc() < 0.8, "integration resumed after clearing");
    }

    #[test]
    fn bias_ramp_drifts_the_estimate() {
        let spec = spec();
        let mut clean = FuelGauge::new(spec.clone(), 0.8, ideal_config());
        let mut faulty = FuelGauge::new(spec, 0.8, ideal_config());
        faulty.set_fault(Some(GaugeFault::BiasRamp { amps_per_hour: 0.5 }));
        for _ in 0..3600 {
            clean.sample(3.7, 0.2, 1.0);
            faulty.sample(3.7, 0.2, 1.0);
        }
        // Mean injected bias over the hour is ~0.25 A vs the true 0.2 A:
        // the faulty gauge believes far more charge left the cell.
        assert!(
            clean.soc() - faulty.soc() > 0.05,
            "clean {} faulty {}",
            clean.soc(),
            faulty.soc()
        );
    }

    #[test]
    fn quantization_storm_coarsens_current() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.8, ideal_config());
        gauge.set_fault(Some(GaugeFault::QuantizationStorm { lsb_scale: 100.0 }));
        // 0.04 A rounds to zero at a 0.1 A LSB: the gauge sees no current.
        gauge.sample(3.7, 0.04, 60.0);
        assert_eq!(gauge.status().current_a, 0.0);
        assert!((gauge.soc() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn throughput_accumulates() {
        let spec = spec();
        let mut gauge = FuelGauge::new(spec, 0.5, ideal_config());
        gauge.sample(3.8, 1.0, 100.0);
        gauge.sample(3.9, -1.0, 50.0);
        let (d, c) = gauge.throughput_c();
        assert!((d - 100.0).abs() < 1e-9);
        assert!((c - 50.0).abs() < 1e-9);
    }
}
