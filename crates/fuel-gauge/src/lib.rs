//! Fuel-gauge substrate for Software Defined Batteries.
//!
//! The paper's prototype includes "a custom fuel gauge module that consists
//! of a coulomb counter and a controller" (Section 4.1) — one per battery,
//! since heterogeneous cells cannot share a gauge (Section 6). This crate
//! models that module:
//!
//! * [`coulomb`] — a coulomb counter with ADC quantization, offset drift,
//!   and finite sample rate.
//! * [`gauge`] — the per-battery fuel gauge: state-of-charge estimation by
//!   coulomb counting with OCV recalibration at rest, measured terminal
//!   voltage/current, and measurement-based cycle counting. This is the
//!   data source behind the paper's `QueryBatteryStatus()` API.

//! # Example
//!
//! ```
//! use sdb_battery_model::{BatterySpec, Chemistry};
//! use sdb_fuel_gauge::gauge::{FuelGauge, GaugeConfig};
//!
//! let spec = BatterySpec::from_chemistry("cell", Chemistry::Type2CoStandard, 2.0);
//! let mut gauge = FuelGauge::new(spec, 1.0, GaugeConfig::default());
//! // One hour at 1 A: the gauge tracks the 0.5 SoC drop by coulomb
//! // counting.
//! for _ in 0..3600 {
//!     gauge.sample(3.7, 1.0, 1.0);
//! }
//! assert!((gauge.soc() - 0.5).abs() < 0.01);
//! ```

pub mod coulomb;
pub mod gauge;

pub use coulomb::CoulombCounter;
pub use gauge::{BatteryStatus, FuelGauge, GaugeConfig, GaugeFault};
