//! Zero-dependency deterministic PRNGs for the SDB stack.
//!
//! The whole reproduction leans on the paper's observation that "repeatable
//! experiments ... helped us in debugging SDB policies" (Section 4.2):
//! every stochastic component — workload trace generators, user-behavior
//! Markov chains, the fleet engine's population sampler, the property-test
//! harness — draws from the generators in this crate, so a seed plus the
//! code fully determines an experiment, with no external `rand` dependency
//! (and therefore no registry access) required to build.
//!
//! Two generators, both standard and public domain:
//!
//! * [`SplitMix64`] — a 64-bit mixer with a trivially splittable state.
//!   Used to derive independent per-stream seeds (one per fleet device)
//!   from a master seed via [`derive_seed`], and to seed xoshiro state.
//! * [`DetRng`] (xoshiro256++) — the workhorse generator: fast, 256-bit
//!   state, passes BigCrush. All simulation sampling goes through it.
//!
//! Determinism contract: the output sequence for a given seed is part of
//! this crate's API. Changing it invalidates golden fleet reports and any
//! recorded experiment, so treat the mixing constants as frozen.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer. One `u64` of state,
/// each output decorrelated from the last by an avalanche mix. Primarily
/// a seed expander/deriver here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment used by SplitMix64 and for stream salting.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives the seed for independent stream `stream` of a master seed:
/// used by the fleet engine to give each simulated device its own
/// decorrelated generator while the whole population stays a pure function
/// of one master seed. `derive_seed(m, a) == derive_seed(m, b)` iff
/// `a == b` is not guaranteed in theory (it is a 64-bit hash) but streams
/// are decorrelated in all the ways that matter for simulation.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Salt the master with the stream index pushed through the golden
    // gamma, then avalanche once through SplitMix64.
    SplitMix64::new(master.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA))).next_u64()
}

/// xoshiro256++ 1.0 (Blackman & Vigna): the default deterministic
/// generator for all SDB sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seeds the 256-bit state from a single `u64` by running SplitMix64,
    /// the initialization the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scale.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Uses the widening-multiply method; the modulo bias is at most
    /// `n / 2^64`, far below anything a simulation can observe.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform index in `[0, n)` for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 0 from the public-domain C source.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn det_rng_is_deterministic_and_seed_sensitive() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        let mut c = DetRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.f64_range(0.9, 1.25);
            assert!((0.9..1.25).contains(&v));
        }
        // Degenerate range is allowed.
        assert_eq!(rng.f64_range(2.0, 2.0), 2.0);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.2)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let master = 1234;
        let s0 = derive_seed(master, 0);
        let s1 = derive_seed(master, 1);
        let s2 = derive_seed(master, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        // Stable across calls.
        assert_eq!(s0, derive_seed(master, 0));
        // Different masters give different streams.
        assert_ne!(s0, derive_seed(master + 1, 0));
    }

    #[test]
    fn pick_and_index_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(9);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
            assert!(rng.index(3) < 3);
        }
    }
}
