//! Benchmark and figure-regeneration harness for the SDB reproduction.
//!
//! Every table and figure in the paper's evaluation has a module under
//! [`experiments`] that recomputes its rows/series from the live system and
//! renders them as text. The `figures` binary prints any (or all) of them;
//! the benches in `benches/` (driven by the in-repo [`harness`]) measure
//! the performance of the underlying machinery and the fleet engine's
//! thread scaling; `EXPERIMENTS.md` is generated from the same code
//! by the `paper` binary, so the document can never drift from the code.

pub mod experiments;
pub mod harness;
pub mod output;
pub mod table;

use experiments::*;

/// One regenerable experiment.
pub struct Experiment {
    /// Identifier matching the paper ("fig11b", "table1", ...).
    pub id: &'static str,
    /// What the paper's artifact shows.
    pub title: &'static str,
    /// Renders the regenerated rows as text.
    pub render: fn() -> String,
}

/// Every table and figure in the paper, in paper order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Battery characteristics",
            render: tables::render_table1,
        },
        Experiment {
            id: "fig1a",
            title: "Li-ion chemistry comparison (radar axes)",
            render: fig1::render_fig1a,
        },
        Experiment {
            id: "fig1b",
            title: "Charging rate affects longevity",
            render: fig1::render_fig1b,
        },
        Experiment {
            id: "fig1c",
            title: "Discharging rate vs lost energy",
            render: fig1::render_fig1c,
        },
        Experiment {
            id: "table2",
            title: "Tradeoffs impacting SDB policies",
            render: tables::render_table2,
        },
        Experiment {
            id: "fig6a",
            title: "Discharge circuit power loss",
            render: fig6::render_fig6a,
        },
        Experiment {
            id: "fig6b",
            title: "Discharge proportion error",
            render: fig6::render_fig6b,
        },
        Experiment {
            id: "fig6c",
            title: "Charging circuit efficiency",
            render: fig6::render_fig6c,
        },
        Experiment {
            id: "fig6d",
            title: "Charging current error",
            render: fig6::render_fig6d,
        },
        Experiment {
            id: "fig8b",
            title: "Open circuit potential vs SoC",
            render: fig8::render_fig8b,
        },
        Experiment {
            id: "fig8c",
            title: "Internal resistance vs SoC",
            render: fig8::render_fig8c,
        },
        Experiment {
            id: "fig10",
            title: "Model validation vs reference cell",
            render: fig10::render_fig10,
        },
        Experiment {
            id: "fig11a",
            title: "Energy density comparison",
            render: fig11::render_fig11a,
        },
        Experiment {
            id: "fig11b",
            title: "Charge time comparison",
            render: fig11::render_fig11b,
        },
        Experiment {
            id: "fig11c",
            title: "Longevity comparison",
            render: fig11::render_fig11c,
        },
        Experiment {
            id: "fig12",
            title: "Performance priority levels",
            render: fig12::render_fig12,
        },
        Experiment {
            id: "fig13",
            title: "Watch day: policies compared",
            render: fig13::render_fig13,
        },
        Experiment {
            id: "fig14",
            title: "2-in-1 battery life improvement",
            render: fig14::render_fig14,
        },
        Experiment {
            id: "ablations",
            title: "Design-choice ablations (extension)",
            render: ablations::render_ablations,
        },
    ]
}

/// Looks up one experiment by id.
#[must_use]
pub fn experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_artifact_has_an_experiment() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for required in [
            "table1", "table2", "fig1a", "fig1b", "fig1c", "fig6a", "fig6b", "fig6c", "fig6d",
            "fig8b", "fig8c", "fig10", "fig11a", "fig11b", "fig11c", "fig12", "fig13", "fig14",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn lookup_works() {
        assert!(experiment("fig11b").is_some());
        assert!(experiment("fig99").is_none());
    }
}
