//! Pipe-safe stdout emission for the harness binaries.
//!
//! `println!` panics on `EPIPE`, so `figures all | head` would abort with
//! a backtrace. CLI tools are routinely piped into `head`/`grep`; treat a
//! closed pipe as a normal early exit instead.

use std::io::{ErrorKind, Write};

/// Writes `text` to stdout; exits the process cleanly (status 0) if the
/// reader closed the pipe.
pub fn emit(text: &str) {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = lock.write_all(text.as_bytes()) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("write error: {e}");
        std::process::exit(1);
    }
    let _ = lock.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_without_panicking() {
        emit("");
        emit("ok\n");
    }
}
