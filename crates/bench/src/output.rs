//! Pipe-safe stdout emission and metrics export for the harness binaries.
//!
//! `println!` panics on `EPIPE`, so `figures all | head` would abort with
//! a backtrace. CLI tools are routinely piped into `head`/`grep`; treat a
//! closed pipe as a normal early exit instead.

use std::io::{ErrorKind, Write};

/// Extracts a `--metrics-out <path>` flag from `args`. When present, the
/// flag and its value are removed, a process-global
/// [`sdb_observe::Observer`] is installed so every microcontroller and
/// runtime the experiments construct records into one shared registry, and
/// the output path is returned — pass it to [`write_metrics`] after the
/// run.
pub fn take_metrics_flag(args: &mut Vec<String>) -> Option<String> {
    let idx = args.iter().position(|a| a == "--metrics-out")?;
    if idx + 1 >= args.len() {
        eprintln!("--metrics-out requires a path argument");
        std::process::exit(1);
    }
    let path = args.remove(idx + 1);
    args.remove(idx);
    sdb_observe::install_global(sdb_observe::Observer::new());
    Some(path)
}

/// Dumps the process-global metrics registry to `path`: JSON when the path
/// ends in `.json`, Prometheus text exposition otherwise. No-op (with a
/// warning) if no global observer is installed.
pub fn write_metrics(path: &str) {
    let observer = sdb_observe::global();
    let Some(registry) = observer.registry() else {
        eprintln!("--metrics-out: no global observer installed, nothing to write");
        return;
    };
    let text = if path.ends_with(".json") {
        registry.to_json()
    } else {
        registry.to_prometheus_text()
    };
    match std::fs::write(path, text) {
        Ok(()) => eprintln!("wrote metrics to {path}"),
        Err(e) => {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes `text` to stdout; exits the process cleanly (status 0) if the
/// reader closed the pipe.
pub fn emit(text: &str) {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = lock.write_all(text.as_bytes()) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("write error: {e}");
        std::process::exit(1);
    }
    let _ = lock.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_without_panicking() {
        emit("");
        emit("ok\n");
    }
}
