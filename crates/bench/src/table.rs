//! Minimal text-table rendering for the figure harness.

/// Renders rows as an aligned text table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
#[must_use]
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with a header row (fields are simple numbers and
/// labels; labels containing commas are quoted).
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
#[must_use]
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    let mut out = header
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats an optional duration in minutes ("-" when absent).
#[must_use]
pub fn opt_min(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formats() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(opt_min(None), "-");
        assert_eq!(opt_min(Some(12.34)), "12.3");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let _ = render(&["a", "b"], &[vec!["1".into()]]);
    }
}
