//! Figure 6: SDB hardware microbenchmarks.

use crate::table;
use sdb_power_electronics::circuits::{
    ChargeCircuit, ChargeTopology, DischargeCircuit, DischargeTopology,
};
use sdb_power_electronics::measurement::{SenseChain, ShareChain};

/// Nominal battery voltage used by the prototype microbenchmarks.
const V_BATT: f64 = 3.8;

/// Figure 6(a): `% power loss` of the discharge circuit vs discharge
/// power, over the paper's 0.1–10 W sweep.
#[must_use]
pub fn fig6a_series() -> Vec<(f64, f64)> {
    let circuit = DischargeCircuit::new(DischargeTopology::NaiveSwitch, 2);
    [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|&w| {
            (
                w,
                circuit.loss_fraction(w, V_BATT).expect("valid load") * 100.0,
            )
        })
        .collect()
}

/// Renders Figure 6(a).
#[must_use]
pub fn render_fig6a() -> String {
    let rows: Vec<Vec<String>> = fig6a_series()
        .iter()
        .map(|(w, pct)| vec![table::f(*w, 1), table::f(*pct, 2)])
        .collect();
    format!(
        "Figure 6(a): Discharge circuit power loss (%) vs discharge power (W)\n\n{}",
        table::render(&["Power (W)", "Loss (%)"], &rows)
    )
}

/// Figure 6(b): `% error` of the measured discharge share vs the share set
/// by the microcontroller, over the paper's 1–99 % sweep.
#[must_use]
pub fn fig6b_series() -> Vec<(f64, f64)> {
    let chain = ShareChain::prototype();
    [0.01, 0.05, 0.10, 0.20, 0.50, 0.80, 0.95, 0.99]
        .iter()
        .map(|&p| (p * 100.0, chain.error_percent(p).expect("valid share")))
        .collect()
}

/// Renders Figure 6(b).
#[must_use]
pub fn render_fig6b() -> String {
    let rows: Vec<Vec<String>> = fig6b_series()
        .iter()
        .map(|(p, e)| vec![table::f(*p, 0), table::f(*e, 3)])
        .collect();
    format!(
        "Figure 6(b): Share setpoint error (%) vs proportion setting (%)\n\n{}",
        table::render(&["Setting (%)", "Error (%)"], &rows)
    )
}

/// Figure 6(c): charging efficiency as a % of the chip's typical
/// efficiency vs charging current, over the paper's 0.8–2.2 A sweep.
#[must_use]
pub fn fig6c_series() -> Vec<(f64, f64)> {
    let circuit = ChargeCircuit::new(ChargeTopology::SdbReversible, 2, 2.5);
    (0..=7)
        .map(|k| {
            let i = 0.8 + 0.2 * k as f64;
            (
                i,
                circuit
                    .relative_efficiency(i, V_BATT)
                    .expect("valid current")
                    * 100.0,
            )
        })
        .collect()
}

/// Renders Figure 6(c).
#[must_use]
pub fn render_fig6c() -> String {
    let rows: Vec<Vec<String>> = fig6c_series()
        .iter()
        .map(|(i, pct)| vec![table::f(*i, 1), table::f(*pct, 1)])
        .collect();
    format!(
        "Figure 6(c): Charging efficiency (% of chip typical) vs charging current (A)\n\n{}",
        table::render(&["Current (A)", "Efficiency (%)"], &rows)
    )
}

/// Figure 6(d): `% error` of the measured charging current vs the current
/// set by the microcontroller, over the paper's 0.2–2.0 A sweep.
#[must_use]
pub fn fig6d_series() -> Vec<(f64, f64)> {
    let chain = SenseChain::prototype_charger();
    (1..=10)
        .map(|k| {
            let i = 0.2 * k as f64;
            (i, chain.error_percent(i).expect("valid current"))
        })
        .collect()
}

/// Renders Figure 6(d).
#[must_use]
pub fn render_fig6d() -> String {
    let rows: Vec<Vec<String>> = fig6d_series()
        .iter()
        .map(|(i, e)| vec![table::f(*i, 1), table::f(*e, 3)])
        .collect();
    format!(
        "Figure 6(d): Charging current setpoint error (%) vs charging current (A)\n\n{}",
        table::render(&["Current (A)", "Error (%)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_paper_shape() {
        let s = fig6a_series();
        let light = s[0].1;
        let heavy = s.last().unwrap().1;
        // "power-loss remains ≈1% under typical light loads while it
        // reaches 1.6% with a 10W load".
        assert!((0.8..=1.4).contains(&light), "light = {light}");
        assert!((1.3..=2.0).contains(&heavy), "heavy = {heavy}");
    }

    #[test]
    fn fig6b_under_paper_bound() {
        // "< 0.6% error under a wide range of current assignments".
        for (p, e) in fig6b_series() {
            assert!(e < 0.6, "error at {p}% = {e}");
        }
    }

    #[test]
    fn fig6c_paper_shape() {
        let s = fig6c_series();
        // High efficiency at light loads, ≈94 % at high charging currents.
        assert!(s[0].1 > 97.0, "light = {}", s[0].1);
        let last = s.last().unwrap().1;
        assert!((92.0..=97.0).contains(&last), "heavy = {last}");
    }

    #[test]
    fn fig6d_under_paper_bound() {
        // "the error remains at or below 0.5%" (we allow a hair of slack
        // for quantization corner cases).
        for (i, e) in fig6d_series() {
            assert!(e <= 0.6, "error at {i} A = {e}");
        }
    }
}
