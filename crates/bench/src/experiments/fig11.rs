//! Figure 11: the energy density / charge speed / longevity tradeoff.

use crate::table;
use sdb_core::scenarios::hybrid::{charge_time_curve, ChargeCurve, HybridConfig};

/// External charger power used in the Figure 11(b) experiment, watts.
pub const CHARGER_W: f64 = 60.0;

/// Figure 11(a): energy density per configuration.
#[must_use]
pub fn fig11a_rows() -> Vec<(String, f64)> {
    HybridConfig::paper_configs()
        .iter()
        .map(|c| (c.label(), c.energy_density_wh_per_l()))
        .collect()
}

/// Renders Figure 11(a).
#[must_use]
pub fn render_fig11a() -> String {
    let rows: Vec<Vec<String>> = fig11a_rows()
        .iter()
        .map(|(label, d)| vec![label.clone(), table::f(*d, 1)])
        .collect();
    format!(
        "Figure 11(a): Energy density (Wh/l) vs % of fast-charging battery by capacity\n\n{}",
        table::render(&["Fast-charging share", "Energy density (Wh/l)"], &rows)
    )
}

/// Figure 11(b): the three charge-time curves.
#[must_use]
pub fn fig11b_curves() -> Vec<(String, ChargeCurve)> {
    HybridConfig::paper_configs()
        .iter()
        .map(|c| {
            let name = if c.fast_fraction == 0.0 {
                "Traditional Battery".to_owned()
            } else if c.fast_fraction == 1.0 {
                "Fast Charging Battery".to_owned()
            } else {
                "SDB".to_owned()
            };
            (name, charge_time_curve(c, CHARGER_W))
        })
        .collect()
}

/// Renders Figure 11(b).
#[must_use]
pub fn render_fig11b() -> String {
    let curves = fig11b_curves();
    let mut header = vec!["% charged".to_owned()];
    header.extend(curves.iter().map(|(n, _)| format!("{n} (min)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let targets = &curves[0].1.targets_pct;
    let rows: Vec<Vec<String>> = targets
        .iter()
        .enumerate()
        .map(|(i, pct)| {
            let mut row = vec![table::f(*pct, 0)];
            row.extend(curves.iter().map(|(_, c)| table::opt_min(c.minutes[i])));
            row
        })
        .collect();
    format!(
        "Figure 11(b): Charging time (min) vs % charged ({CHARGER_W} W supply)\n\n{}",
        table::render(&header_refs, &rows)
    )
}

/// Figure 11(c): longevity after 1000 cycles per configuration.
#[must_use]
pub fn fig11c_rows() -> Vec<(String, f64)> {
    let [no_fast, half, all_fast] = HybridConfig::paper_configs();
    vec![
        (
            "All Fast Charging Battery".to_owned(),
            all_fast.longevity_after_cycles(1000),
        ),
        ("SDB".to_owned(), half.longevity_after_cycles(1000)),
        (
            "No Fast Charging Battery".to_owned(),
            no_fast.longevity_after_cycles(1000),
        ),
    ]
}

/// Renders Figure 11(c).
#[must_use]
pub fn render_fig11c() -> String {
    let rows: Vec<Vec<String>> = fig11c_rows()
        .iter()
        .map(|(label, pct)| vec![label.clone(), table::f(*pct, 1)])
        .collect();
    format!(
        "Figure 11(c): Pack capacity retained after 1000 cycles (%)\n\n{}",
        table::render(&["Configuration", "Capacity retained (%)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11a_monotone_decreasing() {
        let rows = fig11a_rows();
        assert!(rows[0].1 > rows[1].1 && rows[1].1 > rows[2].1);
    }

    #[test]
    fn fig11b_sdb_in_between() {
        let curves = fig11b_curves();
        let t = |name: &str, pct: f64| {
            curves
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, c)| c.minutes_to(pct))
                .expect("target reached")
        };
        let traditional = t("Traditional Battery", 40.0);
        let sdb = t("SDB", 40.0);
        let fast = t("Fast Charging Battery", 40.0);
        assert!(fast < sdb && sdb < traditional);
        assert!(
            traditional / sdb > 1.8,
            "SDB ~3x faster to 40% than traditional"
        );
    }

    #[test]
    fn fig11c_sdb_is_middle_ground() {
        let rows = fig11c_rows();
        let all_fast = rows[0].1;
        let sdb = rows[1].1;
        let no_fast = rows[2].1;
        assert!(no_fast > sdb && sdb > all_fast);
    }
}
