//! Figure 13: the watch day under the two policies.

use crate::table;
use sdb_core::scenarios::watch::{watch_scenario, WatchOutcome, WatchPolicy};

/// Seed used by the published figure.
pub const SEED: u64 = 13;

/// Runs both policies over the paper's day (run at hour 9).
#[must_use]
pub fn fig13_outcomes() -> (WatchOutcome, WatchOutcome) {
    (
        watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), SEED),
        watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), SEED),
    )
}

/// Renders Figure 13: the hourly energy/loss series plus the event
/// annotations the paper calls out.
#[must_use]
pub fn render_fig13() -> String {
    let (p1, p2) = fig13_outcomes();
    let hours = p1.hourly_load_j.len().max(p2.hourly_load_j.len());
    let rows: Vec<Vec<String>> = (0..hours)
        .map(|h| {
            let load = p1.hourly_load_j.get(h).copied().unwrap_or(0.0);
            vec![
                (h + 1).to_string(),
                table::f(load, 0),
                table::f(p1.hourly_loss_j.get(h).copied().unwrap_or(0.0), 1),
                table::f(p2.hourly_loss_j.get(h).copied().unwrap_or(0.0), 1),
            ]
        })
        .collect();
    let fmt_event = |s: Option<f64>| {
        s.map_or_else(|| "never".to_owned(), |t| format!("hour {:.1}", t / 3600.0))
    };
    format!(
        "Figure 13: Watch day — hourly energy (J) and per-policy losses (J)\n\n{}\n\
         Events:\n\
         - Policy 1: Li-ion discharged completely: {}\n\
         - Policy 1: bendable discharged completely: {}\n\
         - Policy 1: device battery life: {:.1} h\n\
         - Policy 2: device battery life: {:.1} h\n\
         - Battery-life gain from preserving the Li-ion: {:.1} h\n\
         - Total losses: policy 1 = {:.0} J, policy 2 = {:.0} J\n",
        table::render(
            &[
                "Hour",
                "Device energy (J)",
                "Policy 1 losses (J)",
                "Policy 2 losses (J)"
            ],
            &rows
        ),
        fmt_event(p1.li_ion_empty_s),
        fmt_event(p1.bendable_empty_s),
        p1.life_s / 3600.0,
        p2.life_s / 3600.0,
        (p2.life_s - p1.life_s) / 3600.0,
        p1.total_loss_j,
        p2.total_loss_j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_events_reproduced() {
        let (p1, p2) = fig13_outcomes();
        // Policy 1 empties the Li-ion early (paper: ~hour 9.5).
        let li = p1.li_ion_empty_s.expect("policy 1 kills the Li-ion") / 3600.0;
        assert!(li < 12.0, "Li-ion died at hour {li}");
        // Preserve policy gains over an hour.
        assert!((p2.life_s - p1.life_s) / 3600.0 > 1.0);
        // And wastes less energy.
        assert!(p2.total_loss_j < p1.total_loss_j);
    }

    #[test]
    fn render_includes_events() {
        let out = render_fig13();
        assert!(out.contains("Li-ion discharged completely"));
        assert!(out.contains("Battery-life gain"));
    }
}
