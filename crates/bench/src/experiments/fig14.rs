//! Figure 14: 2-in-1 battery management.

use crate::table;
use sdb_core::scenarios::two_in_one::{two_in_one_comparison, TwoInOneRow};

/// Seed used by the published figure.
pub const SEED: u64 = 21;
/// Per-battery capacity, amp-hours.
pub const CAPACITY_AH: f64 = 4.0;

/// The Figure 14 rows: one per workload.
#[must_use]
pub fn fig14_rows() -> Vec<TwoInOneRow> {
    two_in_one_comparison(SEED, CAPACITY_AH)
}

/// Renders Figure 14.
#[must_use]
pub fn render_fig14() -> String {
    let rows_data = fig14_rows();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.workload.to_owned(),
                table::f(r.simultaneous_life_s / 3600.0, 2),
                table::f(r.charge_through_life_s / 3600.0, 2),
                table::f(r.improvement_pct(), 1),
            ]
        })
        .collect();
    let max = rows_data
        .iter()
        .map(TwoInOneRow::improvement_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    format!(
        "Figure 14: Battery-life improvement of simultaneous draw over charge-through\n\n{}\nMaximum improvement: {:.1}% (paper reports up to 22%)\n",
        table::render(
            &["Workload", "Simultaneous (h)", "Charge-through (h)", "Improvement (%)"],
            &rows
        ),
        max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_wins_across_workloads() {
        let rows = fig14_rows();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.improvement_pct() > 3.0,
                "{}: improvement = {:.1}%",
                r.workload,
                r.improvement_pct()
            );
        }
        // Headline: the best case lands in the paper's ballpark.
        let max = rows
            .iter()
            .map(TwoInOneRow::improvement_pct)
            .fold(0.0, f64::max);
        assert!((10.0..=35.0).contains(&max), "max = {max}%");
    }
}
