//! Figure 1: Li-ion battery properties.

use crate::table;
use sdb_battery_model::aging::FadeModel;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_battery_model::thevenin::TheveninCell;

/// Figure 1(a): the four chemistry classes scored on the radar axes.
#[must_use]
pub fn fig1a_rows() -> Vec<(Chemistry, [(&'static str, f64); 6])> {
    Chemistry::FIGURE_1A
        .iter()
        .map(|&c| (c, c.axis_scores().as_rows()))
        .collect()
}

/// Renders Figure 1(a).
#[must_use]
pub fn render_fig1a() -> String {
    let data = fig1a_rows();
    let header: Vec<&str> = std::iter::once("Axis")
        .chain(data.iter().map(|(c, _)| c.name()))
        .collect();
    let axes = data[0].1;
    let rows: Vec<Vec<String>> = axes
        .iter()
        .enumerate()
        .map(|(i, (axis, _))| {
            let mut row = vec![(*axis).to_owned()];
            for (_, scores) in &data {
                row.push(table::f(scores[i].1, 2));
            }
            row
        })
        .collect();
    format!(
        "Figure 1(a): Li-ion batteries compared (axis scores in [0,1])\n\n{}",
        table::render(&header, &rows)
    )
}

/// Figure 1(b): capacity after N cycles for a 1 Ah Type 2 sample charged
/// at 0.5, 0.7 and 1.0 A. Returns `(cycles, [cap% @0.5A, @0.7A, @1.0A])`.
#[must_use]
pub fn fig1b_series() -> Vec<(u32, [f64; 3])> {
    let spec = BatterySpec::from_chemistry("sample Type 2", Chemistry::Type2CoStandard, 1.0);
    let fade = FadeModel::for_spec(&spec);
    (0..=600)
        .step_by(50)
        .map(|n| {
            (
                n,
                [
                    fade.capacity_after(n, 0.5) * 100.0,
                    fade.capacity_after(n, 0.7) * 100.0,
                    fade.capacity_after(n, 1.0) * 100.0,
                ],
            )
        })
        .collect()
}

/// Renders Figure 1(b).
#[must_use]
pub fn render_fig1b() -> String {
    let rows: Vec<Vec<String>> = fig1b_series()
        .iter()
        .map(|(n, caps)| {
            vec![
                n.to_string(),
                table::f(caps[0], 1),
                table::f(caps[1], 1),
                table::f(caps[2], 1),
            ]
        })
        .collect();
    format!(
        "Figure 1(b): Capacity after N cycles (%) vs charging current, 1 Ah Type 2 cell\n\n{}",
        table::render(&["Cycles", "0.5A", "0.7A", "1.0A"], &rows)
    )
}

/// Figure 1(c): internal heat loss (%) vs discharge C-rate for Types
/// 2/3/4. Returns `(c_rate, [type2%, type3%, type4%])`.
#[must_use]
pub fn fig1c_series() -> Vec<(f64, [f64; 3])> {
    let cells: Vec<TheveninCell> = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ]
    .iter()
    .map(|&c| TheveninCell::new(BatterySpec::from_chemistry(c.name(), c, 1.0)))
    .collect();
    (1..=8)
        .map(|k| {
            let c_rate = k as f64 * 0.25;
            (
                c_rate,
                [
                    cells[0].heat_loss_fraction_at_c_rate(c_rate) * 100.0,
                    cells[1].heat_loss_fraction_at_c_rate(c_rate) * 100.0,
                    cells[2].heat_loss_fraction_at_c_rate(c_rate) * 100.0,
                ],
            )
        })
        .collect()
}

/// Renders Figure 1(c).
#[must_use]
pub fn render_fig1c() -> String {
    let rows: Vec<Vec<String>> = fig1c_series()
        .iter()
        .map(|(c, losses)| {
            vec![
                table::f(*c, 2),
                table::f(losses[0], 1),
                table::f(losses[1], 1),
                table::f(losses[2], 1),
            ]
        })
        .collect();
    format!(
        "Figure 1(c): Internal heat loss (%) vs discharge C-rate\n\n{}",
        table::render(&["C-rate", "Type 2", "Type 3", "Type 4"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_monotone_decreasing_and_ordered() {
        let series = fig1b_series();
        for w in series.windows(2) {
            for k in 0..3 {
                assert!(w[1].1[k] <= w[0].1[k], "capacity must not grow with cycles");
            }
        }
        let last = series.last().unwrap().1;
        assert!(
            last[0] > last[1] && last[1] > last[2],
            "higher current fades faster"
        );
    }

    #[test]
    fn fig1c_type4_dominates() {
        for (c, losses) in fig1c_series() {
            assert!(losses[2] > losses[0], "Type 4 lossier at {c}C");
            assert!(losses[0] > losses[1], "Type 2 lossier than Type 3 at {c}C");
        }
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_fig1a().contains("Power Density"));
        assert!(render_fig1b().contains("600"));
        assert!(render_fig1c().contains("2.00"));
    }
}
