//! CSV export of every data-bearing experiment (plot-ready series).

use crate::table;

use super::{fig1, fig10, fig11, fig12, fig13, fig14, fig6, fig8};

/// CSV for one experiment id, or `None` for prose-only artifacts
/// (tables 1/2, ablations).
#[must_use]
pub fn csv_for(id: &str) -> Option<String> {
    match id {
        "fig1a" => Some(csv_fig1a()),
        "fig1b" => Some(csv_fig1b()),
        "fig1c" => Some(csv_fig1c()),
        "fig6a" => Some(csv_pairs("power_w,loss_pct", &fig6::fig6a_series())),
        "fig6b" => Some(csv_pairs("setting_pct,error_pct", &fig6::fig6b_series())),
        "fig6c" => Some(csv_pairs("current_a,efficiency_pct", &fig6::fig6c_series())),
        "fig6d" => Some(csv_pairs("current_a,error_pct", &fig6::fig6d_series())),
        "fig8b" => Some(csv_fig8(true)),
        "fig8c" => Some(csv_fig8(false)),
        "fig10" => Some(csv_fig10()),
        "fig11a" => Some(csv_fig11a()),
        "fig11b" => Some(csv_fig11b()),
        "fig11c" => Some(csv_fig11c()),
        "fig12" => Some(csv_fig12()),
        "fig13" => Some(csv_fig13()),
        "fig14" => Some(csv_fig14()),
        _ => None,
    }
}

fn csv_pairs(header: &str, series: &[(f64, f64)]) -> String {
    let cols: Vec<&str> = header.split(',').collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&(x, y)| vec![format!("{x}"), format!("{y}")])
        .collect();
    table::csv(&cols, &rows)
}

fn csv_fig1a() -> String {
    let data = fig1::fig1a_rows();
    let mut header = vec!["axis".to_owned()];
    header.extend(data.iter().map(|(c, _)| c.name().to_owned()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let axes = data[0].1;
    let rows: Vec<Vec<String>> = axes
        .iter()
        .enumerate()
        .map(|(i, (axis, _))| {
            let mut row = vec![(*axis).to_owned()];
            row.extend(data.iter().map(|(_, scores)| format!("{}", scores[i].1)));
            row
        })
        .collect();
    table::csv(&header_refs, &rows)
}

fn csv_fig1b() -> String {
    let rows: Vec<Vec<String>> = fig1::fig1b_series()
        .iter()
        .map(|(n, caps)| {
            vec![
                n.to_string(),
                format!("{}", caps[0]),
                format!("{}", caps[1]),
                format!("{}", caps[2]),
            ]
        })
        .collect();
    table::csv(
        &["cycles", "cap_pct_0p5A", "cap_pct_0p7A", "cap_pct_1p0A"],
        &rows,
    )
}

fn csv_fig1c() -> String {
    let rows: Vec<Vec<String>> = fig1::fig1c_series()
        .iter()
        .map(|(c, l)| {
            vec![
                format!("{c}"),
                format!("{}", l[0]),
                format!("{}", l[1]),
                format!("{}", l[2]),
            ]
        })
        .collect();
    table::csv(
        &[
            "c_rate",
            "type2_loss_pct",
            "type3_loss_pct",
            "type4_loss_pct",
        ],
        &rows,
    )
}

fn csv_fig8(ocp: bool) -> String {
    let batteries = if ocp {
        fig8::fig8b_batteries()
    } else {
        fig8::fig8c_batteries()
    };
    let mut header = vec!["soc".to_owned()];
    header.extend((1..=batteries.len()).map(|i| format!("battery_{i}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..=20)
        .map(|k| {
            let soc = k as f64 / 20.0;
            let mut row = vec![format!("{soc}")];
            row.extend(batteries.iter().map(|b| {
                let v = if ocp {
                    b.ocp.eval(soc)
                } else {
                    b.dcir.eval(soc)
                };
                format!("{v}")
            }));
            row
        })
        .collect();
    table::csv(&header_refs, &rows)
}

fn csv_fig10() -> String {
    let rows: Vec<Vec<String>> = fig10::fig10_reports()
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.current_a),
                r.samples.to_string(),
                format!("{}", r.accuracy_percent()),
                format!("{}", r.max_abs_rel_error * 100.0),
            ]
        })
        .collect();
    table::csv(
        &["current_a", "samples", "accuracy_pct", "max_error_pct"],
        &rows,
    )
}

fn csv_fig11a() -> String {
    let rows: Vec<Vec<String>> = fig11::fig11a_rows()
        .iter()
        .map(|(label, d)| vec![label.clone(), format!("{d}")])
        .collect();
    table::csv(&["fast_share", "energy_density_wh_per_l"], &rows)
}

fn csv_fig11b() -> String {
    let curves = fig11::fig11b_curves();
    let mut header = vec!["pct_charged".to_owned()];
    header.extend(
        curves
            .iter()
            .map(|(n, _)| format!("{}_min", n.to_lowercase().replace(' ', "_"))),
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let targets = &curves[0].1.targets_pct;
    let rows: Vec<Vec<String>> = targets
        .iter()
        .enumerate()
        .map(|(i, pct)| {
            let mut row = vec![format!("{pct}")];
            row.extend(
                curves
                    .iter()
                    .map(|(_, c)| c.minutes[i].map_or_else(String::new, |m| format!("{m}"))),
            );
            row
        })
        .collect();
    table::csv(&header_refs, &rows)
}

fn csv_fig11c() -> String {
    let rows: Vec<Vec<String>> = fig11::fig11c_rows()
        .iter()
        .map(|(label, pct)| vec![label.clone(), format!("{pct}")])
        .collect();
    table::csv(&["configuration", "capacity_retained_pct"], &rows)
}

fn csv_fig12() -> String {
    let rows: Vec<Vec<String>> = fig12::fig12_rows()
        .iter()
        .map(|r| {
            vec![
                r.profile.to_owned(),
                r.level.label().to_owned(),
                format!("{}", r.latency_ratio),
                format!("{}", r.energy_ratio),
            ]
        })
        .collect();
    table::csv(
        &["workload", "level", "latency_ratio", "energy_ratio"],
        &rows,
    )
}

fn csv_fig13() -> String {
    let (p1, p2) = fig13::fig13_outcomes();
    let hours = p1.hourly_load_j.len().max(p2.hourly_load_j.len());
    let rows: Vec<Vec<String>> = (0..hours)
        .map(|h| {
            vec![
                (h + 1).to_string(),
                format!("{}", p1.hourly_load_j.get(h).copied().unwrap_or(0.0)),
                format!("{}", p1.hourly_loss_j.get(h).copied().unwrap_or(0.0)),
                format!("{}", p2.hourly_loss_j.get(h).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    table::csv(
        &[
            "hour",
            "device_energy_j",
            "policy1_loss_j",
            "policy2_loss_j",
        ],
        &rows,
    )
}

fn csv_fig14() -> String {
    let rows: Vec<Vec<String>> = fig14::fig14_rows()
        .iter()
        .map(|r| {
            vec![
                r.workload.to_owned(),
                format!("{}", r.simultaneous_life_s / 3600.0),
                format!("{}", r.charge_through_life_s / 3600.0),
                format!("{}", r.improvement_pct()),
            ]
        })
        .collect();
    table::csv(
        &[
            "workload",
            "simultaneous_h",
            "charge_through_h",
            "improvement_pct",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_have_csv() {
        for id in [
            "fig1a", "fig1b", "fig1c", "fig6a", "fig6b", "fig6c", "fig6d", "fig8b", "fig8c",
            "fig11a", "fig11c",
        ] {
            let csv = csv_for(id).unwrap_or_else(|| panic!("{id} missing csv"));
            let lines: Vec<&str> = csv.lines().collect();
            assert!(lines.len() >= 3, "{id} too short");
            // Column check on unquoted lines only (quoted labels may
            // legitimately contain commas).
            let unquoted: Vec<&&str> = lines.iter().filter(|l| !l.contains('"')).collect();
            if let Some(first) = unquoted.first() {
                let cols = first.split(',').count();
                for line in &unquoted {
                    assert_eq!(line.split(',').count(), cols, "{id}: ragged row {line}");
                }
            }
        }
    }

    #[test]
    fn prose_artifacts_have_no_csv() {
        assert!(csv_for("table1").is_none());
        assert!(csv_for("table2").is_none());
        assert!(csv_for("ablations").is_none());
        assert!(csv_for("nonsense").is_none());
    }

    #[test]
    fn fig1b_csv_parses_numerically() {
        let csv = csv_for("fig1b").unwrap();
        for line in csv.lines().skip(1) {
            for field in line.split(',') {
                assert!(field.parse::<f64>().is_ok(), "bad field {field}");
            }
        }
    }
}
