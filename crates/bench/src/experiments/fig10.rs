//! Figure 10: validating the production model against the reference cell.

use crate::table;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::reference::{validate_model, ValidationReport};
use sdb_battery_model::spec::BatterySpec;

/// The paper's three validation currents.
pub const CURRENTS_A: [f64; 3] = [0.2, 0.5, 0.7];

/// Runs the Figure 10 validation at all three currents.
#[must_use]
pub fn fig10_reports() -> Vec<ValidationReport> {
    let spec = BatterySpec::from_chemistry("validation cell", Chemistry::Type2CoStandard, 1.5);
    CURRENTS_A
        .iter()
        .map(|&i| validate_model(&spec, i, 10.0, 2015))
        .collect()
}

/// Renders Figure 10.
#[must_use]
pub fn render_fig10() -> String {
    let reports = fig10_reports();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                table::f(r.current_a, 1),
                r.samples.to_string(),
                table::f(r.accuracy_percent(), 2),
                table::f(r.max_abs_rel_error * 100.0, 2),
            ]
        })
        .collect();
    let mean_acc = reports
        .iter()
        .map(ValidationReport::accuracy_percent)
        .sum::<f64>()
        / reports.len() as f64;
    format!(
        "Figure 10: Thevenin model vs reference cell (paper reports 97.5% accuracy)\n\n{}\nMean accuracy: {:.2}%\n",
        table::render(
            &["Current (A)", "Samples", "Accuracy (%)", "Max error (%)"],
            &rows
        ),
        mean_acc
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_near_paper_figure() {
        for r in fig10_reports() {
            let acc = r.accuracy_percent();
            assert!(
                acc > 96.0 && acc < 100.0,
                "accuracy at {} A = {acc}",
                r.current_a
            );
            assert!(r.samples > 100);
        }
    }

    #[test]
    fn render_mentions_mean() {
        assert!(render_fig10().contains("Mean accuracy"));
    }
}
