//! One module per paper table/figure; each recomputes its artifact from
//! the live system and renders text rows.

pub mod ablations;
pub mod csv_export;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig8;
pub mod tables;
