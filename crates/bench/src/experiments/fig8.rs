//! Figure 8: the battery emulator's characteristic curves.

use crate::table;
use sdb_battery_model::library::paper_library;
use sdb_battery_model::spec::BatterySpec;

/// The five batteries of Figure 8(b) — a spread of library cells.
#[must_use]
pub fn fig8b_batteries() -> Vec<BatterySpec> {
    let lib = paper_library();
    // A representative spread: three Type 2 sizes, one Type 3, one Type 4.
    [0, 4, 7, 8, 10].iter().map(|&i| lib[i].clone()).collect()
}

/// The eight batteries of Figure 8(c).
#[must_use]
pub fn fig8c_batteries() -> Vec<BatterySpec> {
    let lib = paper_library();
    [0, 2, 4, 6, 8, 9, 10, 14]
        .iter()
        .map(|&i| lib[i].clone())
        .collect()
}

/// SoC grid used by both panels.
fn soc_grid() -> Vec<f64> {
    (0..=10).map(|k| k as f64 / 10.0).collect()
}

/// Figure 8(b): open-circuit potential vs SoC for five batteries.
#[must_use]
pub fn render_fig8b() -> String {
    let batteries = fig8b_batteries();
    let mut header = vec!["SoC (%)".to_owned()];
    header.extend(
        batteries
            .iter()
            .enumerate()
            .map(|(i, _)| format!("Battery {}", i + 1)),
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = soc_grid()
        .iter()
        .map(|&soc| {
            let mut row = vec![table::f(soc * 100.0, 0)];
            row.extend(batteries.iter().map(|b| table::f(b.ocp.eval(soc), 3)));
            row
        })
        .collect();
    format!(
        "Figure 8(b): Open circuit potential (V) vs state of charge\n\n{}",
        table::render(&header_refs, &rows)
    )
}

/// Figure 8(c): internal resistance vs SoC for eight batteries.
#[must_use]
pub fn render_fig8c() -> String {
    let batteries = fig8c_batteries();
    let mut header = vec!["SoC (%)".to_owned()];
    header.extend(
        batteries
            .iter()
            .enumerate()
            .map(|(i, _)| format!("Battery {}", i + 1)),
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = soc_grid()
        .iter()
        .map(|&soc| {
            let mut row = vec![table::f(soc * 100.0, 0)];
            row.extend(batteries.iter().map(|b| table::f(b.dcir.eval(soc), 3)));
            row
        })
        .collect();
    format!(
        "Figure 8(c): Internal resistance (ohm) vs state of charge\n\n{}",
        table::render(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_counts_match_paper() {
        assert_eq!(fig8b_batteries().len(), 5);
        assert_eq!(fig8c_batteries().len(), 8);
    }

    #[test]
    fn ocp_rises_resistance_falls() {
        for b in fig8b_batteries() {
            assert!(b.ocp.eval(1.0) > b.ocp.eval(0.0));
        }
        for b in fig8c_batteries() {
            assert!(b.dcir.eval(0.0) > b.dcir.eval(1.0));
        }
    }

    #[test]
    fn voltage_window_matches_figure() {
        // Figure 8(b) spans roughly 2.7–4.3 V.
        for b in fig8b_batteries() {
            assert!(b.ocp.y_min() >= 2.0 && b.ocp.y_max() <= 4.5, "{}", b.name);
        }
    }
}
