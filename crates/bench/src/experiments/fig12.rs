//! Figure 12: performance priority levels.

use crate::table;
use sdb_core::scenarios::turbo::{turbo_comparison, TurboRow};

/// The six bars of Figure 12.
#[must_use]
pub fn fig12_rows() -> Vec<TurboRow> {
    turbo_comparison()
}

/// Renders Figure 12.
#[must_use]
pub fn render_fig12() -> String {
    let rows: Vec<Vec<String>> = fig12_rows()
        .iter()
        .map(|r| {
            vec![
                r.profile.to_owned(),
                r.level.label().to_owned(),
                table::f(r.latency_ratio, 3),
                table::f(r.energy_ratio, 3),
            ]
        })
        .collect();
    format!(
        "Figure 12: Latency and energy vs performance priority level (normalized to Low)\n\n{}",
        table::render(
            &["Workload", "Level", "Latency ratio", "Energy ratio"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_workloads::cpu::PowerLevel;

    #[test]
    fn six_rows() {
        assert_eq!(fig12_rows().len(), 6);
    }

    #[test]
    fn headline_numbers_hold() {
        let rows = fig12_rows();
        let net_high = rows
            .iter()
            .find(|r| r.profile.starts_with("Network") && r.level == PowerLevel::High)
            .unwrap();
        let cpu_high = rows
            .iter()
            .find(|r| r.profile.starts_with("CPU") && r.level == PowerLevel::High)
            .unwrap();
        // Paper: network energy up ~20.6 %, CPU latency down ~26 %.
        assert!(net_high.energy_ratio > 1.10);
        assert!(cpu_high.latency_ratio < 0.80);
    }
}
