//! Ablations of SDB design choices (extension beyond the paper).
//!
//! Three questions the paper's design raises but does not quantify:
//!
//! 1. How much does the RBL allocator's DCIR-slope (δ) term matter,
//!    versus a plain parallel-resistor split?
//! 2. What does the preserve policy cost when its workload prediction is
//!    wrong (the user never goes running)?
//! 3. What do the SDB circuit topologies save over the naive designs, in
//!    components and in loss?

use crate::table;
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_core::scenarios::watch::{watch_scenario, WatchPolicy};
use sdb_power_electronics::circuits::{
    ChargeCircuit, ChargeTopology, DischargeCircuit, DischargeTopology,
};

/// Ablation 1: allocate a 6 W load across a fresh hybrid pack with and
/// without the slope term, and report the loss-weighted difference.
/// Returns `(with_slope_ratios, without_slope_ratios)`.
#[must_use]
pub fn slope_term_allocations() -> (Vec<f64>, Vec<f64>) {
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;
    use sdb_emulator::profile::ProfileKind;
    // Drain state where the DCIR slope matters: mid-low SoC.
    let micro = PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 4.0),
            0.25,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 4.0),
            0.25,
            ProfileKind::Fast,
        )
        .build();
    let input = PolicyInput::from_micro(&micro).with_load(6.0);
    let with = rbl_discharge(&input).expect("feasible");
    let mut zeroed = input.clone();
    for b in &mut zeroed.batteries {
        b.dcir_slope = 0.0;
    }
    let without = rbl_discharge(&zeroed).expect("feasible");
    (with, without)
}

/// Ablation 2: the preserve policy on a day with no run (wrong
/// prediction). Returns `(policy1_loss_j, policy2_loss_j)` for that day.
#[must_use]
pub fn wrong_prediction_losses() -> (f64, f64) {
    let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, None, 13);
    let p2 = watch_scenario(WatchPolicy::PreserveLiIon, None, 13);
    (p1.total_loss_j, p2.total_loss_j)
}

/// Ablation 3 rows: circuit topology comparison.
#[must_use]
pub fn topology_rows() -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for n in [2usize, 3, 4] {
        let naive_c = ChargeCircuit::new(ChargeTopology::NaiveMatrix, n, 3.0);
        let sdb_c = ChargeCircuit::new(ChargeTopology::SdbReversible, n, 3.0);
        rows.push(vec![
            format!("charge regulators, N={n}"),
            naive_c.regulator_count().to_string(),
            sdb_c.regulator_count().to_string(),
        ]);
    }
    let naive_d = DischargeCircuit::new(DischargeTopology::NaiveSwitch, 2);
    let sdb_d = DischargeCircuit::new(DischargeTopology::SdbIntegrated, 2);
    for &w in &[1.0, 5.0, 10.0] {
        rows.push(vec![
            format!("discharge loss @ {w} W (%)"),
            table::f(naive_d.loss_fraction(w, 3.8).expect("valid") * 100.0, 2),
            table::f(sdb_d.loss_fraction(w, 3.8).expect("valid") * 100.0, 2),
        ]);
    }
    rows
}

/// Ablation 4: battery life of the watch day as a function of the
/// discharging directive parameter — the CCB↔RBL tension made visible.
/// Returns `(directive, life_h)` pairs.
#[must_use]
pub fn directive_sweep() -> Vec<(f64, f64)> {
    use sdb_core::policy::DischargeDirective;
    use sdb_core::runtime::SdbRuntime;
    use sdb_core::scheduler::{run_trace, SimOptions};
    use sdb_workloads::traces::watch_day;
    (0..=4)
        .map(|k| {
            let d = k as f64 * 0.25;
            let mut micro = sdb_core::scenarios::watch::build_pack();
            let mut runtime = SdbRuntime::new(2);
            runtime.set_discharge_directive(DischargeDirective::new(d));
            let sim = run_trace(
                &mut micro,
                &mut runtime,
                &watch_day(13, Some(9.0)),
                &SimOptions::default(),
            );
            (d, sim.battery_life_s() / 3600.0)
        })
        .collect()
}

/// Ablation 5: the oracle policy (exact future knowledge) against the two
/// fixed watch policies. Returns `(label, life_h)` triples.
#[must_use]
pub fn oracle_comparison() -> Vec<(&'static str, f64)> {
    use sdb_core::scenarios::watch::{watch_scenario, WatchPolicy};
    [
        WatchPolicy::MinimizeInstantaneousLosses,
        WatchPolicy::PreserveLiIon,
        WatchPolicy::Oracle,
    ]
    .into_iter()
    .map(|p| (p.label(), watch_scenario(p, Some(9.0), 13).life_s / 3600.0))
    .collect()
}

/// Ablation 6: the Section 8 drone — legs flown per pack composition at
/// the same volume budget. Returns `(label, legs)` pairs.
#[must_use]
pub fn drone_comparison() -> Vec<(&'static str, usize)> {
    use sdb_core::scenarios::drone::{max_legs, DroneConfig};
    DroneConfig::variants(0.03)
        .into_iter()
        .map(|(label, cfg)| (label, max_legs(&cfg, 40)))
        .collect()
}

/// Ablation 7: the offline-optimal DP plan vs the online policies on the
/// watch day — how much is future knowledge worth? Returns
/// `(label, life_h)` pairs.
#[must_use]
pub fn optimal_gap() -> Vec<(&'static str, f64)> {
    use sdb_core::optimal::{plan, CellParams, PlanConfig};
    use sdb_core::scenarios::watch::{watch_scenario, WatchPolicy};
    use sdb_workloads::traces::watch_day;
    let cells = [
        CellParams::from_spec(sdb_battery_model::library::watch_li_ion().spec()),
        CellParams::from_spec(sdb_battery_model::library::watch_bendable().spec()),
    ];
    let trace = watch_day(13, Some(9.0));
    let optimal = plan(&cells, &trace, &PlanConfig::default());
    let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), 13);
    let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), 13);
    vec![
        ("RBL (greedy, online)", p1.life_s / 3600.0),
        ("Preserve (heuristic, online)", p2.life_s / 3600.0),
        (
            "DP plan (offline, knows the future)",
            optimal.life_s / 3600.0,
        ),
    ]
}

/// Renders all the ablations.
#[must_use]
pub fn render_ablations() -> String {
    let (with, without) = slope_term_allocations();
    let (p1, p2) = wrong_prediction_losses();
    let mut out = String::from("Ablations (extensions beyond the paper)\n\n");
    out.push_str(&format!(
        "1. RBL slope term (load split at 25% SoC):\n   with δ term:    [{:.3}, {:.3}]\n   without δ term: [{:.3}, {:.3}]\n\n",
        with[0], with[1], without[0], without[1]
    ));
    out.push_str(&format!(
        "2. Preserve policy under a wrong prediction (no run that day):\n   policy 1 losses: {p1:.1} J\n   policy 2 losses: {p2:.1} J\n   prediction-miss penalty: {:.1}%\n\n",
        (p2 / p1 - 1.0) * 100.0
    ));
    out.push_str("3. Naive vs SDB circuit topologies:\n\n");
    out.push_str(&table::render(
        &["Quantity", "Naive", "SDB"],
        &topology_rows(),
    ));
    out.push_str("\n4. Watch battery life vs discharging directive (0 = CCB, 1 = RBL):\n");
    for (d, life) in directive_sweep() {
        out.push_str(&format!("   d = {d:.2}: {life:.1} h\n"));
    }
    out.push_str("\n5. Future-knowledge oracle vs fixed policies (watch day with run):\n");
    for (label, life) in oracle_comparison() {
        out.push_str(&format!("   {label}: {life:.1} h\n"));
    }
    out.push_str("\n6. Drone pack composition at equal volume (cruise legs flown):\n");
    for (label, legs) in drone_comparison() {
        out.push_str(&format!("   {label}: {legs} legs\n"));
    }
    out.push_str("\n7. The value of future knowledge (watch-day battery life):\n");
    for (label, life) in optimal_gap() {
        out.push_str(&format!("   {label}: {life:.1} h\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_term_changes_allocation() {
        let (with, without) = slope_term_allocations();
        // At low SoC the slope term shifts load off the steeper cell; the
        // two splits must differ measurably.
        let diff = (with[0] - without[0]).abs();
        assert!(diff > 0.005, "with {with:?} vs without {without:?}");
    }

    #[test]
    fn wrong_prediction_costs_but_does_not_explode() {
        let (p1, p2) = wrong_prediction_losses();
        // The preserve policy pays extra losses when the run never comes...
        assert!(p2 > p1);
        // ...but the penalty is bounded (the bendable cell is fine at low
        // power).
        assert!(p2 < 4.0 * p1, "p1 {p1} p2 {p2}");
    }

    #[test]
    fn directive_sweep_shows_tension() {
        let sweep = directive_sweep();
        assert_eq!(sweep.len(), 5);
        // Lives vary across the directive range: the parameter matters.
        let min = sweep.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);
        let max = sweep.iter().map(|&(_, l)| l).fold(0.0, f64::max);
        assert!(max - min > 0.5, "sweep flat: {sweep:?}");
    }

    #[test]
    fn oracle_beats_instantaneous() {
        let rows = oracle_comparison();
        let p1 = rows[0].1;
        let oracle = rows[2].1;
        assert!(oracle > p1 + 0.5, "oracle {oracle} vs p1 {p1}");
    }

    #[test]
    fn drone_mix_wins() {
        let rows = drone_comparison();
        let all_energy = rows[0].1;
        let all_power = rows[1].1;
        let mix = rows[2].1;
        assert_eq!(all_energy, 0, "pure energy pack cannot fly the profile");
        assert!(mix > all_power);
    }

    #[test]
    fn optimal_plan_tops_the_ladder() {
        let rows = optimal_gap();
        let greedy = rows[0].1;
        let preserve = rows[1].1;
        let optimal = rows[2].1;
        assert!(
            optimal >= preserve - 0.1,
            "optimal {optimal} vs preserve {preserve}"
        );
        assert!(optimal > greedy + 1.0);
    }

    #[test]
    fn sdb_topologies_strictly_better() {
        for row in topology_rows() {
            let naive: f64 = row[1].parse().expect("numeric");
            let sdb: f64 = row[2].parse().expect("numeric");
            assert!(sdb < naive, "{}: sdb {sdb} vs naive {naive}", row[0]);
        }
    }
}
