//! Tables 1 and 2 of the paper.

use crate::table;

/// Table 1: battery characteristics and their units, annotated with the
/// field of this codebase that models each.
#[must_use]
pub fn render_table1() -> String {
    let rows: Vec<Vec<String>> = [
        (
            "Energy capacity",
            "joule",
            "BatterySpec::capacity_ah × OCP curve",
        ),
        ("Volume", "mm^3", "BatterySpec::volume_l"),
        ("Mass", "kilogram", "BatterySpec::mass_kg"),
        ("Discharge rate", "watt", "BatterySpec::max_discharge_a"),
        ("Recharge rate", "watt", "BatterySpec::max_charge_a"),
        (
            "Gravimetric energy density",
            "joule / kilogram",
            "energy_wh() / mass_kg",
        ),
        (
            "Volumetric energy density",
            "joule / liter",
            "Chemistry::energy_density_wh_per_l",
        ),
        ("Cost", "$ / joule", "AxisScores::affordability"),
        (
            "Discharge power density",
            "watt / kilogram",
            "max_power_w() / mass_kg",
        ),
        (
            "Recharge power density",
            "watt / kilogram",
            "max_charge_a × V / mass_kg",
        ),
        ("Cycle count", "cycles", "AgingState::cycles"),
        (
            "Longevity",
            "% capacity after N cycles",
            "FadeModel::capacity_after",
        ),
        ("Internal resistance", "ohm", "Chemistry::dcir_curve_1ah"),
        (
            "Efficiency",
            "% of energy turned into heat",
            "TheveninCell::heat_loss_fraction_at_c_rate",
        ),
        ("Bend radius", "mm", "AxisScores::form_factor_flexibility"),
    ]
    .iter()
    .map(|(c, u, m)| vec![(*c).to_owned(), (*u).to_owned(), (*m).to_owned()])
    .collect();
    format!(
        "Table 1: Battery characteristics (paper) and where this reproduction models them\n\n{}",
        table::render(&["Characteristic", "Units", "Modeled by"], &rows)
    )
}

/// Table 2: the tradeoffs that drive the policies, with the module that
/// exercises each.
#[must_use]
pub fn render_table2() -> String {
    let rows: Vec<Vec<String>> = [
        (
            "Charge Power vs. Longevity",
            "Higher charge rate charges quickly but accelerates crack formation, reducing cycle count",
            "FadeModel (fig1b, fig11c)",
        ),
        (
            "Discharge Power vs. Longevity",
            "Higher discharge rates support high-current workloads at reduced cycle count",
            "AgingState::step (C-rate weighting)",
        ),
        (
            "Discharge Power vs. Battery Life",
            "Higher discharge power causes DCIR losses proportional to the square of the current",
            "TheveninCell heat accounting (fig1c, fig13, fig14)",
        ),
    ]
    .iter()
    .map(|(t, d, m)| vec![(*t).to_owned(), (*d).to_owned(), (*m).to_owned()])
    .collect();
    format!(
        "Table 2: Tradeoffs impacting SDB policies\n\n{}",
        table::render(&["Tradeoff", "Description", "Exercised by"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_fifteen_characteristics() {
        let out = render_table1();
        assert_eq!(out.lines().count(), 2 + 2 + 15);
        assert!(out.contains("Bend radius"));
        assert!(out.contains("Internal resistance"));
    }

    #[test]
    fn table2_covers_three_tradeoffs() {
        let out = render_table2();
        assert!(out.contains("Charge Power vs. Longevity"));
        assert!(out.contains("square of the current"));
    }
}
