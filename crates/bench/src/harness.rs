//! A small self-contained micro-benchmark harness (no external crates).
//!
//! Replaces the Criterion dependency for this workspace's `harness =
//! false` bench targets. Each benchmark auto-calibrates an iteration count
//! to a target sample duration, takes several samples, and reports the
//! minimum and median ns/iteration (minimum is the least noisy estimator
//! on a shared machine; median guards against a lucky outlier).
//!
//! Environment knobs:
//!
//! * `SDB_BENCH_QUICK=1` — shrink sample counts/durations for CI smoke
//!   runs.
//! * A positional command-line argument filters benchmarks by substring
//!   (flags such as Cargo's `--bench` are ignored).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Samples taken.
    pub samples: usize,
    /// Fastest observed ns/iteration.
    pub min_ns: f64,
    /// Median observed ns/iteration.
    pub median_ns: f64,
}

/// Collects and prints benchmark results for one bench binary.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    quick: bool,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Harness {
    /// A harness configured from the process arguments and environment.
    #[must_use]
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "quick");
        let quick = std::env::var("SDB_BENCH_QUICK").is_ok_and(|v| v == "1");
        Self {
            filter,
            quick,
            results: Vec::new(),
        }
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_ref().is_some_and(|f| !name.contains(f))
    }

    fn target_sample(&self) -> Duration {
        if self.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(150)
        }
    }

    fn sample_count(&self) -> usize {
        if self.quick {
            3
        } else {
            7
        }
    }

    /// Measures `f` (setup included in the loop body is measured; keep it
    /// out of `f` or use [`Harness::bench_batched`]).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if self.skip(name) {
            return;
        }
        // Calibrate: double the iteration count until one sample takes at
        // least the target duration.
        let target = self.target_sample();
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            // Jump close to the target, at least doubling.
            let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters * 2).max((iters as f64 * scale).ceil() as u64);
        }
        let mut per_iter: Vec<f64> = (0..self.sample_count())
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        self.record(name, iters, per_iter.as_mut_slice());
    }

    /// Measures `routine` only, re-running `setup` before every iteration
    /// (the Criterion `iter_batched` pattern, for routines that consume or
    /// mutate their input).
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if self.skip(name) {
            return;
        }
        let target = self.target_sample();
        let mut iters: u64 = 1;
        loop {
            let mut measured = Duration::ZERO;
            for _ in 0..iters {
                let s = setup();
                let start = Instant::now();
                black_box(routine(black_box(s)));
                measured += start.elapsed();
            }
            if measured >= target || iters >= 1 << 30 {
                break;
            }
            let scale = target.as_secs_f64() / measured.as_secs_f64().max(1e-9);
            iters = (iters * 2).max((iters as f64 * scale).ceil() as u64);
        }
        let mut per_iter: Vec<f64> = (0..self.sample_count())
            .map(|_| {
                let mut measured = Duration::ZERO;
                for _ in 0..iters {
                    let s = setup();
                    let start = Instant::now();
                    black_box(routine(black_box(s)));
                    measured += start.elapsed();
                }
                measured.as_nanos() as f64 / iters as f64
            })
            .collect();
        self.record(name, iters, per_iter.as_mut_slice());
    }

    /// Like [`Harness::bench_batched`], but the routine performs `units`
    /// logical operations per call and the recorded numbers are divided by
    /// `units` — so a routine that steps an emulator 100 times reports
    /// ns/step rather than ns/routine-call.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn bench_batched_scaled<S, T>(
        &mut self,
        name: &str,
        units: u64,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        assert!(units > 0, "units must be positive");
        if self.skip(name) {
            return;
        }
        let target = self.target_sample();
        let mut iters: u64 = 1;
        loop {
            let mut measured = Duration::ZERO;
            for _ in 0..iters {
                let s = setup();
                let start = Instant::now();
                black_box(routine(black_box(s)));
                measured += start.elapsed();
            }
            if measured >= target || iters >= 1 << 30 {
                break;
            }
            let scale = target.as_secs_f64() / measured.as_secs_f64().max(1e-9);
            iters = (iters * 2).max((iters as f64 * scale).ceil() as u64);
        }
        let mut per_unit: Vec<f64> = (0..self.sample_count())
            .map(|_| {
                let mut measured = Duration::ZERO;
                for _ in 0..iters {
                    let s = setup();
                    let start = Instant::now();
                    black_box(routine(black_box(s)));
                    measured += start.elapsed();
                }
                measured.as_nanos() as f64 / (iters * units) as f64
            })
            .collect();
        self.record(name, iters, per_unit.as_mut_slice());
    }

    /// Measures `f` exactly once per sample with a small sample count, for
    /// multi-second end-to-end jobs where calibration would be wasteful.
    pub fn bench_heavy<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if self.skip(name) {
            return;
        }
        let samples = if self.quick { 1 } else { 3 };
        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_nanos() as f64
            })
            .collect();
        self.record(name, 1, per_iter.as_mut_slice());
    }

    fn record(&mut self, name: &str, iters: u64, per_iter: &mut [f64]) {
        per_iter.sort_unstable_by(f64::total_cmp);
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            samples: per_iter.len(),
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
        };
        println!(
            "{:<44} {:>14}  {:>14}   ({} iters x {} samples)",
            result.name,
            format_ns(result.min_ns),
            format_ns(result.median_ns),
            result.iters,
            result.samples
        );
        self.results.push(result);
    }

    /// All results so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing header line. Call once at the end of `main`.
    pub fn finish(&self) {
        println!(
            "\n{} benchmarks ({} mode); columns: min ns/iter, median ns/iter",
            self.results.len(),
            if self.quick { "quick" } else { "full" }
        );
    }
}

/// Pretty-prints nanoseconds with unit scaling.
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut h = Harness {
            filter: None,
            quick: true,
            results: Vec::new(),
        };
        let mut n: u64 = 0;
        h.bench("spin", || {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("only_this".to_owned()),
            quick: true,
            results: Vec::new(),
        };
        h.bench("something_else", || 1);
        assert!(h.results().is_empty());
        h.bench("only_this_one", || 1);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn batched_setup_is_not_measured() {
        let mut h = Harness {
            filter: None,
            quick: true,
            results: Vec::new(),
        };
        h.bench_batched("batched", || vec![1u64; 16], |v| v.iter().sum::<u64>());
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.00 s");
    }
}
