//! Renders every experiment and writes the combined report to stdout (and
//! optionally a file), for regenerating `EXPERIMENTS.md` data.
//!
//! ```text
//! paper                            # print the full report
//! paper out.txt                    # also write it to a file
//! paper --metrics-out m.prom       # also dump the metrics registry
//! ```

use sdb_bench::all_experiments;
use sdb_bench::output::{emit, take_metrics_flag, write_metrics};
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = take_metrics_flag(&mut args);
    let mut report = String::new();
    report.push_str("# SDB reproduction — regenerated experiment data\n\n");
    for e in all_experiments() {
        report.push_str(&format!(
            "## {} — {}\n\n```text\n{}\n```\n\n",
            e.id,
            e.title,
            (e.render)().trim_end()
        ));
    }
    emit(&report);
    if let Some(path) = args.first() {
        let mut f = std::fs::File::create(path).expect("create output file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_out {
        write_metrics(&path);
    }
}
