//! Renders every experiment and writes the combined report to stdout (and
//! optionally a file), for regenerating `EXPERIMENTS.md` data.
//!
//! ```text
//! paper                # print the full report
//! paper out.txt        # also write it to a file
//! ```

use sdb_bench::all_experiments;
use sdb_bench::output::emit;
use std::io::Write;

fn main() {
    let mut report = String::new();
    report.push_str("# SDB reproduction — regenerated experiment data\n\n");
    for e in all_experiments() {
        report.push_str(&format!(
            "## {} — {}\n\n```text\n{}\n```\n\n",
            e.id,
            e.title,
            (e.render)().trim_end()
        ));
    }
    emit(&report);
    if let Some(path) = std::env::args().nth(1) {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("wrote {path}");
    }
}
