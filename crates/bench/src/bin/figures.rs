//! Regenerates the paper's tables and figures as text.
//!
//! ```text
//! figures                             # list available experiments
//! figures all                         # render everything
//! figures fig11b                      # render one experiment
//! figures csv fig11b                  # emit one experiment's data as CSV
//! figures all --metrics-out m.prom    # also dump the metrics registry
//! ```
//!
//! `--metrics-out <path>` installs a process-global observer before the
//! experiments run and writes the accumulated registry afterwards
//! (Prometheus text, or JSON when the path ends in `.json`).

use sdb_bench::experiments::csv_export;
use sdb_bench::output::{emit, take_metrics_flag, write_metrics};
use sdb_bench::{all_experiments, experiment};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = take_metrics_flag(&mut args);
    match args.first().map(String::as_str) {
        None => {
            let mut out =
                String::from("Available experiments (run `figures all` or `figures <id>`):\n\n");
            for e in all_experiments() {
                out.push_str(&format!("  {:<10} {}\n", e.id, e.title));
            }
            emit(&out);
        }
        Some("csv") => match args.get(1) {
            Some(id) => match csv_export::csv_for(id) {
                Some(csv) => emit(&csv),
                None => {
                    eprintln!("no CSV data for `{id}` (prose-only or unknown experiment)");
                    std::process::exit(1);
                }
            },
            None => {
                eprintln!("usage: figures csv <id>");
                std::process::exit(1);
            }
        },
        Some("all") => {
            for e in all_experiments() {
                emit(&format!(
                    "==== {} — {} ====\n\n{}\n",
                    e.id,
                    e.title,
                    (e.render)()
                ));
            }
        }
        Some(id) => match experiment(id) {
            Some(e) => emit(&format!("{}\n", (e.render)())),
            None => {
                eprintln!("unknown experiment `{id}`; run with no arguments to list");
                std::process::exit(1);
            }
        },
    }
    if let Some(path) = metrics_out {
        write_metrics(&path);
    }
}
