#![allow(missing_docs)]
//! ns/plan for the lookahead planner.
//!
//! Measures one full `Planner::plan` epoch — forecast materialization
//! plus a rollout per candidate directive over the configured horizon —
//! and merges a `"policy_plan":{"ns_per_plan":…}` entry into
//! `BENCH_micro.json` (idempotently: a prior entry is replaced). The
//! `sdb perf` gate ingests it as `micro_step.policy_plan.ns_per_plan`,
//! lower-is-better, so planning-cost regressions trip the same
//! longitudinal check as the hot loop.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_core::policy::PolicyInput;
use sdb_core::LookaheadPolicy;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_policy::{HistoryForecaster, Planner, PlannerConfig};
use sdb_workloads::Trace;
use std::hint::black_box;

fn hybrid_pack() -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
            0.9,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 1.0),
            0.9,
            ProfileKind::Fast,
        )
        .build()
}

/// A synthetic "previous day": light idle punctuated by heavy bursts, so
/// the forecaster has real structure and rollouts see varying load.
fn history_day() -> Trace {
    let mut t = Trace::new();
    for hour in 0..24 {
        let heavy = hour % 6 == 3;
        t.push(if heavy { 2.5 } else { 0.15 }, 0.0, 3600.0);
    }
    t
}

fn main() {
    let mut h = Harness::from_args();
    let micro = hybrid_pack();
    let forecaster = HistoryForecaster::from_history([&history_day()], 0.3);
    let cfg = PlannerConfig {
        horizon_s: 4.0 * 3600.0,
        ..PlannerConfig::default()
    };
    let input = PolicyInput {
        batteries: Vec::new(),
        load_w: 0.0,
        external_w: 0.0,
    };

    h.bench_batched(
        "policy_plan",
        || Planner::new(cfg, Box::new(forecaster.clone())),
        |mut planner| {
            black_box(planner.plan(0.0, &micro, &input));
            planner
        },
    );
    let ns_per_plan = h.results().last().expect("bench recorded").min_ns;
    println!("  plan epoch: {} per plan", format_ns(ns_per_plan));
    h.finish();

    let path = std::env::var("SDB_BENCH_MICRO_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::read_to_string(&path) {
        Ok(mut text) => {
            // Idempotent merge: drop any prior policy_plan object, then
            // splice the fresh one in just before the host_cpus tail.
            if let Some(start) = text.find(",\"policy_plan\":{") {
                if let Some(end) = text[start..].find('}') {
                    text.replace_range(start..=start + end, "");
                }
            }
            let entry = format!(",\"policy_plan\":{{\"ns_per_plan\":{ns_per_plan:?}}}");
            if let Some(at) = text.find(",\"host_cpus\"") {
                text.insert_str(at, &entry);
                match std::fs::write(&path, &text) {
                    Ok(()) => println!("merged policy_plan into {path}"),
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                }
            } else {
                eprintln!("no host_cpus marker in {path}; run the micro_step bench first");
            }
        }
        Err(e) => eprintln!("cannot read {path} ({e}); run the micro_step bench first"),
    }
}
