#![allow(missing_docs)]
//! ns/plan for the lookahead planner, plus a per-rollout allocation gate.
//!
//! Measures one full `Planner::plan` epoch — forecast materialization
//! plus a rollout per candidate directive over the configured horizon —
//! and merges a `"policy_plan":{"ns_per_plan":…,"allocs_per_rollout":…}`
//! entry into `BENCH_micro.json` (idempotently: a prior entry is
//! replaced). The `sdb perf` gate ingests both as
//! `micro_step.policy_plan.*`, lower-is-better, so planning-cost
//! regressions trip the same longitudinal check as the hot loop.
//!
//! The allocation gate isolates the rollouts from the per-epoch work
//! (forecast materialization, candidate/score vectors) by differencing:
//! once the shared [`RolloutScratch`] is warm, an epoch with 17
//! candidates must allocate exactly as much as an epoch with 2 — every
//! extra rollout runs entirely through the snapshot/restore scratch pair.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_core::policy::PolicyInput;
use sdb_core::LookaheadPolicy;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_policy::{HistoryForecaster, Planner, PlannerConfig};
use sdb_testkit::{alloc_counter, CountingAllocator};
use sdb_workloads::Trace;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn hybrid_pack() -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
            0.9,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 1.0),
            0.9,
            ProfileKind::Fast,
        )
        .build()
}

/// A synthetic "previous day": light idle punctuated by heavy bursts, so
/// the forecaster has real structure and rollouts see varying load.
fn history_day() -> Trace {
    let mut t = Trace::new();
    for hour in 0..24 {
        let heavy = hour % 6 == 3;
        t.push(if heavy { 2.5 } else { 0.15 }, 0.0, 3600.0);
    }
    t
}

/// Plan epochs measured per candidate count by the allocation gate.
const ALLOC_EPOCHS: u64 = 50;

/// Steady-state heap allocations across `ALLOC_EPOCHS` full plan epochs
/// at `candidates`: two warmup epochs build the rollout scratch and
/// settle the incumbent onto the candidate grid, then the counted epochs
/// run back to back (the replan clock advanced via `observe_step`).
fn allocs_at_candidates(
    micro: &Microcontroller,
    forecaster: &HistoryForecaster,
    input: &PolicyInput,
    candidates: usize,
) -> u64 {
    let cfg = PlannerConfig {
        horizon_s: 4.0 * 3600.0,
        candidates,
        ..PlannerConfig::default()
    };
    let period = cfg.replan_period_s;
    let mut planner = Planner::new(cfg, Box::new(forecaster.clone()));
    let mut t = 0.0;
    for _ in 0..2 {
        black_box(planner.plan(t, micro, input));
        planner.observe_step(t, period, 0.5);
        t += period;
    }
    let before = alloc_counter::allocs();
    for _ in 0..ALLOC_EPOCHS {
        black_box(planner.plan(t, micro, input));
        planner.observe_step(t, period, 0.5);
        t += period;
    }
    alloc_counter::allocs() - before
}

fn main() {
    let mut h = Harness::from_args();
    let micro = hybrid_pack();
    let forecaster = HistoryForecaster::from_history([&history_day()], 0.3);
    let cfg = PlannerConfig {
        horizon_s: 4.0 * 3600.0,
        ..PlannerConfig::default()
    };
    let input = PolicyInput {
        batteries: Vec::new(),
        load_w: 0.0,
        external_w: 0.0,
    };

    h.bench_batched(
        "policy_plan",
        || Planner::new(cfg, Box::new(forecaster.clone())),
        |mut planner| {
            black_box(planner.plan(0.0, &micro, &input));
            planner
        },
    );
    let ns_per_plan = h.results().last().expect("bench recorded").min_ns;
    println!("  plan epoch: {} per plan", format_ns(ns_per_plan));
    h.finish();

    // Allocation gate: the extra 15 rollouts per epoch at 17 candidates
    // must be free once the scratch is warm.
    let wide = 17usize;
    let narrow = 2usize;
    let a_wide = allocs_at_candidates(&micro, &forecaster, &input, wide);
    let a_narrow = allocs_at_candidates(&micro, &forecaster, &input, narrow);
    let extra_rollouts = ALLOC_EPOCHS * (wide - narrow) as u64;
    let allocs_per_rollout = (a_wide as f64 - a_narrow as f64) / extra_rollouts as f64;
    println!(
        "  rollout allocs: {a_wide} allocs over {ALLOC_EPOCHS} epochs at {wide} \
         candidates vs {a_narrow} at {narrow} -> {allocs_per_rollout} allocs/rollout"
    );
    assert!(
        allocs_per_rollout == 0.0,
        "warm planner rollouts allocated ({allocs_per_rollout}/rollout) — the \
         snapshot/restore scratch path regressed"
    );

    let path = std::env::var("SDB_BENCH_MICRO_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::read_to_string(&path) {
        Ok(mut text) => {
            // Idempotent merge: drop any prior policy_plan object, then
            // splice the fresh one in just before the host_cpus tail.
            if let Some(start) = text.find(",\"policy_plan\":{") {
                if let Some(end) = text[start..].find('}') {
                    text.replace_range(start..=start + end, "");
                }
            }
            let entry = format!(
                ",\"policy_plan\":{{\"ns_per_plan\":{ns_per_plan:?},\
                 \"allocs_per_rollout\":{allocs_per_rollout:?}}}"
            );
            if let Some(at) = text.find(",\"host_cpus\"") {
                text.insert_str(at, &entry);
                match std::fs::write(&path, &text) {
                    Ok(()) => println!("merged policy_plan into {path}"),
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                }
            } else {
                eprintln!("no host_cpus marker in {path}; run the micro_step bench first");
            }
        }
        Err(e) => eprintln!("cannot read {path} ({e}); run the micro_step bench first"),
    }
}
