#![allow(missing_docs)]
//! Micro-step hot-loop bench with an allocation regression guard.
//!
//! Measures ns/step and steps/sec for small packs (the sizes whose
//! per-battery report detail fits inline in [`BatterySteps`]), and — under
//! a counting global allocator — measures heap allocations per step at
//! steady state, asserting the hot loop stays allocation-free. Writes
//! `BENCH_micro.json` at the repository root (override the path with
//! `SDB_BENCH_MICRO_OUT`); CI uploads the file and greps for
//! `"allocs_per_step_max":0.0`.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_emulator::{QuiescenceConfig, SoaCohort};
use sdb_testkit::{alloc_counter, CountingAllocator};
use std::fmt::Write as _;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Steps per routine call: long enough to amortize timer reads, short
/// enough that calibration converges quickly.
const STEPS_PER_CALL: u64 = 100;

fn pack_of(n: usize) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            0.9,
            ProfileKind::Standard,
        );
    }
    b.build()
}

/// Allocations per step at steady state: warm a fresh pack up (scratch
/// buffers grow, cursors settle), then count over many steps.
fn allocs_per_step(n: usize) -> f64 {
    let mut micro = pack_of(n);
    let load = 3.0 * n as f64;
    for _ in 0..50 {
        black_box(micro.step(load, 0.0, 1.0));
    }
    let steps = 1000u64;
    let before = alloc_counter::allocs();
    for _ in 0..steps {
        black_box(micro.step(load, 0.0, 1.0));
    }
    (alloc_counter::allocs() - before) as f64 / steps as f64
}

/// Pack size the profiler-overhead pair runs on (the largest inline
/// size — the configuration `sdb perf` gates).
const PROF_PACK: usize = 8;
/// Steps per timed run: enough to amortize warmup and cover ~15 hot
/// (sampled) profiler ticks per run.
const PROF_STEPS: u64 = 2000;
/// Interleaved repetitions per mode; min-of-reps on both sides.
const PROF_REPS: usize = 7;

/// One warmed, timed run of `PROF_STEPS` steps, returning ns/step.
fn prof_timed_run(template: &Microcontroller, load: f64) -> f64 {
    let mut micro = template.clone();
    for _ in 0..50 {
        black_box(micro.step(load, 0.0, 1.0));
    }
    let t0 = std::time::Instant::now();
    for _ in 0..PROF_STEPS {
        black_box(micro.step(load, 0.0, 1.0));
    }
    t0.elapsed().as_nanos() as f64 / PROF_STEPS as f64
}

/// Measures the profiler's cost on the hot loop: interleaved
/// disabled/enabled repetitions (min-of-reps each) on the 8-battery
/// pack, plus a steady-state allocation count and the per-phase
/// self-time shares of the micro step. Returns
/// `(overhead_pct, profiled_allocs_per_step, phase shares %)`.
fn prof_overhead() -> (f64, f64, Vec<(&'static str, f64)>) {
    let template = pack_of(PROF_PACK);
    let load = 3.0 * PROF_PACK as f64;
    let mut min_disabled = f64::INFINITY;
    let mut min_enabled = f64::INFINITY;
    for _ in 0..PROF_REPS {
        sdb_prof::disable();
        min_disabled = min_disabled.min(prof_timed_run(&template, load));
        sdb_prof::enable();
        min_enabled = min_enabled.min(prof_timed_run(&template, load));
    }
    let overhead_pct = ((min_enabled - min_disabled) / min_disabled * 100.0).max(0.0);

    // Steady-state allocations with the profiler recording: the slot
    // table and prewarmed sketches were created during the runs above,
    // so these steps must not allocate at all (sketch inserts are
    // clamped into the prewarmed bucket range).
    let mut micro = template.clone();
    for _ in 0..200 {
        black_box(micro.step(load, 0.0, 1.0));
    }
    let steps = 1000u64;
    let before = alloc_counter::allocs();
    for _ in 0..steps {
        black_box(micro.step(load, 0.0, 1.0));
    }
    let profiled_allocs = (alloc_counter::allocs() - before) as f64 / steps as f64;

    // Phase shares from a clean aggregate: share of the micro step's
    // sampled time spent in each instrumented sub-phase.
    sdb_prof::reset();
    let mut micro = template.clone();
    for _ in 0..(4 * sdb_prof::SAMPLE_EVERY) {
        black_box(micro.step(load, 0.0, 1.0));
    }
    sdb_prof::flush_thread();
    sdb_prof::disable();
    let snap = sdb_prof::snapshot();
    let step_node = snap
        .find_path(&[sdb_prof::Phase::MicroStep])
        .expect("profiled run recorded micro steps");
    let shares: Vec<(&'static str, f64)> = step_node
        .children
        .iter()
        .map(|c| {
            (
                c.phase.name(),
                c.total_ns as f64 / step_node.total_ns.max(1) as f64 * 100.0,
            )
        })
        .collect();
    sdb_prof::reset();
    (overhead_pct, profiled_allocs, shares)
}

/// Simulated ticks per timed repetition of the SoA fast-forward cycle:
/// long enough to amortize timer reads across many enter/advance/exit
/// cycles, short enough that the pack stays far from the SoC floor.
const SOA_TICKS_PER_REP: u64 = 4000;
/// Repetitions; min-of-reps.
const SOA_REPS: usize = 9;

/// ns per simulated tick of the SoA engine's steady-state quiescent
/// cycle: closed-form multi-tick advances up to each boundary (stretch
/// cap, drift budget, gauge recalibration), plus the amortized scalar
/// sync tick and lane exit/re-entry at every boundary — exactly what the
/// fleet hot path pays per fast-forwarded tick. Returns
/// `(ns_per_tick, fast_forwarded_fraction)`.
fn soa_step_ns() -> (f64, f64) {
    let template = PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
            0.9,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 2.0),
            0.8,
            ProfileKind::Fast,
        )
        .build();
    let load = 0.05;
    let dt = 60.0;
    let mut best = f64::INFINITY;
    let mut ff_frac = 0.0;
    for _ in 0..SOA_REPS {
        let mut micro = template.clone();
        let mut soa = SoaCohort::new(&micro, 1, QuiescenceConfig::default());
        // Settle the RC transient at the held load so the lane qualifies.
        let mut report = micro.step(load, 0.0, dt);
        for _ in 0..50 {
            report = micro.step(load, 0.0, dt);
        }
        assert!(
            soa.try_enter(0, &micro, &report, load, dt),
            "settled standby pack must qualify for the quiescent lane"
        );
        let mut ticks = 0u64;
        let mut ff = 0u64;
        let t0 = std::time::Instant::now();
        while ticks < SOA_TICKS_PER_REP {
            let k = soa.max_ticks(0, load, dt);
            if k == 0 {
                soa.exit(0, &mut micro);
                report = black_box(micro.step(load, 0.0, dt));
                ticks += 1;
                assert!(
                    soa.try_enter(0, &micro, &report, load, dt),
                    "lane re-entry after a sync tick must succeed on a standby pack"
                );
            } else {
                black_box(soa.advance(0, load, dt, k));
                ticks += u64::from(k);
                ff += u64::from(k);
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / ticks as f64;
        if ns < best {
            best = ns;
            ff_frac = ff as f64 / ticks as f64;
        }
        soa.exit(0, &mut micro);
    }
    (best, ff_frac)
}

fn main() {
    let mut h = Harness::from_args();
    let sizes = [2usize, 4, 8];
    let mut rows = Vec::new();

    for &n in &sizes {
        // Template cloned per iteration so every measurement starts from
        // the same SoC; the 100-step routine is dominated by warm steps.
        let template = pack_of(n);
        let load = 3.0 * n as f64;
        h.bench_batched_scaled(
            &format!("micro_step/{n}"),
            STEPS_PER_CALL,
            || template.clone(),
            |mut micro| {
                for _ in 0..STEPS_PER_CALL {
                    black_box(micro.step(load, 0.0, 1.0));
                }
                micro
            },
        );
        let ns_per_step = h.results().last().expect("bench recorded").min_ns;
        let allocs = allocs_per_step(n);
        println!(
            "  pack {n}: {} per step, {:.0} steps/sec, {allocs} allocs/step",
            format_ns(ns_per_step),
            1e9 / ns_per_step
        );
        rows.push((n, ns_per_step, allocs));
    }
    h.finish();

    let max_allocs = rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
    assert!(
        max_allocs == 0.0,
        "steady-state micro step allocated (max {max_allocs}/step) — the hot \
         loop regressed"
    );

    let (overhead_pct, profiled_allocs, shares) = prof_overhead();
    println!(
        "  prof overhead (pack {PROF_PACK}): {overhead_pct:.2}% \
         ({profiled_allocs} allocs/step profiled)"
    );
    for (name, pct) in &shares {
        println!("    {name:<16} {pct:5.1}% of sampled step time");
    }
    assert!(
        overhead_pct <= 5.0,
        "profiler overhead {overhead_pct:.2}% exceeds the 5% budget on the \
         {PROF_PACK}-battery pack"
    );
    assert!(
        profiled_allocs == 0.0,
        "profiled micro step allocated ({profiled_allocs}/step) — the prof \
         hot path must stay allocation-free"
    );

    let (soa_ns, soa_ff) = soa_step_ns();
    let scalar_ns = rows[0].1;
    println!(
        "  soa_step (pack 2): {} per simulated tick ({:.1}% fast-forwarded, \
         {:.1}x vs scalar step)",
        format_ns(soa_ns),
        soa_ff * 100.0,
        scalar_ns / soa_ns
    );

    let mut json = String::new();
    json.push_str("{\"bench\":\"micro_step\",\"steps_per_call\":");
    let _ = write!(json, "{STEPS_PER_CALL}");
    json.push_str(",\"packs\":[");
    for (i, (n, ns, allocs)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let steps_per_sec = 1e9 / ns;
        let _ = write!(
            json,
            "{{\"batteries\":{n},\"ns_per_step\":{ns:?},\"steps_per_sec\":{steps_per_sec:?},\"allocs_per_step\":{allocs:?}}}"
        );
    }
    let _ = write!(
        json,
        "],\"allocs_per_step_max\":{max_allocs:?},\"prof\":{{\"pack\":{PROF_PACK},\
         \"sample_every\":{},\"overhead_pct\":{overhead_pct:?},\
         \"profiled_allocs_per_step\":{profiled_allocs:?},\"phase_share\":{{",
        sdb_prof::SAMPLE_EVERY
    );
    for (i, (name, pct)) in shares.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\"{name}\":{pct:?}");
    }
    let _ = write!(
        json,
        "}}}},\"soa_step\":{{\"ns_per_tick\":{soa_ns:?},\"ff_fraction\":{soa_ff:?}}},\
         \"host_cpus\":{}}}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );

    let path = std::env::var("SDB_BENCH_MICRO_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
