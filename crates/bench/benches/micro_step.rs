#![allow(missing_docs)]
//! Micro-step hot-loop bench with an allocation regression guard.
//!
//! Measures ns/step and steps/sec for small packs (the sizes whose
//! per-battery report detail fits inline in [`BatterySteps`]), and — under
//! a counting global allocator — measures heap allocations per step at
//! steady state, asserting the hot loop stays allocation-free. Writes
//! `BENCH_micro.json` at the repository root (override the path with
//! `SDB_BENCH_MICRO_OUT`); CI uploads the file and greps for
//! `"allocs_per_step_max":0.0`.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_testkit::{alloc_counter, CountingAllocator};
use std::fmt::Write as _;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Steps per routine call: long enough to amortize timer reads, short
/// enough that calibration converges quickly.
const STEPS_PER_CALL: u64 = 100;

fn pack_of(n: usize) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            0.9,
            ProfileKind::Standard,
        );
    }
    b.build()
}

/// Allocations per step at steady state: warm a fresh pack up (scratch
/// buffers grow, cursors settle), then count over many steps.
fn allocs_per_step(n: usize) -> f64 {
    let mut micro = pack_of(n);
    let load = 3.0 * n as f64;
    for _ in 0..50 {
        black_box(micro.step(load, 0.0, 1.0));
    }
    let steps = 1000u64;
    let before = alloc_counter::allocs();
    for _ in 0..steps {
        black_box(micro.step(load, 0.0, 1.0));
    }
    (alloc_counter::allocs() - before) as f64 / steps as f64
}

fn main() {
    let mut h = Harness::from_args();
    let sizes = [2usize, 4, 8];
    let mut rows = Vec::new();

    for &n in &sizes {
        // Template cloned per iteration so every measurement starts from
        // the same SoC; the 100-step routine is dominated by warm steps.
        let template = pack_of(n);
        let load = 3.0 * n as f64;
        h.bench_batched_scaled(
            &format!("micro_step/{n}"),
            STEPS_PER_CALL,
            || template.clone(),
            |mut micro| {
                for _ in 0..STEPS_PER_CALL {
                    black_box(micro.step(load, 0.0, 1.0));
                }
                micro
            },
        );
        let ns_per_step = h.results().last().expect("bench recorded").min_ns;
        let allocs = allocs_per_step(n);
        println!(
            "  pack {n}: {} per step, {:.0} steps/sec, {allocs} allocs/step",
            format_ns(ns_per_step),
            1e9 / ns_per_step
        );
        rows.push((n, ns_per_step, allocs));
    }
    h.finish();

    let max_allocs = rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
    assert!(
        max_allocs == 0.0,
        "steady-state micro step allocated (max {max_allocs}/step) — the hot \
         loop regressed"
    );

    let mut json = String::new();
    json.push_str("{\"bench\":\"micro_step\",\"steps_per_call\":");
    let _ = write!(json, "{STEPS_PER_CALL}");
    json.push_str(",\"packs\":[");
    for (i, (n, ns, allocs)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let steps_per_sec = 1e9 / ns;
        let _ = write!(
            json,
            "{{\"batteries\":{n},\"ns_per_step\":{ns:?},\"steps_per_sec\":{steps_per_sec:?},\"allocs_per_step\":{allocs:?}}}"
        );
    }
    let _ = write!(
        json,
        "],\"allocs_per_step_max\":{max_allocs:?},\"host_cpus\":{}}}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );

    let path = std::env::var("SDB_BENCH_MICRO_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
