#![allow(missing_docs)]
//! Microbenchmarks of the hot paths: cell stepping, policy allocation,
//! packet scheduling, and full emulator steps.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_bench::harness::Harness;
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_core::runtime::SdbRuntime;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_observe::QuantileSketch;
use sdb_power_electronics::switch::PacketScheduler;
use std::hint::black_box;

fn pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            4.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "b",
            Chemistry::Type3CoPower,
            4.0,
        ))
        .build()
}

fn fresh_cell() -> TheveninCell {
    TheveninCell::with_soc(
        BatterySpec::from_chemistry("x", Chemistry::Type2CoStandard, 4.0),
        0.8,
    )
}

fn main() {
    let mut h = Harness::from_args();

    h.bench_batched("thevenin_cell_step_current_x100", fresh_cell, |mut cell| {
        for _ in 0..100 {
            black_box(cell.step_current(2.0, 1.0).expect("feasible"));
        }
        cell
    });
    h.bench_batched("thevenin_cell_step_power_x100", fresh_cell, |mut cell| {
        for _ in 0..100 {
            black_box(cell.step_power(5.0, 1.0).expect("feasible"));
        }
        cell
    });

    let micro = pack();
    let input = PolicyInput::from_micro(&micro).with_load(10.0);
    h.bench("rbl_discharge_allocation", || {
        black_box(rbl_discharge(black_box(&input)).expect("feasible"))
    });
    h.bench("policy_input_from_micro", || {
        black_box(PolicyInput::from_micro(black_box(&micro)))
    });

    h.bench_batched(
        "packet_scheduler_10k_packets",
        || PacketScheduler::new(&[0.3, 0.5, 0.2], 16_384).expect("valid"),
        |mut s| {
            for _ in 0..10_000 {
                black_box(s.next_packet());
            }
            s
        },
    );

    h.bench_batched(
        "quantile_sketch_insert_x1000",
        QuantileSketch::new,
        |mut s| {
            for i in 0..1000u64 {
                s.insert(black_box(1.0 + (i as f64) * 3.7));
            }
            s
        },
    );
    h.bench_batched(
        "quantile_sketch_merge_1k_buckets",
        || {
            let mut a = QuantileSketch::new();
            let mut b = QuantileSketch::new();
            for i in 0..5000u64 {
                a.insert(0.1 + i as f64);
                b.insert(0.5 + (i as f64) * 2.3);
            }
            (a, b)
        },
        |(mut a, b)| {
            a.merge_from(black_box(&b));
            (a, b)
        },
    );

    h.bench_batched("microcontroller_step_x50", pack, |mut m| {
        for _ in 0..50 {
            black_box(m.step(8.0, 0.0, 1.0));
        }
        m
    });
    h.bench_batched(
        "runtime_tick_plus_step_x50",
        || (pack(), SdbRuntime::new(2)),
        |(mut m, mut rt)| {
            for _ in 0..50 {
                let input = PolicyInput::from_micro(&m).with_load(8.0);
                rt.tick(&mut m, &input, 60.0).expect("accepted");
                black_box(m.step(8.0, 0.0, 60.0));
            }
            (m, rt)
        },
    );

    h.finish();
}
