#![allow(missing_docs)]
//! Microbenchmarks of the hot paths: cell stepping, policy allocation,
//! packet scheduling, and full emulator steps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_core::runtime::SdbRuntime;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_power_electronics::switch::PacketScheduler;
use std::hint::black_box;

fn pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            4.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "b",
            Chemistry::Type3CoPower,
            4.0,
        ))
        .build()
}

fn bench_cell_step(c: &mut Criterion) {
    c.bench_function("thevenin_cell_step_current", |b| {
        b.iter_batched(
            || {
                TheveninCell::with_soc(
                    BatterySpec::from_chemistry("x", Chemistry::Type2CoStandard, 4.0),
                    0.8,
                )
            },
            |mut cell| {
                for _ in 0..100 {
                    black_box(cell.step_current(2.0, 1.0).expect("feasible"));
                }
                cell
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("thevenin_cell_step_power", |b| {
        b.iter_batched(
            || {
                TheveninCell::with_soc(
                    BatterySpec::from_chemistry("x", Chemistry::Type2CoStandard, 4.0),
                    0.8,
                )
            },
            |mut cell| {
                for _ in 0..100 {
                    black_box(cell.step_power(5.0, 1.0).expect("feasible"));
                }
                cell
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_policy(c: &mut Criterion) {
    let micro = pack();
    let input = PolicyInput::from_micro(&micro).with_load(10.0);
    c.bench_function("rbl_discharge_allocation", |b| {
        b.iter(|| black_box(rbl_discharge(black_box(&input)).expect("feasible")));
    });
    c.bench_function("policy_input_from_micro", |b| {
        b.iter(|| black_box(PolicyInput::from_micro(black_box(&micro))));
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("packet_scheduler_10k_packets", |b| {
        b.iter_batched(
            || PacketScheduler::new(&[0.3, 0.5, 0.2], 16_384).expect("valid"),
            |mut s| {
                for _ in 0..10_000 {
                    black_box(s.next_packet());
                }
                s
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_emulator(c: &mut Criterion) {
    c.bench_function("microcontroller_step", |b| {
        b.iter_batched(
            pack,
            |mut m| {
                for _ in 0..50 {
                    black_box(m.step(8.0, 0.0, 1.0));
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("runtime_tick_plus_step", |b| {
        b.iter_batched(
            || (pack(), SdbRuntime::new(2)),
            |(mut m, mut rt)| {
                for _ in 0..50 {
                    let input = PolicyInput::from_micro(&m).with_load(8.0);
                    rt.tick(&mut m, &input, 60.0).expect("accepted");
                    black_box(m.step(8.0, 0.0, 60.0));
                }
                (m, rt)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_cell_step,
    bench_policy,
    bench_scheduler,
    bench_emulator
);
criterion_main!(benches);
