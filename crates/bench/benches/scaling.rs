#![allow(missing_docs)]
//! Scaling benches: how policy allocation and emulation cost grow with the
//! number of batteries in the pack (the paper's hardware argument is that
//! SDB's charging circuit is `O(N)`; the software must scale too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use std::hint::black_box;

fn pack_of(n: usize) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            0.9,
            ProfileKind::Standard,
        );
    }
    b.build()
}

fn bench_policy_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbl_discharge_vs_pack_size");
    for n in [2usize, 4, 8, 16, 32] {
        let micro = pack_of(n);
        let input = PolicyInput::from_micro(&micro).with_load(4.0 * n as f64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| black_box(rbl_discharge(black_box(input)).expect("feasible")));
        });
    }
    g.finish();
}

fn bench_step_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_step_vs_pack_size");
    for n in [2usize, 4, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut micro = pack_of(n);
            let load = 3.0 * n as f64;
            b.iter(|| black_box(micro.step(load, 0.0, 1.0)));
        });
    }
    g.finish();
}

fn bench_query_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_battery_status_vs_pack_size");
    for n in [2usize, 8, 32] {
        let micro = pack_of(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &micro, |b, micro| {
            b.iter(|| black_box(micro.query_battery_status()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_scaling,
    bench_step_scaling,
    bench_query_scaling
);
criterion_main!(benches);
