#![allow(missing_docs)]
//! Scaling benches.
//!
//! Two axes: how policy allocation and emulation cost grow with the number
//! of batteries in the pack (the paper's hardware argument is that SDB's
//! charging circuit is `O(N)`; the software must scale too), and how fleet
//! simulation throughput grows with worker threads (the sdb-fleet engine's
//! scaling contract). The fleet section writes its measurements to
//! `BENCH_fleet.json` at the repository root (override the path with
//! `SDB_BENCH_FLEET_OUT`) and cross-checks that every thread count
//! produced a bit-identical `FleetReport`.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_core::scheduler::SimOptions;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_fleet::spec::{CohortSpec, FleetSpec, PackTemplate, PolicySpec, WorkloadSpec};
use sdb_fleet::{run_fleet, run_fleet_with_engine, EngineKind, FleetReport};
use sdb_workloads::Trace;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;

fn pack_of(n: usize) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            0.9,
            ProfileKind::Standard,
        );
    }
    b.build()
}

fn bench_pack_size_scaling(h: &mut Harness) {
    for n in [2usize, 4, 8, 16, 32] {
        let micro = pack_of(n);
        let input = PolicyInput::from_micro(&micro).with_load(4.0 * n as f64);
        h.bench(&format!("rbl_discharge_vs_pack_size/{n}"), || {
            black_box(rbl_discharge(black_box(&input)).expect("feasible"))
        });
    }
    for n in [2usize, 4, 8, 16, 32] {
        h.bench_batched(
            &format!("micro_step_vs_pack_size/{n}"),
            || pack_of(n),
            |mut micro| {
                let load = 3.0 * n as f64;
                for _ in 0..10 {
                    black_box(micro.step(load, 0.0, 1.0));
                }
                micro
            },
        );
    }
    for n in [2usize, 8, 32] {
        let micro = pack_of(n);
        h.bench(&format!("query_battery_status_vs_pack_size/{n}"), || {
            black_box(micro.query_battery_status())
        });
    }
}

/// Measures fleet throughput (devices/sec) against worker-thread count and
/// writes `BENCH_fleet.json`. Also asserts the engine's core contract
/// while it has the data in hand: every thread count yields the same
/// report bytes.
fn bench_fleet_scaling(quick: bool) {
    let devices: usize = std::env::var("SDB_BENCH_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 512 });
    let hours = 2.0;
    let spec = FleetSpec::default_population(devices, 0xF1EE7).with_hours(hours);
    let thread_counts = [1usize, 2, 4, 8];

    println!("\nfleet_scaling: {devices} devices x {hours} h trace");
    let mut rows = Vec::new();
    let mut baseline_json: Option<String> = None;
    for &threads in &thread_counts {
        // Warm once (page/alloc effects), then take the best of 3 runs.
        let mut best: Option<(f64, f64)> = None;
        let runs = if quick { 1 } else { 3 };
        for _ in 0..runs {
            let (report, stats) = run_fleet(&spec, threads).expect("fleet run");
            let json = report.to_json();
            match &baseline_json {
                None => baseline_json = Some(json),
                Some(b) => assert_eq!(*b, json, "FleetReport changed with thread count {threads}"),
            }
            if best.is_none_or(|(w, _)| stats.wall_s < w) {
                best = Some((stats.wall_s, stats.devices_per_sec));
            }
        }
        let (wall_s, dps) = best.expect("at least one run");
        println!(
            "  threads={threads:<2} wall={:<12} {dps:.0} devices/sec",
            format_ns(wall_s * 1e9)
        );
        rows.push((threads, wall_s, dps));
    }

    let dps_1 = rows[0].2;
    let dps_8 = rows.last().expect("rows nonempty").2;
    let speedup = dps_8 / dps_1;
    println!("  speedup {}t vs 1t: {speedup:.2}x", rows.last().unwrap().0);

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"fleet_scaling\",\"devices\":{devices},\"trace_hours\":{hours:?},\"master_seed\":{},\"bit_identical_reports\":true,\"threads\":[",
        0xF1EE7
    );
    for (i, (threads, wall_s, dps)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{threads},\"wall_s\":{wall_s:?},\"devices_per_sec\":{dps:?}}}"
        );
    }
    let _ = write!(
        json,
        "],\"speedup_max_threads_vs_1\":{speedup:?},\"host_cpus\":{}}}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );

    let path = std::env::var("SDB_BENCH_FLEET_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  failed to write {path}: {e}"),
    }
}

/// An overnight standby fleet: every device holds a constant 50 mW draw
/// on a two-cell hybrid pack — the workload the SoA engine's quiescence
/// fast-forward is built for. The whole trace is one identical-point run,
/// so the hybrid driver spends nearly all simulated time in closed-form
/// multi-tick advances.
fn quiescent_population(devices: usize, hours: f64) -> FleetSpec {
    FleetSpec {
        devices,
        master_seed: 0x50A,
        cohorts: vec![CohortSpec {
            name: "standby".to_owned(),
            weight: 1.0,
            pack: PackTemplate::new(vec![
                (
                    BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
                    0.9,
                    ProfileKind::Standard,
                ),
                (
                    BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 2.0),
                    0.8,
                    ProfileKind::Fast,
                ),
            ]),
            workload: WorkloadSpec::Shared(Arc::new(Trace::constant(0.05, hours * 3600.0))),
            policy: PolicySpec::Blend(0.5),
            update_period_s: 60.0,
        }],
        sim: SimOptions::default(),
    }
}

/// Best-of-`runs` throughput for one engine, asserting the per-engine
/// determinism contract (bit-identical report across runs and across
/// thread counts 1 and `threads`) while the data is in hand.
fn engine_best(
    spec: &FleetSpec,
    threads: usize,
    engine: EngineKind,
    runs: usize,
) -> (f64, FleetReport) {
    let (single, _) = run_fleet_with_engine(spec, 1, engine).expect("fleet run (1 thread)");
    let baseline = single.to_json();
    let mut best_dps = 0.0f64;
    let mut report = None;
    for _ in 0..runs {
        let (r, stats) = run_fleet_with_engine(spec, threads, engine).expect("fleet run");
        assert_eq!(
            baseline,
            r.to_json(),
            "{} report changed with thread count",
            engine.name()
        );
        best_dps = best_dps.max(stats.devices_per_sec);
        report = Some(r);
    }
    (best_dps, report.expect("at least one run"))
}

fn counter_of(report: &FleetReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// Fraction of simulated micro ticks the SoA engine covered with
/// closed-form fast-forward advances instead of scalar steps.
fn ff_fraction(report: &FleetReport) -> f64 {
    let ff = counter_of(report, "sdb_fleet_ff_ticks_total") as f64;
    let steps = counter_of(report, "sdb_micro_steps_total") as f64;
    if steps > 0.0 {
        ff / steps
    } else {
        0.0
    }
}

fn rel(a: f64, b: f64) -> f64 {
    if b.abs() > 0.0 {
        ((a - b) / b).abs()
    } else {
        a.abs()
    }
}

/// Merges `fragment` (a `,"key":{…}` string) into `BENCH_fleet.json` just
/// before the `host_cpus` tail, replacing any prior object under the same
/// key (brace-depth scan, so nested objects splice out cleanly).
fn splice_fleet_json(key: &str, fragment: &str) {
    let path = std::env::var("SDB_BENCH_FLEET_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR")));
    let Ok(mut text) = std::fs::read_to_string(&path) else {
        eprintln!("  cannot read {path}; run the fleet_scaling bench first");
        return;
    };
    if let Some(start) = text.find(&format!(",\"{key}\":{{")) {
        let mut depth = 0usize;
        let mut end = None;
        for (i, b) in text.bytes().enumerate().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(e) = end {
            text.replace_range(start..=e, "");
        }
    }
    if let Some(at) = text.find(",\"host_cpus\"") {
        text.insert_str(at, fragment);
        match std::fs::write(&path, &text) {
            Ok(()) => println!("  merged {key} into {path}"),
            Err(e) => eprintln!("  failed to write {path}: {e}"),
        }
    } else {
        eprintln!("  no host_cpus marker in {path}; run the fleet_scaling bench first");
    }
}

/// Scalar-vs-SoA engine head-to-head. Two populations:
///
/// * the quiescent standby fleet (the SoA engine's target workload, and
///   the population the `soa_ge_3x` CI gate measures), and
/// * the mixed `default_population` (honest number for general fleets,
///   where only constant night-idle stretches fast-forward).
///
/// Also writes the cross-engine equivalence artifact `SOA_EQUIV.txt`
/// (override with `SDB_BENCH_SOA_EQUIV_OUT`): the SoA engine is not
/// bit-identical to scalar — it ships a documented error bound instead —
/// and this file records the measured report-level deltas against those
/// bounds on every bench run.
fn bench_fleet_scaling_soa(quick: bool) {
    let devices: usize = std::env::var("SDB_BENCH_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 512 });
    let hours = 8.0;
    let threads = 8;
    let runs = if quick { 1 } else { 3 };

    println!("\nfleet_scaling_soa: {devices} devices x {hours} h standby trace");
    let spec = quiescent_population(devices, hours);
    let (scalar_dps, scalar_rep) = engine_best(&spec, threads, EngineKind::Scalar, runs);
    let (soa_dps, soa_rep) = engine_best(&spec, threads, EngineKind::Soa, runs);
    let speedup = soa_dps / scalar_dps;
    let ge_3x = speedup >= 3.0;
    let ff = ff_fraction(&soa_rep);
    println!("  scalar: {scalar_dps:.0} devices/sec");
    println!(
        "  soa:    {soa_dps:.0} devices/sec ({:.1}% ticks fast-forwarded)",
        ff * 100.0
    );
    println!("  speedup: {speedup:.2}x (>= 3x: {ge_3x})");

    // Cross-engine equivalence: report-level deltas against the bounds
    // documented in DESIGN.md §14 (and property-tested in sdb-fleet).
    let supplied_rel = rel(soa_rep.supplied_j_total, scalar_rep.supplied_j_total);
    let loss_rel = rel(soa_rep.circuit_loss_j.mean, scalar_rep.circuit_loss_j.mean);
    let soc_abs = (soa_rep.final_soc.mean - scalar_rep.final_soc.mean).abs();
    let life_rel = rel(soa_rep.life_s.mean, scalar_rep.life_s.mean);
    let brownout_equal = soa_rep.brownout_rate == scalar_rep.brownout_rate;
    let equiv_ok = supplied_rel <= 1e-2 && soc_abs <= 1e-3 && life_rel <= 1e-3 && brownout_equal;
    println!(
        "  equiv: supplied_rel={supplied_rel:.2e} soc_abs={soc_abs:.2e} \
         life_rel={life_rel:.2e} brownout_equal={brownout_equal} -> {}",
        if equiv_ok { "PASS" } else { "FAIL" }
    );

    // Mixed population: same shape as fleet_scaling, both engines.
    let mixed = FleetSpec::default_population(devices, 0xF1EE7).with_hours(2.0);
    let (mixed_scalar_dps, _) = engine_best(&mixed, threads, EngineKind::Scalar, runs);
    let (mixed_soa_dps, mixed_soa_rep) = engine_best(&mixed, threads, EngineKind::Soa, runs);
    let mixed_speedup = mixed_soa_dps / mixed_scalar_dps;
    let mixed_ff = ff_fraction(&mixed_soa_rep);
    println!(
        "  default_population: scalar {mixed_scalar_dps:.0} -> soa {mixed_soa_dps:.0} \
         devices/sec ({mixed_speedup:.2}x, {:.1}% ticks fast-forwarded)",
        mixed_ff * 100.0
    );

    let mut frag = String::new();
    let _ = write!(
        frag,
        ",\"soa\":{{\"devices\":{devices},\"threads\":{threads},\"quiescent\":{{\
         \"trace_hours\":{hours:?},\"scalar_devices_per_sec\":{scalar_dps:?},\
         \"soa_devices_per_sec\":{soa_dps:?},\"ff_tick_fraction\":{ff:?},\
         \"soa_speedup\":{speedup:?},\"soa_ge_3x\":{ge_3x}}},\"default_population\":{{\
         \"trace_hours\":2.0,\"scalar_devices_per_sec\":{mixed_scalar_dps:?},\
         \"soa_devices_per_sec\":{mixed_soa_dps:?},\"ff_tick_fraction\":{mixed_ff:?},\
         \"soa_speedup\":{mixed_speedup:?}}},\"equiv\":{{\
         \"supplied_j_rel\":{supplied_rel:?},\"circuit_loss_mean_rel\":{loss_rel:?},\
         \"final_soc_mean_abs\":{soc_abs:?},\"life_mean_rel\":{life_rel:?},\
         \"brownout_rate_equal\":{brownout_equal},\"within_bounds\":{equiv_ok}}},\
         \"bit_identical_reports_per_engine\":true}}"
    );
    splice_fleet_json("soa", &frag);

    let mut txt = String::new();
    let _ = writeln!(txt, "SoA engine cross-engine equivalence (scalar vs soa)");
    let _ = writeln!(
        txt,
        "population: {devices} standby devices x {hours} h constant 50 mW trace"
    );
    let _ = writeln!(
        txt,
        "contract: the SoA engine is NOT bit-identical to scalar; it guarantees the"
    );
    let _ = writeln!(
        txt,
        "documented error bound instead (DESIGN.md section 14). Per-engine reports"
    );
    let _ = writeln!(txt, "are bit-identical at any thread count.");
    let _ = writeln!(txt);
    let _ = writeln!(txt, "metric                      measured      bound");
    let _ = writeln!(
        txt,
        "supplied_j_total rel delta  {supplied_rel:<12.3e}  1e-2"
    );
    let _ = writeln!(txt, "final_soc mean abs delta    {soc_abs:<12.3e}  1e-3");
    let _ = writeln!(txt, "life_s mean rel delta       {life_rel:<12.3e}  1e-3");
    let _ = writeln!(
        txt,
        "circuit_loss mean rel delta {loss_rel:<12.3e}  (reported)"
    );
    let _ = writeln!(
        txt,
        "brownout_rate               {} (scalar {:.4}, soa {:.4})",
        if brownout_equal { "equal" } else { "DIFFERS" },
        scalar_rep.brownout_rate,
        soa_rep.brownout_rate
    );
    let _ = writeln!(txt);
    let _ = writeln!(txt, "ff_tick_fraction: {ff:.4}  soa_speedup: {speedup:.2}x");
    let _ = writeln!(txt, "result: {}", if equiv_ok { "PASS" } else { "FAIL" });
    let equiv_path = std::env::var("SDB_BENCH_SOA_EQUIV_OUT")
        .unwrap_or_else(|_| format!("{}/../../SOA_EQUIV.txt", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&equiv_path, &txt) {
        Ok(()) => println!("  wrote {equiv_path}"),
        Err(e) => eprintln!("  failed to write {equiv_path}: {e}"),
    }
    assert!(
        equiv_ok,
        "SoA engine drifted past its documented error bound"
    );
}

fn main() {
    let quick = std::env::var("SDB_BENCH_QUICK").is_ok_and(|v| v == "1");
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));

    let mut h = Harness::from_args();
    bench_pack_size_scaling(&mut h);
    h.finish();

    if filter
        .as_ref()
        .is_none_or(|f| "fleet_scaling".contains(f.as_str()))
    {
        bench_fleet_scaling(quick);
    }
    if filter
        .as_ref()
        .is_none_or(|f| "fleet_scaling_soa".contains(f.as_str()))
    {
        bench_fleet_scaling_soa(quick);
    }
}
