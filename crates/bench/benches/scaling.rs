#![allow(missing_docs)]
//! Scaling benches.
//!
//! Two axes: how policy allocation and emulation cost grow with the number
//! of batteries in the pack (the paper's hardware argument is that SDB's
//! charging circuit is `O(N)`; the software must scale too), and how fleet
//! simulation throughput grows with worker threads (the sdb-fleet engine's
//! scaling contract). The fleet section writes its measurements to
//! `BENCH_fleet.json` at the repository root (override the path with
//! `SDB_BENCH_FLEET_OUT`) and cross-checks that every thread count
//! produced a bit-identical `FleetReport`.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_bench::harness::{format_ns, Harness};
use sdb_core::policy::{rbl_discharge, PolicyInput};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_fleet::run_fleet;
use sdb_fleet::spec::FleetSpec;
use std::fmt::Write as _;
use std::hint::black_box;

fn pack_of(n: usize) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            0.9,
            ProfileKind::Standard,
        );
    }
    b.build()
}

fn bench_pack_size_scaling(h: &mut Harness) {
    for n in [2usize, 4, 8, 16, 32] {
        let micro = pack_of(n);
        let input = PolicyInput::from_micro(&micro).with_load(4.0 * n as f64);
        h.bench(&format!("rbl_discharge_vs_pack_size/{n}"), || {
            black_box(rbl_discharge(black_box(&input)).expect("feasible"))
        });
    }
    for n in [2usize, 4, 8, 16, 32] {
        h.bench_batched(
            &format!("micro_step_vs_pack_size/{n}"),
            || pack_of(n),
            |mut micro| {
                let load = 3.0 * n as f64;
                for _ in 0..10 {
                    black_box(micro.step(load, 0.0, 1.0));
                }
                micro
            },
        );
    }
    for n in [2usize, 8, 32] {
        let micro = pack_of(n);
        h.bench(&format!("query_battery_status_vs_pack_size/{n}"), || {
            black_box(micro.query_battery_status())
        });
    }
}

/// Measures fleet throughput (devices/sec) against worker-thread count and
/// writes `BENCH_fleet.json`. Also asserts the engine's core contract
/// while it has the data in hand: every thread count yields the same
/// report bytes.
fn bench_fleet_scaling(quick: bool) {
    let devices: usize = std::env::var("SDB_BENCH_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 512 });
    let hours = 2.0;
    let spec = FleetSpec::default_population(devices, 0xF1EE7).with_hours(hours);
    let thread_counts = [1usize, 2, 4, 8];

    println!("\nfleet_scaling: {devices} devices x {hours} h trace");
    let mut rows = Vec::new();
    let mut baseline_json: Option<String> = None;
    for &threads in &thread_counts {
        // Warm once (page/alloc effects), then take the best of 3 runs.
        let mut best: Option<(f64, f64)> = None;
        let runs = if quick { 1 } else { 3 };
        for _ in 0..runs {
            let (report, stats) = run_fleet(&spec, threads).expect("fleet run");
            let json = report.to_json();
            match &baseline_json {
                None => baseline_json = Some(json),
                Some(b) => assert_eq!(*b, json, "FleetReport changed with thread count {threads}"),
            }
            if best.is_none_or(|(w, _)| stats.wall_s < w) {
                best = Some((stats.wall_s, stats.devices_per_sec));
            }
        }
        let (wall_s, dps) = best.expect("at least one run");
        println!(
            "  threads={threads:<2} wall={:<12} {dps:.0} devices/sec",
            format_ns(wall_s * 1e9)
        );
        rows.push((threads, wall_s, dps));
    }

    let dps_1 = rows[0].2;
    let dps_8 = rows.last().expect("rows nonempty").2;
    let speedup = dps_8 / dps_1;
    println!("  speedup {}t vs 1t: {speedup:.2}x", rows.last().unwrap().0);

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"fleet_scaling\",\"devices\":{devices},\"trace_hours\":{hours:?},\"master_seed\":{},\"bit_identical_reports\":true,\"threads\":[",
        0xF1EE7
    );
    for (i, (threads, wall_s, dps)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{threads},\"wall_s\":{wall_s:?},\"devices_per_sec\":{dps:?}}}"
        );
    }
    let _ = write!(
        json,
        "],\"speedup_max_threads_vs_1\":{speedup:?},\"host_cpus\":{}}}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );

    let path = std::env::var("SDB_BENCH_FLEET_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  failed to write {path}: {e}"),
    }
}

fn main() {
    let quick = std::env::var("SDB_BENCH_QUICK").is_ok_and(|v| v == "1");
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));

    let mut h = Harness::from_args();
    bench_pack_size_scaling(&mut h);
    h.finish();

    if filter
        .as_ref()
        .is_none_or(|f| "fleet_scaling".contains(f.as_str()))
    {
        bench_fleet_scaling(quick);
    }
}
