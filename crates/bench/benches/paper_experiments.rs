#![allow(missing_docs)]
//! One bench per paper table/figure: measures the cost of regenerating
//! each artifact end-to-end (the regeneration itself asserts nothing —
//! shape checks live in the unit/integration tests).

use sdb_bench::experiments::*;
use sdb_bench::harness::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();

    h.bench("table1", || black_box(tables::render_table1()));
    h.bench("table2", || black_box(tables::render_table2()));
    h.bench("fig1a", || black_box(fig1::render_fig1a()));
    h.bench("fig1b", || black_box(fig1::render_fig1b()));
    h.bench("fig1c", || black_box(fig1::render_fig1c()));
    h.bench("fig6a", || black_box(fig6::render_fig6a()));
    h.bench("fig6b", || black_box(fig6::render_fig6b()));
    h.bench("fig6c", || black_box(fig6::render_fig6c()));
    h.bench("fig6d", || black_box(fig6::render_fig6d()));
    h.bench("fig8b", || black_box(fig8::render_fig8b()));
    h.bench("fig8c", || black_box(fig8::render_fig8c()));
    h.bench("fig11a", || black_box(fig11::render_fig11a()));
    h.bench("fig11c", || black_box(fig11::render_fig11c()));

    // End-to-end multi-simulation jobs: one run per sample.
    h.bench_heavy("fig10", || black_box(fig10::fig10_reports()));
    h.bench_heavy("fig11b", || black_box(fig11::fig11b_curves()));
    h.bench_heavy("fig12", || black_box(fig12::fig12_rows()));
    h.bench_heavy("fig13", || black_box(fig13::fig13_outcomes()));
    h.bench_heavy("fig14", || black_box(fig14::fig14_rows()));
    h.bench_heavy("ablations", || black_box(ablations::render_ablations()));

    h.finish();
}
