#![allow(missing_docs)]
//! One Criterion bench per paper table/figure: measures the cost of
//! regenerating each artifact end-to-end (the regeneration itself asserts
//! nothing — shape checks live in the unit/integration tests).

use criterion::{criterion_group, criterion_main, Criterion};
use sdb_bench::experiments::*;
use std::hint::black_box;
use std::time::Duration;

fn quick(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_quick");
    g.bench_function("table1", |b| b.iter(|| black_box(tables::render_table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::render_table2())));
    g.bench_function("fig1a", |b| b.iter(|| black_box(fig1::render_fig1a())));
    g.bench_function("fig1b", |b| b.iter(|| black_box(fig1::render_fig1b())));
    g.bench_function("fig1c", |b| b.iter(|| black_box(fig1::render_fig1c())));
    g.bench_function("fig6a", |b| b.iter(|| black_box(fig6::render_fig6a())));
    g.bench_function("fig6b", |b| b.iter(|| black_box(fig6::render_fig6b())));
    g.bench_function("fig6c", |b| b.iter(|| black_box(fig6::render_fig6c())));
    g.bench_function("fig6d", |b| b.iter(|| black_box(fig6::render_fig6d())));
    g.bench_function("fig8b", |b| b.iter(|| black_box(fig8::render_fig8b())));
    g.bench_function("fig8c", |b| b.iter(|| black_box(fig8::render_fig8c())));
    g.bench_function("fig11a", |b| b.iter(|| black_box(fig11::render_fig11a())));
    g.bench_function("fig11c", |b| b.iter(|| black_box(fig11::render_fig11c())));
    g.finish();
}

fn heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_heavy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("fig10", |b| b.iter(|| black_box(fig10::fig10_reports())));
    g.bench_function("fig11b", |b| b.iter(|| black_box(fig11::fig11b_curves())));
    g.bench_function("fig12", |b| b.iter(|| black_box(fig12::fig12_rows())));
    g.bench_function("fig13", |b| b.iter(|| black_box(fig13::fig13_outcomes())));
    g.finish();

    // Figure 14 runs 16 multi-day simulations; keep it to a bare minimum
    // of samples.
    let mut g = c.benchmark_group("paper_very_heavy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(60));
    g.bench_function("fig14", |b| b.iter(|| black_box(fig14::fig14_rows())));
    g.bench_function("ablations", |b| {
        b.iter(|| black_box(ablations::render_ablations()))
    });
    g.finish();
}

criterion_group!(benches, quick, heavy);
criterion_main!(benches);
