//! Property-based tests for the lookahead planner (sdb-testkit
//! seeded-case harness, same idiom as the sdb-core policy suite).

use sdb_battery_model::{BatterySpec, Chemistry};
use sdb_core::policy::{BatteryView, DischargeDirective, PolicyInput};
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{run_trace, run_trace_planned, SimOptions};
use sdb_core::LookaheadPolicy;
use sdb_emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb_observe::{ObsEvent, Observer, TraceCollector};
use sdb_policy::{corpus, HistoryForecaster, Planner, PlannerConfig};
use sdb_testkit::{check, Gen};
use sdb_workloads::Trace;
use std::sync::Arc;

fn hybrid_pack(soc: f64) -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
            soc,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 1.0),
            soc,
            ProfileKind::Fast,
        )
        .build()
}

/// A short random piecewise-constant load trace.
fn arb_trace(g: &mut Gen) -> Trace {
    let mut t = Trace::new();
    for _ in 0..g.usize_range(3, 10) {
        t.push(g.f64_range(0.05, 2.0), 0.0, g.f64_range(300.0, 3600.0));
    }
    t
}

/// A random non-empty battery view (always usable for discharge).
fn arb_view(g: &mut Gen) -> BatteryView {
    let soc = g.f64_range(0.05, 1.0);
    BatteryView {
        soc,
        ocv_v: 3.0 + soc,
        resistance_ohm: g.f64_range(0.01, 2.0),
        dcir_slope: g.f64_range(0.0, 5.0),
        wear: g.f64_range(0.0, 1.0),
        capacity_ah: 2.0,
        max_discharge_a: 4.0,
        charge_acceptance_a: 1.0,
        empty: false,
        full: soc >= 1.0,
    }
}

fn arb_input(g: &mut Gen) -> PolicyInput {
    PolicyInput {
        batteries: g.vec_with(2..6, arb_view),
        load_w: g.f64_range(0.1, 20.0),
        external_w: 0.0,
    }
}

/// Every directive the planner commits over a run is a valid directive
/// value, and blending it against an arbitrary pack state yields a valid
/// ratio tuple (non-negative, unit sum).
#[test]
fn planner_directives_stay_within_valid_ratio_bounds() {
    check(16, 0xD0_0001, |g| {
        let day = arb_trace(g);
        let mut micro = hybrid_pack(g.f64_range(0.4, 1.0));
        let mut rt = SdbRuntime::new(micro.battery_count());
        let obs = Observer::new();
        let shared = TraceCollector::shared();
        obs.add_sink(Box::new(shared.clone()));
        rt.set_observer(obs);
        let cfg = PlannerConfig {
            horizon_s: 2.0 * 3600.0,
            replan_period_s: 900.0,
            candidates: g.usize_range(3, 10),
            ..PlannerConfig::default()
        };
        let mut planner = Planner::new(cfg, Box::new(HistoryForecaster::from_history([&day], 0.3)));
        let _ = run_trace_planned(
            &mut micro,
            &mut rt,
            &day,
            &SimOptions::default(),
            &mut planner,
        );
        let events = shared.lock().expect("collector lock").drain();
        let committed: Vec<f64> = events
            .iter()
            .filter_map(|e| match e.event {
                ObsEvent::PlanCommit {
                    discharge_directive,
                    ..
                } => Some(discharge_directive),
                _ => None,
            })
            .collect();
        assert!(!committed.is_empty(), "the first plan always commits");
        let input = arb_input(g);
        for d in committed {
            assert!((0.0..=1.0).contains(&d), "committed directive {d}");
            let ratios = DischargeDirective::new(d)
                .ratios(&input)
                .expect("non-empty pack is feasible");
            let sum: f64 = ratios.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
            assert!(ratios.iter().all(|r| *r >= 0.0), "negative share");
        }
    });
}

/// Perturbing the forecast moves pack shares by no more than the
/// directive shift it induces: the blend is 1-Lipschitz in the directive
/// (the PR 5 continuity property), so walking from the unperturbed
/// plan's directive to the perturbed one in small steps never jumps any
/// battery's share by more than the step.
#[test]
fn forecast_perturbation_shifts_ratios_at_most_one_to_one() {
    check(32, 0xD0_0002, |g| {
        let micro = hybrid_pack(g.f64_range(0.5, 1.0));
        let base = arb_trace(g);
        let scale = 1.0 + g.f64_range(-0.2, 0.2);
        let mut perturbed = Trace::new();
        for p in base.points() {
            t_push(&mut perturbed, p.load_w * scale, p.dur_s);
        }
        let cfg = PlannerConfig {
            horizon_s: 2.0 * 3600.0,
            ..PlannerConfig::default()
        };
        let first_plan = |day: &Trace| {
            let mut planner =
                Planner::new(cfg, Box::new(HistoryForecaster::from_history([day], 0.3)));
            let input = PolicyInput {
                batteries: Vec::new(),
                load_w: 0.0,
                external_w: 0.0,
            };
            planner
                .plan(0.0, &micro, &input)
                .expect("the first plan always commits")
                .discharge
                .value()
        };
        let d_a = first_plan(&base);
        let d_b = first_plan(&perturbed);

        let input = arb_input(g);
        let ratios_at = |d: f64| {
            DischargeDirective::new(d)
                .ratios(&input)
                .expect("non-empty pack is feasible")
        };
        // End-to-end bound…
        let (ra, rb) = (ratios_at(d_a), ratios_at(d_b));
        for (i, (a, b)) in ra.iter().zip(&rb).enumerate() {
            assert!(
                (a - b).abs() <= (d_a - d_b).abs() + 1e-9,
                "share {i} moved {a} -> {b} for directive shift {d_a} -> {d_b}"
            );
        }
        // …and the swept form: every intermediate step is equally tame.
        let (lo, hi) = (d_a.min(d_b), d_a.max(d_b));
        let steps = 64;
        let dd = (hi - lo) / f64::from(steps);
        if dd > 0.0 {
            let mut prev = ratios_at(lo);
            for k in 1..=steps {
                let r = ratios_at(lo + f64::from(k) * dd);
                for (i, (a, b)) in prev.iter().zip(&r).enumerate() {
                    assert!(
                        (a - b).abs() <= dd + 1e-9,
                        "share {i} jumped {a} -> {b} over d-step {dd}"
                    );
                }
                prev = r;
            }
        }
    });
}

fn t_push(t: &mut Trace, load_w: f64, dur_s: f64) {
    t.push(load_w, 0.0, dur_s);
}

/// The single-shot oracle (perfect forecast, one plan at t = 0) never
/// underperforms the greedy fixed directive on battery life: greedy's
/// blend sits on the oracle's candidate grid, and the oracle's rollout
/// step matches the outer driver's, so the committed plan's realized
/// life is the max over a set that contains the greedy run.
#[test]
fn single_shot_oracle_never_underperforms_greedy_on_corpus() {
    for s in &corpus() {
        for seed in [7_u64, 42, 1234] {
            let trace = s.build_trace(seed);

            let mut micro = s.build_pack();
            let mut rt = SdbRuntime::new(micro.battery_count());
            rt.set_discharge_directive(DischargeDirective::new(s.greedy_directive));
            let greedy = run_trace(&mut micro, &mut rt, &trace, &SimOptions::default());

            let mut micro = s.build_pack();
            let mut rt = SdbRuntime::new(micro.battery_count());
            let cfg = PlannerConfig {
                replan_period_s: f64::INFINITY,
                candidates: 17,
                ..PlannerConfig::default()
            };
            let mut planner = Planner::oracle(cfg, Arc::new(trace.clone()));
            let oracle = run_trace_planned(
                &mut micro,
                &mut rt,
                &trace,
                &SimOptions::default(),
                &mut planner,
            );
            assert_eq!(planner.replans(), 1, "{}: single-shot plans once", s.name);
            assert!(
                oracle.battery_life_s() >= greedy.battery_life_s() - 1e-6,
                "{} seed {seed}: oracle life {:.1} s < greedy life {:.1} s",
                s.name,
                oracle.battery_life_s(),
                greedy.battery_life_s()
            );
        }
    }
}
