//! The evaluation corpus: named scenarios and the greedy / planned /
//! oracle head-to-head runner behind `sdb policy`.
//!
//! Each [`Scenario`] pairs a pack with a workload (the same builds the
//! `sdb` CLI exposes), a start state that puts the run under genuine
//! energy pressure, and the fixed greedy blend it is judged against. The
//! head-to-head runs every scenario under all three policy modes and
//! reports battery life, brownouts, unserved energy, losses, wear spread,
//! directive pushes, and re-plans — everything needed to see where
//! lookahead buys real lifetime and what a perfect forecast would add.
//!
//! Determinism: outcomes are a pure function of `(scenario, seed)`. The
//! text and JSON reports are built with stable formatting so byte-level
//! comparison across runs and thread counts is meaningful.

use crate::forecast::HistoryForecaster;
use crate::planner::{Planner, PlannerConfig};
use sdb_battery_model::{library, BatterySpec, Chemistry};
use sdb_core::metrics::ccb;
use sdb_core::policy::DischargeDirective;
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{run_trace, run_trace_planned, SimOptions, SimResult};
use sdb_emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb_workloads::behavior::UserArchetype;
use sdb_workloads::traces::{phone_day, tablet_session, watch_day};
use sdb_workloads::{Activity, Trace};
use std::fmt::Write as _;
use std::sync::Arc;

/// Which battery pack a scenario runs on (the CLI's pack names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackKind {
    /// 200 mAh Li-ion + 200 mAh bendable strap (paper §5.2).
    Watch,
    /// 3 Ah high-energy + 1 Ah high-power.
    Phone,
    /// 4 Ah high-energy + 4 Ah fast-charge (paper §5.1).
    TabletHybrid,
    /// 2 × 4 Ah Li-ion, internal + keyboard (paper §5.3).
    TwoInOne,
}

/// Which workload a scenario replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// 24 h watch day, optionally with the hour-9 GPS run (Figure 13).
    WatchDay {
        /// Hour of the GPS run, if any.
        run_hour: Option<f64>,
    },
    /// 24 h smartphone day.
    PhoneDay,
    /// Tablet session mixing network, compute, and interaction.
    TabletMixed {
        /// Total session length, seconds.
        total_s: f64,
    },
}

/// One corpus entry: a pack × workload under energy pressure, with the
/// fixed greedy blend it is judged against and the behavior archetype the
/// history forecaster warm-starts from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// Pack to build.
    pub pack: PackKind,
    /// Workload to replay.
    pub workload: WorkloadKind,
    /// `true` → runner archetype, `false` → commuter (kept `Copy`).
    pub runner_archetype: bool,
    /// The fixed blend the greedy baseline runs with.
    pub greedy_directive: f64,
    /// Initial state of charge for every cell.
    pub start_soc: f64,
    /// Multiplier applied to the workload's load power.
    pub load_scale: f64,
}

impl Scenario {
    /// Builds the scenario's pack at its starting state of charge.
    #[must_use]
    pub fn build_pack(&self) -> Microcontroller {
        let soc = self.start_soc;
        match self.pack {
            PackKind::Watch => PackBuilder::new()
                .battery_at(
                    library::watch_li_ion().spec().clone(),
                    soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    library::watch_bendable().spec().clone(),
                    soc,
                    ProfileKind::Gentle,
                )
                .build(),
            PackKind::Phone => PackBuilder::new()
                .battery_at(
                    BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 3.0),
                    soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    BatterySpec::from_chemistry("high-power", Chemistry::Type3CoPower, 1.0),
                    soc,
                    ProfileKind::Fast,
                )
                .build(),
            PackKind::TabletHybrid => PackBuilder::new()
                .battery_at(
                    BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 4.0),
                    soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    BatterySpec::from_chemistry("fast-charge", Chemistry::Type3CoPower, 4.0),
                    soc,
                    ProfileKind::Fast,
                )
                .build(),
            PackKind::TwoInOne => PackBuilder::new()
                .battery_at(
                    BatterySpec::from_chemistry("internal", Chemistry::Type2CoStandard, 4.0),
                    soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    BatterySpec::from_chemistry("external", Chemistry::Type2CoStandard, 4.0),
                    soc,
                    ProfileKind::Standard,
                )
                .build(),
        }
    }

    /// Builds the scenario's workload trace for `seed`, with the load
    /// scale applied.
    #[must_use]
    pub fn build_trace(&self, seed: u64) -> Trace {
        let base = match self.workload {
            WorkloadKind::WatchDay { run_hour } => watch_day(seed, run_hour),
            WorkloadKind::PhoneDay => phone_day(seed),
            WorkloadKind::TabletMixed { total_s } => tablet_session(
                seed,
                &[Activity::Network, Activity::Compute, Activity::Interactive],
                300.0,
                total_s,
            ),
        };
        if (self.load_scale - 1.0).abs() < 1e-12 {
            return base;
        }
        let mut scaled = Trace::new();
        for p in base.points() {
            scaled.push(p.load_w * self.load_scale, p.external_w, p.dur_s);
        }
        scaled
    }

    /// The behavior archetype the history forecaster warm-starts from.
    #[must_use]
    pub fn archetype(&self) -> UserArchetype {
        if self.runner_archetype {
            UserArchetype::runner()
        } else {
            UserArchetype::commuter()
        }
    }
}

/// The scenario corpus: every pack class, with loads scaled so the packs
/// run out of energy inside the trace — the regime where directive
/// choice actually moves battery life.
#[must_use]
pub fn corpus() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "watch-day",
            pack: PackKind::Watch,
            workload: WorkloadKind::WatchDay {
                run_hour: Some(9.0),
            },
            runner_archetype: true,
            greedy_directive: 0.5,
            start_soc: 1.0,
            load_scale: 1.0,
        },
        Scenario {
            name: "watch-run-late",
            pack: PackKind::Watch,
            workload: WorkloadKind::WatchDay {
                run_hour: Some(18.0),
            },
            runner_archetype: true,
            greedy_directive: 0.5,
            start_soc: 1.0,
            load_scale: 1.0,
        },
        Scenario {
            name: "watch-day-heavy",
            pack: PackKind::Watch,
            workload: WorkloadKind::WatchDay {
                run_hour: Some(9.0),
            },
            runner_archetype: true,
            greedy_directive: 0.5,
            start_soc: 1.0,
            load_scale: 1.3,
        },
        Scenario {
            name: "watch-day-norun",
            pack: PackKind::Watch,
            workload: WorkloadKind::WatchDay { run_hour: None },
            runner_archetype: true,
            greedy_directive: 0.5,
            start_soc: 1.0,
            load_scale: 1.0,
        },
        Scenario {
            name: "phone-day",
            pack: PackKind::Phone,
            workload: WorkloadKind::PhoneDay,
            runner_archetype: false,
            greedy_directive: 0.5,
            start_soc: 1.0,
            load_scale: 1.0,
        },
        Scenario {
            name: "phone-heavy",
            pack: PackKind::Phone,
            workload: WorkloadKind::PhoneDay,
            runner_archetype: false,
            greedy_directive: 0.5,
            start_soc: 0.8,
            load_scale: 1.6,
        },
        Scenario {
            name: "tablet-mixed",
            pack: PackKind::TabletHybrid,
            workload: WorkloadKind::TabletMixed {
                total_s: 4.0 * 3600.0,
            },
            runner_archetype: false,
            greedy_directive: 0.5,
            start_soc: 0.5,
            load_scale: 2.0,
        },
        Scenario {
            name: "two-in-one",
            pack: PackKind::TwoInOne,
            workload: WorkloadKind::TabletMixed {
                total_s: 6.0 * 3600.0,
            },
            runner_archetype: false,
            greedy_directive: 0.5,
            start_soc: 0.6,
            load_scale: 2.5,
        },
    ]
}

/// The three interchangeable policy modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// The paper's fixed CCB/RBL blend (instantaneously optimal).
    Greedy,
    /// Receding-horizon planner over the history forecaster.
    Planned,
    /// Receding-horizon planner over the perfect forecast.
    Oracle,
}

impl PolicyMode {
    /// Stable lowercase name (report key / CLI value).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyMode::Greedy => "greedy",
            PolicyMode::Planned => "planned",
            PolicyMode::Oracle => "oracle",
        }
    }

    /// Parses a CLI value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "greedy" => Some(PolicyMode::Greedy),
            "planned" => Some(PolicyMode::Planned),
            "oracle" => Some(PolicyMode::Oracle),
            _ => None,
        }
    }
}

/// Outcome of one scenario × policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// Policy mode that produced this row.
    pub policy: PolicyMode,
    /// Battery life (time to first brownout, or full trace), seconds.
    pub life_s: f64,
    /// Whether any load went unserved.
    pub browned_out: bool,
    /// Unserved load energy, joules.
    pub unmet_j: f64,
    /// Total conversion + heat losses, joules.
    pub loss_j: f64,
    /// Wear spread after the run (CCB metric: max/min wear ratio).
    pub wear_ccb: f64,
    /// Directive pushes the runtime sent to hardware.
    pub pushes: u64,
    /// Plans committed (0 for greedy).
    pub replans: u64,
    /// Final forecast MAE, watts (0 for greedy and oracle).
    pub forecast_mae_w: f64,
}

/// Planner configuration the corpus uses for both planned and oracle
/// modes (the oracle additionally gets the full-trace horizon and a
/// denser candidate grid). The 8 h horizon is long enough that a
/// habit-forecast planner sees a day's stress event (a GPS run, an
/// evening commute) several re-plans before it starts.
#[must_use]
pub fn corpus_planner_config() -> PlannerConfig {
    PlannerConfig {
        horizon_s: 8.0 * 3600.0,
        ..PlannerConfig::default()
    }
}

/// Days of behavior-model history the planned mode warm-starts from.
pub const WARMUP_DAYS: u32 = 14;

/// Seed offset separating forecaster warm-up history from the evaluated
/// trace, so the planner never trains on the exact day it is judged on.
pub const WARMUP_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Runs one scenario under one policy mode. Pure function of
/// `(scenario, mode, seed)`.
#[must_use]
pub fn run_scenario(s: &Scenario, mode: PolicyMode, seed: u64) -> RunOutcome {
    let mut micro = s.build_pack();
    let trace = s.build_trace(seed);
    let mut runtime = SdbRuntime::new(micro.battery_count());
    let opts = SimOptions::default();
    let (result, replans, mae): (SimResult, u64, f64) = match mode {
        PolicyMode::Greedy => {
            runtime.set_discharge_directive(DischargeDirective::new(s.greedy_directive));
            (run_trace(&mut micro, &mut runtime, &trace, &opts), 0, 0.0)
        }
        PolicyMode::Planned => {
            // Warm-start from "previous days": the same workload
            // generator under derived seeds. The planner never sees the
            // evaluated day itself — its forecast is the user's habit,
            // not the answer key (that is the oracle's job).
            let history: Vec<Trace> = (1..=u64::from(WARMUP_DAYS))
                .map(|k| s.build_trace(seed.wrapping_add(k.wrapping_mul(WARMUP_SEED_SALT))))
                .collect();
            let forecaster = HistoryForecaster::from_history(&history, 0.3);
            let mut planner = Planner::new(corpus_planner_config(), Box::new(forecaster));
            let res = run_trace_planned(&mut micro, &mut runtime, &trace, &opts, &mut planner);
            (res, planner.replans(), planner.forecast_mae_w())
        }
        PolicyMode::Oracle => {
            let cfg = PlannerConfig {
                candidates: 17,
                ..corpus_planner_config()
            };
            let mut planner = Planner::oracle(cfg, Arc::new(trace.clone()));
            let res = run_trace_planned(&mut micro, &mut runtime, &trace, &opts, &mut planner);
            (res, planner.replans(), 0.0)
        }
    };
    let wear: Vec<f64> = micro.cells().iter().map(|c| c.wear_ratio()).collect();
    RunOutcome {
        scenario: s.name,
        policy: mode,
        life_s: result.battery_life_s(),
        browned_out: result.first_brownout_s.is_some(),
        unmet_j: result.unmet_j,
        loss_j: result.total_loss_j(),
        wear_ccb: ccb(&wear),
        pushes: runtime.pushes(),
        replans,
        forecast_mae_w: mae,
    }
}

/// A full greedy / planned / oracle sweep over the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadToHead {
    /// Master seed the sweep ran under.
    pub seed: u64,
    /// One row per scenario × policy, corpus order, greedy → planned →
    /// oracle within each scenario.
    pub rows: Vec<RunOutcome>,
}

/// Runs the whole corpus under all three policy modes.
#[must_use]
pub fn run_head_to_head(seed: u64) -> HeadToHead {
    let prof_run = sdb_prof::scope(sdb_prof::Phase::PolicyRun);
    let mut rows = Vec::new();
    for s in corpus() {
        for mode in [PolicyMode::Greedy, PolicyMode::Planned, PolicyMode::Oracle] {
            rows.push(run_scenario(&s, mode, seed));
        }
    }
    drop(prof_run);
    if sdb_prof::enabled() {
        sdb_prof::flush_thread();
    }
    HeadToHead { seed, rows }
}

impl HeadToHead {
    /// Scenarios where the planner strictly beats greedy on battery life
    /// or serves strictly more of the load.
    #[must_use]
    pub fn planner_wins(&self) -> usize {
        self.pairs()
            .filter(|(g, p, _)| p.life_s > g.life_s || p.unmet_j < g.unmet_j)
            .count()
    }

    /// Scenarios where the oracle's battery life is at least both the
    /// greedy's and the planner's (within float noise).
    #[must_use]
    pub fn oracle_bounds(&self) -> usize {
        self.pairs()
            .filter(|(g, p, o)| o.life_s >= g.life_s - 1e-6 && o.life_s >= p.life_s - 1e-6)
            .count()
    }

    fn pairs(&self) -> impl Iterator<Item = (&RunOutcome, &RunOutcome, &RunOutcome)> {
        self.rows.chunks_exact(3).map(|c| (&c[0], &c[1], &c[2]))
    }

    /// Fixed-width table, one row per scenario × policy.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "policy head-to-head (seed {}, {} scenarios)",
            self.seed,
            self.rows.len() / 3
        );
        let _ = writeln!(
            out,
            "{:<16} {:<8} {:>8} {:>9} {:>10} {:>10} {:>9} {:>7} {:>8} {:>8}",
            "scenario",
            "policy",
            "life_h",
            "brownout",
            "unmet_j",
            "loss_j",
            "wear_ccb",
            "pushes",
            "replans",
            "mae_w"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<8} {:>8.2} {:>9} {:>10.1} {:>10.1} {:>9.3} {:>7} {:>8} {:>8.3}",
                r.scenario,
                r.policy.name(),
                r.life_s / 3600.0,
                if r.browned_out { "yes" } else { "-" },
                r.unmet_j,
                r.loss_j,
                r.wear_ccb,
                r.pushes,
                r.replans,
                r.forecast_mae_w
            );
        }
        let _ = writeln!(
            out,
            "planner beats greedy on {} / {} scenarios; oracle bounds both on {} / {}",
            self.planner_wins(),
            self.rows.len() / 3,
            self.oracle_bounds(),
            self.rows.len() / 3
        );
        out
    }

    /// Canonical JSON export (stable key order, `{:?}` float formatting —
    /// byte-identical across runs and thread counts).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_owned()
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{{\"seed\":{},\"rows\":[", self.seed);
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scenario\":\"{}\",\"policy\":\"{}\",\"life_s\":{},\"browned_out\":{},\"unmet_j\":{},\"loss_j\":{},\"wear_ccb\":{},\"pushes\":{},\"replans\":{},\"forecast_mae_w\":{}}}",
                r.scenario,
                r.policy.name(),
                f(r.life_s),
                r.browned_out,
                f(r.unmet_j),
                f(r.loss_j),
                f(r.wear_ccb),
                r.pushes,
                r.replans,
                f(r.forecast_mae_w)
            );
        }
        let _ = write!(
            out,
            "],\"planner_wins\":{},\"oracle_bounds\":{}}}",
            self.planner_wins(),
            self.oracle_bounds()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_stable_and_named_uniquely() {
        let c = corpus();
        assert!(c.len() >= 5);
        let mut names: Vec<_> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let s = corpus()
            .into_iter()
            .find(|s| s.name == "tablet-mixed")
            .unwrap();
        let a = run_scenario(&s, PolicyMode::Planned, 42);
        let b = run_scenario(&s, PolicyMode::Planned, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_mode_commits_no_plans() {
        let s = corpus().into_iter().next().unwrap();
        let r = run_scenario(&s, PolicyMode::Greedy, 42);
        assert_eq!(r.replans, 0);
        assert_eq!(r.forecast_mae_w, 0.0);
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let h = HeadToHead {
            seed: 1,
            rows: vec![],
        };
        let j = h.to_json();
        assert!(j.starts_with("{\"seed\":1"));
        assert!(j.ends_with('}'));
    }
}
